//! Results change while nobody moves: the road-network phenomenon the
//! Euclidean methods cannot express (§1: "since weights may fluctuate, some
//! results may change even though the objects and the queries have remained
//! static").
//!
//! A rush-hour wave sweeps across the map — edge weights rise and fall —
//! while every object and query stays put. Watch a query's nearest
//! "hospital" flip back and forth purely because of traffic.
//!
//! ```text
//! cargo run --example traffic_rerouting
//! ```

use std::sync::Arc;

use rnn_monitor::core::{ContinuousMonitor, EdgeWeightUpdate, Ima, UpdateBatch, UpdateEvent};
use rnn_monitor::roadnet::generators::{grid_city, GridCityConfig};
use rnn_monitor::roadnet::NetPoint;
use rnn_monitor::{EdgeId, ObjectId, QueryId};

fn main() {
    let net = Arc::new(grid_city(&GridCityConfig {
        nx: 9,
        ny: 9,
        prune: 0.15,
        seed: 21,
        ..Default::default()
    }));
    let mut server = Ima::new(net.clone());

    // Hospitals (static objects), spread over the map: one per 15th edge.
    let mut hospitals = Vec::new();
    for (i, e) in net.edge_ids().enumerate().step_by(15) {
        let id = ObjectId(i as u32);
        server.apply(UpdateEvent::insert_object(id, NetPoint::new(e, 0.5)));
        hospitals.push(id);
    }
    // An ambulance dispatcher monitoring the 2 closest hospitals.
    let q = QueryId(0);
    server.apply(UpdateEvent::install_query(
        q,
        2,
        NetPoint::new(EdgeId(0), 0.25),
    ));
    println!(
        "{} hospitals on a {}-edge map",
        hospitals.len(),
        net.num_edges()
    );
    let show = |server: &Ima, label: &str| {
        let r = server.result(q).unwrap();
        println!(
            "{label}: closest = hospital {} ({:.0} min), backup = hospital {} ({:.0} min)",
            r[0].object, r[0].dist, r[1].object, r[1].dist
        );
    };
    show(&server, "free flow   ");

    // A congestion wave: weights in a moving band of the city triple, then
    // recover. Nothing moves; only travel times change.
    let bands = 6usize;
    let bounds = net.bounds();
    for step in 0..bands {
        let lo = bounds.lo.x + bounds.width() * step as f64 / bands as f64;
        let hi = bounds.lo.x + bounds.width() * (step + 1) as f64 / bands as f64;
        let mut batch = UpdateBatch::default();
        for e in net.edge_ids() {
            let rec = net.edge(e);
            let mid = 0.5 * (net.node_pos(rec.start).x + net.node_pos(rec.end).x);
            let congested = mid >= lo && mid < hi;
            let target = if congested {
                rec.base_weight * 3.0
            } else {
                rec.base_weight
            };
            batch.edges.push(EdgeWeightUpdate {
                edge: e,
                new_weight: target,
            });
        }
        let report = server.tick(&batch);
        show(
            &server,
            &format!(
                "wave band {step} ({:>3} results changed, {:>4} updates ignored)",
                report.results_changed, report.counters.updates_ignored
            ),
        );
    }

    // Traffic clears completely.
    let mut batch = UpdateBatch::default();
    for e in net.edge_ids() {
        batch.edges.push(EdgeWeightUpdate {
            edge: e,
            new_weight: net.edge(e).base_weight,
        });
    }
    server.tick(&batch);
    show(&server, "traffic over");
}
