//! Sharded monitoring of a mid-size city: partitions the network into four
//! regions, runs one GMA monitor per region on its own thread, and shows
//! that the fleet's answers match a single global monitor while reporting
//! the sharding internals (partition shape, halo radii, replica counts).
//!
//! Run with: `cargo run --release --example sharded_city`

use std::sync::Arc;

use rnn_monitor::engine::{EngineConfig, ShardAlgo, ShardedEngine};
use rnn_monitor::roadnet::generators;
use rnn_monitor::workload::{Scenario, ScenarioConfig};
use rnn_monitor::{ContinuousMonitor, Gma};

fn main() {
    let net = Arc::new(generators::san_francisco_like(1_500, 7));
    println!(
        "network: {} nodes, {} edges",
        net.num_nodes(),
        net.num_edges()
    );

    let cfg = ScenarioConfig {
        num_objects: 3_000,
        num_queries: 120,
        k: 8,
        seed: 2024,
        ..Default::default()
    };

    // One update stream, two consumers: a single global GMA and the 4-shard
    // engine. Identical seeds produce identical batches.
    let mut reference = Gma::new(net.clone());
    let mut engine = ShardedEngine::new(
        net.clone(),
        EngineConfig {
            num_shards: 4,
            algo: ShardAlgo::Gma,
            halo_slack: 0.25,
            ..EngineConfig::default()
        },
    );

    let scenario = Scenario::new(net.clone(), cfg.clone());
    scenario.install_into(&mut reference);
    let mut scenario = Scenario::new(net.clone(), cfg);
    scenario.install_into(&mut engine);

    println!("\npartition:");
    for view in engine.partition().views() {
        println!(
            "  shard {}: {:5} edges, {:5} nodes, {:3} boundary nodes",
            view.shard,
            view.edges.len(),
            view.nodes.len(),
            view.boundary_nodes.len()
        );
    }

    println!("\ndriving 10 timestamps...");
    let mut ref_elapsed = std::time::Duration::ZERO;
    let mut eng_elapsed = std::time::Duration::ZERO;
    let mut critical_path = std::time::Duration::ZERO;
    for t in 1..=10 {
        let batch = scenario.tick();
        ref_elapsed += reference.tick(&batch).elapsed;
        let rep = engine.tick(&batch);
        eng_elapsed += rep.elapsed;
        critical_path += engine.worker_report().elapsed;

        // Spot-check agreement on every query's kNN_dist.
        let mut ids = engine.query_ids();
        ids.sort();
        let mut worst: f64 = 0.0;
        for &q in &ids {
            let a = reference.knn_dist(q).unwrap();
            let b = engine.knn_dist(q).unwrap();
            if a.is_finite() && b.is_finite() {
                worst = worst.max((a - b).abs() / a.max(1.0));
            }
        }
        println!(
            "  t={t:2}: {:3} results changed, max kNN_dist divergence {worst:.2e}",
            rep.results_changed
        );
        assert!(worst < 1e-9, "sharded engine diverged from the oracle");
    }

    println!("\nsharding internals after 10 ticks:");
    for s in 0..engine.num_shards() {
        println!("  shard {s}: halo radius {:.3}", engine.halo_radius(s));
    }
    println!("  object replicas: {}", engine.replica_count());
    println!(
        "\nwall clock: single GMA {ref_elapsed:.2?}, 4-shard engine {eng_elapsed:.2?} \
         (worker critical path {critical_path:.2?})"
    );
    println!(
        "(on a single-core host the engine pays thread hand-off costs; \
              on multi-core hardware the shards tick concurrently)"
    );
    println!("\nOK: answers identical to the single-threaded oracle.");
}
