//! The sharded-city scenario, deployed as a real multi-process cluster:
//! the parent re-executes itself four times as shard servers, each child
//! binds a Unix domain socket and serves one GMA monitor, and the
//! coordinator drives the same workload as `sharded_city` over the RPC
//! layer — then prints the per-shard frame/byte traffic the delta
//! protocol generated.
//!
//! Halfway through the run one shard process is killed with SIGKILL.
//! Replication is on (one hot-standby follower per shard, riding in
//! the coordinator process), so the coordinator observes the dead
//! socket, bumps the shard's leadership epoch, and *promotes* the
//! follower — which replays its copy of the event log and takes over
//! serving. The shard stays live, no partition cells move, and the
//! remaining ticks still match the single-process oracle bit-for-bit.
//! `EngineConfig::takeover` stays on as the documented last resort,
//! but the assertions prove it was never needed.
//!
//! Run with: `cargo run --release --example cluster_city`
//!
//! The shard servers rebuild the road network from the same generator
//! seed instead of receiving it over the wire: network topology is
//! static, so shipping it would only bloat the bootstrap.

use std::process::{Child, Command};
use std::sync::Arc;

use rnn_monitor::cluster::serve_unix;
use rnn_monitor::engine::{EngineConfig, ReplicationConfig, ShardAlgo};
use rnn_monitor::roadnet::{generators, RoadNetwork};
use rnn_monitor::workload::{Scenario, ScenarioConfig};
use rnn_monitor::{ClusterEngine, ContinuousMonitor, Gma, RetryPolicy};

const NUM_SHARDS: usize = 4;

fn city() -> Arc<RoadNetwork> {
    Arc::new(generators::san_francisco_like(1_500, 7))
}

/// The shard whose leader process gets SIGKILLed mid-run to
/// demonstrate follower promotion.
const KILLED_SHARD: usize = 3;
/// The timestamp after which the kill happens.
const KILL_AT: usize = 5;

fn engine_config() -> EngineConfig {
    EngineConfig {
        num_shards: NUM_SHARDS,
        algo: ShardAlgo::Gma,
        halo_slack: 0.25,
        // One hot-standby follower per shard; quorum 1. The follower
        // threads live in the coordinator process, so a shard *process*
        // dying is exactly the failure they cover.
        replication: ReplicationConfig::with_replicas(1),
        // Last resort only: promotion must win before the planner moves
        // any cells (asserted below).
        takeover: true,
        ..EngineConfig::default()
    }
}

/// Child mode: `cluster_city shard-server <socket-path>` — build the
/// same network the coordinator holds, then serve one shard monitor on
/// the socket until the coordinator sends the shutdown frame.
fn shard_server(path: &str) {
    let cfg = engine_config();
    let monitor = cfg.make_monitor(city());
    serve_unix(std::path::Path::new(path), monitor, cfg.attribute_cells())
        .expect("shard server failed");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "shard-server" {
        shard_server(&args[2]);
        return;
    }

    let net = city();
    println!(
        "network: {} nodes, {} edges",
        net.num_nodes(),
        net.num_edges()
    );

    // One socket per shard in a throwaway directory; each child serves
    // exactly one coordinator connection.
    let dir = std::env::temp_dir().join(format!("rnn-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    let paths: Vec<std::path::PathBuf> = (0..NUM_SHARDS)
        .map(|s| dir.join(format!("shard-{s}.sock")))
        .collect();
    let exe = std::env::current_exe().expect("own executable path");
    let mut children: Vec<Child> = paths
        .iter()
        .map(|p| {
            Command::new(&exe)
                .arg("shard-server")
                .arg(p)
                .spawn()
                .expect("spawn shard server")
        })
        .collect();
    println!(
        "spawned {} shard processes: {:?}",
        children.len(),
        children.iter().map(|c| c.id()).collect::<Vec<_>>()
    );

    // The coordinator retries each connect while the children bind.
    let mut cluster =
        ClusterEngine::connect_unix(net.clone(), engine_config(), &paths, RetryPolicy::default())
            .expect("connect to shard servers");

    // Same workload and oracle as the in-process `sharded_city` example.
    let cfg = ScenarioConfig {
        num_objects: 3_000,
        num_queries: 120,
        k: 8,
        seed: 2024,
        ..Default::default()
    };
    let mut reference = Gma::new(net.clone());
    let scenario = Scenario::new(net.clone(), cfg.clone());
    scenario.install_into(&mut reference);
    let mut scenario = Scenario::new(net.clone(), cfg);
    scenario.install_into(&mut cluster);

    println!("\ndriving 10 timestamps over the socket cluster...");
    for t in 1..=10 {
        if t == KILL_AT + 1 {
            // SIGKILL one shard server between ticks: no shutdown frame,
            // no flush — the coordinator just finds the socket dead and
            // must promote the shard's follower replica.
            children[KILLED_SHARD].kill().expect("kill shard server");
            children[KILLED_SHARD].wait().expect("reap shard server");
            println!("  -- killed shard {KILLED_SHARD}'s leader process (SIGKILL, no warning)");
        }
        let batch = scenario.tick();
        reference.tick(&batch);
        let rep = cluster.tick(&batch);

        let mut ids = cluster.query_ids();
        ids.sort();
        let mut worst: f64 = 0.0;
        for &q in &ids {
            let a = reference.knn_dist(q).unwrap();
            let b = cluster.knn_dist(q).unwrap();
            if a.is_finite() && b.is_finite() {
                worst = worst.max((a - b).abs() / a.max(1.0));
            }
        }
        println!(
            "  t={t:2}: {:3} results changed, max kNN_dist divergence {worst:.2e}",
            rep.results_changed
        );
        assert!(worst < 1e-9, "cluster diverged from the oracle");
    }

    println!("\nper-shard transport counters after 10 ticks:");
    for (s, st) in cluster.shard_stats().iter().enumerate() {
        println!(
            "  shard {s}: {:4} frames out / {:4} in, {:8} bytes out / {:8} in, \
             {} retries, {} corrupt",
            st.frames_sent,
            st.frames_received,
            st.bytes_sent,
            st.bytes_received,
            st.retries,
            st.corrupt_frames
        );
    }
    let total = cluster.stats();
    println!(
        "  total: {} frames, {} KiB on the wire",
        total.frames_sent + total.frames_received,
        (total.bytes_sent + total.bytes_received) / 1024
    );

    let engine = cluster.engine();
    println!("\nfail-over after the SIGKILL:");
    println!(
        "  shard {KILLED_SHARD} dead: {}, live shards: {}/{}, follower promotions: {}, \
         takeovers executed: {}",
        engine.is_shard_dead(KILLED_SHARD),
        engine.live_shards(),
        NUM_SHARDS,
        total.failovers,
        engine.takeovers()
    );
    assert!(
        !engine.is_shard_dead(KILLED_SHARD),
        "the promoted follower should be serving shard {KILLED_SHARD}"
    );
    assert_eq!(
        engine.live_shards(),
        NUM_SHARDS,
        "promotion kept every shard live"
    );
    assert!(total.failovers >= 1, "no follower was promoted");
    assert_eq!(total.fenced_appends, 0, "a healthy run must not fence");
    assert_eq!(
        engine.takeovers(),
        0,
        "promotion must pre-empt the takeover planner"
    );

    // Dropping the engine ships the shutdown frames; the surviving
    // children exit cleanly (the killed one was reaped at kill time).
    drop(cluster);
    for (s, c) in children.iter_mut().enumerate() {
        if s == KILLED_SHARD {
            continue;
        }
        let status = c.wait().expect("wait for shard server");
        assert!(status.success(), "a shard server exited with {status}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nOK: answers identical to the single-process oracle through the kill; \
         shard {KILLED_SHARD}'s follower was promoted in place — no cells moved, \
         and the survivors exited cleanly."
    );
}
