//! Drives OVH, IMA and GMA side by side on the same city-scale workload and
//! prints a per-timestamp scoreboard: identical answers, very different
//! amounts of work — the paper's headline claim, live.
//!
//! ```text
//! cargo run --release --example algorithm_faceoff
//! ```

use std::sync::Arc;

use rnn_monitor::core::{ContinuousMonitor, Gma, Ima, Ovh};
use rnn_monitor::roadnet::generators::san_francisco_like;
use rnn_monitor::workload::{Scenario, ScenarioConfig};

fn main() {
    // A 1/20-scale Table 2 setup: 500-edge map, 5K objects, 250 queries.
    let net = Arc::new(san_francisco_like(500, 11));
    let cfg = ScenarioConfig {
        num_objects: 5_000,
        num_queries: 250,
        k: 10,
        seed: 4,
        ..Default::default()
    };
    let mut scenario = Scenario::new(net.clone(), cfg);

    let mut monitors: Vec<Box<dyn ContinuousMonitor>> = vec![
        Box::new(Ovh::new(net.clone())),
        Box::new(Ima::new(net.clone())),
        Box::new(Gma::new(net.clone())),
    ];
    for m in &mut monitors {
        scenario.install_into(m.as_mut());
    }

    println!(
        "{} edges, {} objects, {} queries, k = {}\n",
        net.num_edges(),
        5_000,
        250,
        10
    );
    println!(
        "{:>3} | {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9} | identical?",
        "ts", "OVH work", "IMA work", "GMA work", "OVH ms", "IMA ms", "GMA ms"
    );

    for t in 1..=12 {
        let batch = scenario.tick();
        let mut work = Vec::new();
        let mut ms = Vec::new();
        for m in &mut monitors {
            let rep = m.tick(&batch);
            work.push(rep.counters.work());
            ms.push(rep.elapsed.as_secs_f64() * 1e3);
        }
        // Verify all three agree on every query (distance multisets).
        let mut ids = monitors[0].query_ids();
        ids.sort();
        let identical = ids.iter().all(|&q| {
            let reference: Vec<f64> = monitors[0]
                .result(q)
                .unwrap()
                .iter()
                .map(|n| n.dist)
                .collect();
            monitors[1..].iter().all(|m| {
                let other: Vec<f64> = m.result(q).unwrap().iter().map(|n| n.dist).collect();
                reference.len() == other.len()
                    && reference
                        .iter()
                        .zip(&other)
                        .all(|(a, b)| (a - b).abs() <= 1e-9 * a.abs().max(1.0))
            })
        });
        println!(
            "{:>3} | {:>10} {:>10} {:>10} | {:>9.3} {:>9.3} {:>9.3} | {}",
            t,
            work[0],
            work[1],
            work[2],
            ms[0],
            ms[1],
            ms[2],
            if identical { "yes" } else { "NO!" }
        );
        assert!(identical, "monitors diverged — this would be a bug");
    }

    if let Some(groups) = monitors[2].active_groups() {
        println!("\nGMA monitored {groups} active intersection nodes for 250 queries");
    }
}
