//! The paper's §1 motivating scenario, both ways around:
//!
//! 1. **Cabs query clients** — vacant taxis are continuous 3-NN queries
//!    over the pedestrians asking for a ride (network distance = travel
//!    time along streets), monitored with GMA.
//! 2. **Clients claim cabs** (the §7 reverse problem) — for every taxi, the
//!    set of clients closer to it than to any other taxi, monitored with
//!    the CRNN extension.
//!
//! ```text
//! cargo run --example taxi_dispatch
//! ```

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnn_monitor::core::crnn::Crnn;
use rnn_monitor::core::{
    ContinuousMonitor, Gma, ObjectEvent, QueryEvent, UpdateBatch, UpdateEvent,
};
use rnn_monitor::roadnet::generators::{grid_city, GridCityConfig};
use rnn_monitor::roadnet::{NetPoint, PmrQuadtree};
use rnn_monitor::workload::movement::RandomWalker;
use rnn_monitor::{ObjectId, QueryId};

const NUM_TAXIS: u32 = 4;
const NUM_CLIENTS: u32 = 25;

fn main() {
    let net = Arc::new(grid_city(&GridCityConfig {
        nx: 10,
        ny: 10,
        seed: 3,
        ..Default::default()
    }));
    let quadtree = PmrQuadtree::build(&net); // SI: raw GPS fix -> edge
    let mut rng = StdRng::seed_from_u64(99);

    // Random initial placements via the spatial index, as a positioning
    // device would deliver them (coordinates, not edge ids).
    let random_pos = |rng: &mut StdRng| -> NetPoint {
        let b = net.bounds();
        let xy = rnn_monitor::roadnet::Point2::new(
            b.lo.x + rng.random::<f64>() * b.width(),
            b.lo.y + rng.random::<f64>() * b.height(),
        );
        quadtree.locate(&net, xy).expect("non-empty network")
    };

    // --- Direction 1: taxis are 3-NN queries over clients (GMA).
    let mut dispatch = Gma::new(net.clone());
    // --- Direction 2: clients are assigned to their closest taxi (CRNN).
    let mut claims = Crnn::new(net.clone());

    let mut client_walkers = Vec::new();
    for c in 0..NUM_CLIENTS {
        let pos = random_pos(&mut rng);
        dispatch.apply(UpdateEvent::insert_object(ObjectId(c), pos));
        claims.insert_object(ObjectId(c), pos);
        client_walkers.push(RandomWalker::new(&net, pos, &mut rng));
    }
    let mut taxi_walkers = Vec::new();
    for t in 0..NUM_TAXIS {
        let pos = random_pos(&mut rng);
        dispatch.apply(UpdateEvent::install_query(QueryId(t), 3, pos));
        claims.insert_query(QueryId(t), pos);
        taxi_walkers.push(RandomWalker::new(&net, pos, &mut rng));
    }

    println!(
        "== taxi dispatch on a {}-edge street map ==",
        net.num_edges()
    );
    for step in 1..=5 {
        // Taxis drive fast, clients stroll.
        let mut batch = UpdateBatch::default();
        let avg = net.avg_base_weight();
        for (t, w) in taxi_walkers.iter_mut().enumerate() {
            let to = w.step(&net, 2.0 * avg, &mut rng);
            batch.queries.push(QueryEvent::Move {
                id: QueryId(t as u32),
                to,
            });
        }
        for (c, w) in client_walkers.iter_mut().enumerate() {
            if rng.random::<f64>() < 0.3 {
                let to = w.step(&net, 0.5 * avg, &mut rng);
                batch.objects.push(ObjectEvent::Move {
                    id: ObjectId(c as u32),
                    to,
                });
            }
        }
        dispatch.tick(&batch);
        claims.tick(&batch);

        println!("\n-- timestamp {step} --");
        for t in 0..NUM_TAXIS {
            let q = QueryId(t);
            let nearest: Vec<String> = dispatch
                .result(q)
                .unwrap()
                .iter()
                .map(|n| format!("client {} ({:.0}m)", n.object, n.dist))
                .collect();
            let claimed = claims.reverse_nns(q).unwrap();
            println!(
                "taxi {t}: 3 closest -> [{}]; exclusively closest to {} client(s)",
                nearest.join(", "),
                claimed.len()
            );
        }
    }

    // Sanity: every client is claimed by exactly one taxi.
    let total: usize = (0..NUM_TAXIS)
        .map(|t| claims.reverse_nns(QueryId(t)).unwrap().len())
        .sum();
    assert_eq!(total, NUM_CLIENTS as usize);
    println!("\nall {NUM_CLIENTS} clients are assigned to exactly one taxi ✓");
}
