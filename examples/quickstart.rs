//! Quickstart: build a small city network, register objects and a few
//! continuous k-NN queries, and watch the results evolve as everything
//! moves.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use rnn_monitor::core::{ContinuousMonitor, Ima};
use rnn_monitor::roadnet::generators::{grid_city, GridCityConfig};
use rnn_monitor::workload::{Scenario, ScenarioConfig};
use rnn_monitor::QueryId;

fn main() {
    // 1. A synthetic city: a jittered 12×12 grid with pruned streets and
    //    degree-2 chains, base weights = segment lengths.
    let net = Arc::new(grid_city(&GridCityConfig {
        nx: 12,
        ny: 12,
        seed: 7,
        ..Default::default()
    }));
    println!(
        "network: {} nodes, {} edges, connected = {}",
        net.num_nodes(),
        net.num_edges(),
        net.is_connected()
    );

    // 2. A workload: 500 objects (uniform), 10 queries (Gaussian cluster),
    //    k = 5; the Table 2 default agilities.
    let cfg = ScenarioConfig {
        num_objects: 500,
        num_queries: 10,
        k: 5,
        seed: 1,
        ..Default::default()
    };
    let mut scenario = Scenario::new(net.clone(), cfg);

    // 3. The incremental monitoring server (IMA, §4 of the paper).
    let mut server = Ima::new(net.clone());
    scenario.install_into(&mut server);

    let q = QueryId(0);
    println!("\ninitial 5-NN set of query {q}:");
    for n in server.result(q).unwrap() {
        println!(
            "  object {:>4}  at network distance {:>8.2}",
            n.object, n.dist
        );
    }

    // 4. Advance ten timestamps: objects/queries move, edge weights
    //    fluctuate; the server maintains every result incrementally.
    for t in 1..=10 {
        let batch = scenario.tick();
        let report = server.tick(&batch);
        println!(
            "t={t:>2}: {:>4} events, {:>3} results changed, {:>6} nodes expanded, {:>5} updates ignored, {:?}",
            batch.len(),
            report.results_changed,
            report.counters.nodes_settled,
            report.counters.updates_ignored,
            report.elapsed,
        );
    }

    println!(
        "\nfinal 5-NN set of query {q} (kNN_dist = {:.2}):",
        server.knn_dist(q).unwrap()
    );
    for n in server.result(q).unwrap() {
        println!(
            "  object {:>4}  at network distance {:>8.2}",
            n.object, n.dist
        );
    }
}
