//! Differential validation of the CRNN extension against a brute-force
//! oracle, plus longer stress runs of the three k-NN monitors.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnn_monitor::core::crnn::Crnn;
use rnn_monitor::core::{ContinuousMonitor, Gma, Ima, ObjectEvent, Ovh, QueryEvent, UpdateBatch};
use rnn_monitor::roadnet::{
    generators, DijkstraEngine, EdgeId, EdgeWeights, NetPoint, ObjectId, QueryId,
};
use rnn_monitor::workload::{Scenario, ScenarioConfig};

/// Brute-force reverse-NN oracle: assign every object to its closest query
/// (ties by query id, matching the deterministic `(dist, id)` order).
fn brute_rnn(
    net: &rnn_monitor::RoadNetwork,
    weights: &EdgeWeights,
    objects: &[(ObjectId, NetPoint)],
    queries: &[(QueryId, NetPoint)],
) -> Vec<(ObjectId, Option<QueryId>)> {
    let mut eng = DijkstraEngine::new(net.num_nodes());
    objects
        .iter()
        .map(|&(oid, opos)| {
            let mut best: Option<(f64, QueryId)> = None;
            for &(qid, qpos) in queries {
                let d = eng.dist_between_points(net, weights, opos, qpos);
                let better = match best {
                    None => d.is_finite(),
                    Some((bd, bq)) => d < bd || (d == bd && qid < bq),
                };
                if better {
                    best = Some((d, qid));
                }
            }
            (oid, best.map(|(_, q)| q))
        })
        .collect()
}

#[test]
fn crnn_matches_brute_force_over_random_run() {
    let net = Arc::new(generators::grid_city(&generators::GridCityConfig {
        nx: 7,
        ny: 7,
        seed: 17,
        ..Default::default()
    }));
    let ne = net.num_edges() as u32;
    let mut rng = StdRng::seed_from_u64(5);
    let mut crnn = Crnn::new(net.clone());

    let mut weights = EdgeWeights::from_base(&net);
    let mut queries: Vec<(QueryId, NetPoint)> = Vec::new();
    let mut objects: Vec<(ObjectId, NetPoint)> = Vec::new();
    for q in 0..5u32 {
        let p = NetPoint::new(EdgeId(rng.random_range(0..ne)), rng.random());
        crnn.insert_query(QueryId(q), p);
        queries.push((QueryId(q), p));
    }
    for o in 0..30u32 {
        let p = NetPoint::new(EdgeId(rng.random_range(0..ne)), rng.random());
        crnn.insert_object(ObjectId(o), p);
        objects.push((ObjectId(o), p));
    }

    for tick in 0..10 {
        // Random mixed batch: move some objects, some queries, scale edges.
        let mut batch = UpdateBatch::default();
        for _ in 0..6 {
            let i = rng.random_range(0..objects.len());
            let to = NetPoint::new(EdgeId(rng.random_range(0..ne)), rng.random());
            objects[i].1 = to;
            batch.objects.push(ObjectEvent::Move {
                id: objects[i].0,
                to,
            });
        }
        if tick % 2 == 0 {
            let i = rng.random_range(0..queries.len());
            let to = NetPoint::new(EdgeId(rng.random_range(0..ne)), rng.random());
            queries[i].1 = to;
            batch.queries.push(QueryEvent::Move {
                id: queries[i].0,
                to,
            });
        }
        for _ in 0..4 {
            let e = EdgeId(rng.random_range(0..ne));
            let new_w = weights.get(e) * if rng.random::<bool>() { 1.1 } else { 0.9 };
            weights.set(e, new_w);
            batch.edges.push(rnn_monitor::core::EdgeWeightUpdate {
                edge: e,
                new_weight: new_w,
            });
        }
        crnn.tick(&batch);

        let oracle = brute_rnn(&net, &weights, &objects, &queries);
        for (oid, expect) in oracle {
            let got = crnn.nearest_query_of(oid);
            // Exact ties between two queries are resolvable either way as
            // long as the distance is equal; check distance equality then.
            if got != expect {
                let mut eng = DijkstraEngine::new(net.num_nodes());
                let opos = objects.iter().find(|&&(o, _)| o == oid).unwrap().1;
                let d_got = got
                    .map(|q| {
                        let qpos = queries.iter().find(|&&(x, _)| x == q).unwrap().1;
                        eng.dist_between_points(&net, &weights, opos, qpos)
                    })
                    .unwrap_or(f64::INFINITY);
                let d_expect = expect
                    .map(|q| {
                        let qpos = queries.iter().find(|&&(x, _)| x == q).unwrap().1;
                        eng.dist_between_points(&net, &weights, opos, qpos)
                    })
                    .unwrap_or(f64::INFINITY);
                assert!(
                    (d_got - d_expect).abs() <= 1e-9 * d_expect.max(1.0),
                    "tick {tick}: object {oid} assigned {got:?} ({d_got}) vs oracle {expect:?} ({d_expect})"
                );
            }
        }
        // The reverse map partitions all objects.
        let total: usize = (0..5u32)
            .map(|q| crnn.reverse_nns(QueryId(q)).unwrap().len())
            .sum();
        assert_eq!(
            total,
            objects.len(),
            "tick {tick}: RNN sets must partition objects"
        );
    }
}

/// A long mixed run on a mid-sized map: 60 timestamps, periodic deep
/// validation of IMA's internal invariants, final result equality.
#[test]
fn long_stress_run_stays_consistent() {
    let net = Arc::new(generators::san_francisco_like(600, 23));
    let cfg = ScenarioConfig {
        num_objects: 400,
        num_queries: 40,
        k: 8,
        edge_agility: 0.06,
        object_agility: 0.15,
        query_agility: 0.15,
        seed: 9,
        ..Default::default()
    };
    let mut scenario = Scenario::new(net.clone(), cfg);
    let mut ovh = Ovh::new(net.clone());
    let mut ima = Ima::new(net.clone());
    let mut gma = Gma::new(net.clone());
    scenario.install_into(&mut ovh);
    scenario.install_into(&mut ima);
    scenario.install_into(&mut gma);

    let mut total_ovh_work = 0u64;
    let mut total_ima_work = 0u64;
    for t in 1..=60usize {
        let batch = scenario.tick();
        total_ovh_work += ovh.tick(&batch).counters.work();
        total_ima_work += ima.tick(&batch).counters.work();
        gma.tick(&batch);
        if t % 20 == 0 {
            ima.validate_invariants();
        }
        if t % 10 == 0 {
            let mut ids = ovh.query_ids();
            ids.sort();
            for q in ids {
                let a: Vec<f64> = ovh.result(q).unwrap().iter().map(|n| n.dist).collect();
                for m in [&ima as &dyn ContinuousMonitor, &gma] {
                    let b: Vec<f64> = m.result(q).unwrap().iter().map(|n| n.dist).collect();
                    assert_eq!(a.len(), b.len(), "t={t} q={q} {}", m.name());
                    for (x, y) in a.iter().zip(&b) {
                        assert!(
                            (x - y).abs() <= 1e-9 * x.max(1.0),
                            "t={t} q={q} {}: {x} vs {y}",
                            m.name()
                        );
                    }
                }
            }
        }
    }
    // The headline claim must hold over the long run too.
    assert!(
        total_ima_work < total_ovh_work,
        "incremental ({total_ima_work}) must beat overhaul ({total_ovh_work})"
    );
}

/// Memory accounting responds to load: more queries and larger k mean more
/// tree/influence state for IMA, less so for GMA (Fig. 18's mechanism).
#[test]
fn memory_scales_with_queries_and_k() {
    let net = Arc::new(generators::san_francisco_like(400, 31));
    let build = |q: usize, k: usize| -> (usize, usize) {
        let cfg = ScenarioConfig {
            num_objects: 800,
            num_queries: q,
            k,
            seed: 3,
            ..Default::default()
        };
        let scenario = Scenario::new(net.clone(), cfg);
        let mut ima = Ima::new(net.clone());
        let mut gma = Gma::new(net.clone());
        scenario.install_into(&mut ima);
        scenario.install_into(&mut gma);
        let algo_mem = |m: &dyn ContinuousMonitor| {
            let mem = m.memory();
            mem.query_table + mem.expansion_trees + mem.influence_lists
        };
        (algo_mem(&ima), algo_mem(&gma))
    };
    let (ima_small, _) = build(10, 4);
    let (ima_more_q, _) = build(40, 4);
    let (ima_big_k, gma_big_k) = build(40, 16);
    assert!(ima_more_q > ima_small, "more queries -> more IMA state");
    assert!(ima_big_k > ima_more_q, "larger k -> larger trees");
    assert!(
        ima_big_k > gma_big_k,
        "IMA stores per-query trees, GMA only per active node ({ima_big_k} vs {gma_big_k})"
    );
}
