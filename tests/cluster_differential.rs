//! Differential correctness of the cluster: a `ClusterEngine` (shards
//! behind the RPC layer, loopback transports) must be **bit-identical** —
//! result snapshots, `kNN_dist` bits, and deterministic work counters —
//! to an in-process `ShardedEngine` fed the same update stream, at
//! S ∈ {1, 2, 4}, across the engine differential suite's workloads, and
//! under every injected transport fault: delay, reordering, frame
//! corruption, a forced mid-run shard crash (respawn + journal replay),
//! and forced cell migrations.
//!
//! Unlike `engine_differential.rs` (which compares against a *different*
//! implementation and therefore tolerates tie-breaks and summation
//! noise), both sides here run the very same engine code — any
//! divergence at all is an RPC-layer bug, so everything compares exactly.

use std::sync::Arc;
use std::time::Duration;

use rnn_monitor::cluster::{ClusterEngine, FaultPlan, RetryPolicy};
use rnn_monitor::core::{ContinuousMonitor, QueryEvent, TickReport, UpdateBatch, UpdateEvent};
use rnn_monitor::engine::{EngineConfig, ShardAlgo, ShardedEngine};
use rnn_monitor::roadnet::{generators, EdgeId, NetPoint, ObjectId, QueryId, RoadNetwork};
use rnn_monitor::workload::{MovementModel, Scenario, ScenarioConfig};

fn grid(nx: usize, ny: usize, seed: u64) -> Arc<RoadNetwork> {
    Arc::new(generators::grid_city(&generators::GridCityConfig {
        nx,
        ny,
        seed,
        ..Default::default()
    }))
}

fn base_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        num_objects: 80,
        num_queries: 12,
        k: 4,
        seed,
        ..Default::default()
    }
}

/// Exact comparison: same query sets, bit-identical results and
/// `kNN_dist`, identical deterministic tick counters.
fn assert_bit_identical(
    inproc: &ShardedEngine,
    cluster: &ClusterEngine,
    reports: Option<(&TickReport, &TickReport)>,
    ctx: &str,
) {
    let mut ids = inproc.query_ids();
    ids.sort();
    let mut cids = cluster.query_ids();
    cids.sort();
    assert_eq!(ids, cids, "{ctx}: query sets diverge");
    for &qid in &ids {
        assert_eq!(
            inproc.result(qid).unwrap(),
            cluster.result(qid).unwrap(),
            "{ctx}, query {qid}: results diverge"
        );
        assert_eq!(
            inproc.knn_dist(qid).unwrap().to_bits(),
            cluster.knn_dist(qid).unwrap().to_bits(),
            "{ctx}, query {qid}: kNN_dist bits diverge"
        );
    }
    if let Some((ri, rc)) = reports {
        assert_eq!(ri.counters, rc.counters, "{ctx}: work counters diverge");
        assert_eq!(
            ri.results_changed, rc.results_changed,
            "{ctx}: results_changed diverges"
        );
    }
}

/// Drives one scenario into an in-process engine and a loopback cluster
/// with the given fault plans, at S ∈ {1, 2, 4}, comparing exactly after
/// installation and after every tick.
fn run_cluster_differential_with(
    net: Arc<RoadNetwork>,
    cfg: ScenarioConfig,
    ticks: usize,
    algo: ShardAlgo,
    plans: &[FaultPlan],
    policy: RetryPolicy,
) {
    for shards in [1usize, 2, 4] {
        let ecfg = EngineConfig {
            num_shards: shards,
            algo,
            ..EngineConfig::default()
        };
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        let mut cluster = ClusterEngine::loopback_with_faults(net.clone(), ecfg, plans, policy);
        let mut scenario = Scenario::new(net.clone(), cfg.clone());
        scenario.install_into(&mut inproc);
        scenario.install_into(&mut cluster);
        assert_bit_identical(&inproc, &cluster, None, &format!("S={shards}, install"));
        for t in 1..=ticks {
            let batch = scenario.tick();
            let ri = inproc.tick(&batch);
            let rc = cluster.tick(&batch);
            assert_bit_identical(
                &inproc,
                &cluster,
                Some((&ri, &rc)),
                &format!("S={shards}, tick {t}"),
            );
        }
        let stats = cluster.stats();
        assert!(stats.frames_sent > 0, "S={shards}: no frames on the wire?");
        assert_eq!(
            inproc.memory(),
            cluster.memory(),
            "S={shards}: memory reports diverge"
        );
    }
}

fn run_cluster_differential(
    net: Arc<RoadNetwork>,
    cfg: ScenarioConfig,
    ticks: usize,
    algo: ShardAlgo,
) {
    run_cluster_differential_with(
        net,
        cfg,
        ticks,
        algo,
        &[FaultPlan::default()],
        RetryPolicy::default(),
    );
}

// -------------------------------------------------------------------
// The engine differential suite's workloads, cluster vs in-process.
// -------------------------------------------------------------------

#[test]
fn cluster_matches_engine_gma_default_workload() {
    run_cluster_differential(grid(8, 8, 1), base_cfg(11), 15, ShardAlgo::Gma);
}

#[test]
fn cluster_matches_engine_ima_default_workload() {
    run_cluster_differential(grid(7, 9, 2), base_cfg(22), 15, ShardAlgo::Ima);
}

#[test]
fn cluster_matches_engine_ovh_workload() {
    run_cluster_differential(grid(9, 7, 3), base_cfg(33), 10, ShardAlgo::Ovh);
}

#[test]
fn cluster_k_equals_one() {
    run_cluster_differential(
        grid(8, 8, 4),
        ScenarioConfig {
            k: 1,
            ..base_cfg(44)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_large_k_forces_wide_halos() {
    run_cluster_differential(
        grid(6, 6, 5),
        ScenarioConfig {
            k: 25,
            num_objects: 60,
            ..base_cfg(55)
        },
        10,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_underfull_results() {
    run_cluster_differential(
        grid(5, 5, 6),
        ScenarioConfig {
            k: 10,
            num_objects: 6,
            num_queries: 5,
            ..base_cfg(66)
        },
        8,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_edge_heavy_workload() {
    run_cluster_differential(
        grid(8, 8, 7),
        ScenarioConfig {
            edge_agility: 0.30,
            object_agility: 0.0,
            query_agility: 0.0,
            ..base_cfg(77)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_query_heavy_workload() {
    run_cluster_differential(
        grid(8, 8, 8),
        ScenarioConfig {
            edge_agility: 0.0,
            object_agility: 0.0,
            query_agility: 0.8,
            query_speed: 2.0,
            ..base_cfg(88)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_object_heavy_fast_workload() {
    run_cluster_differential(
        grid(8, 8, 9),
        ScenarioConfig {
            edge_agility: 0.0,
            object_agility: 0.9,
            object_speed: 4.0,
            query_agility: 0.0,
            ..base_cfg(99)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_everything_agile_with_ima() {
    run_cluster_differential(
        grid(7, 7, 10),
        ScenarioConfig {
            edge_agility: 0.25,
            object_agility: 0.5,
            query_agility: 0.5,
            object_speed: 2.0,
            query_speed: 2.0,
            ..base_cfg(110)
        },
        12,
        ShardAlgo::Ima,
    );
}

#[test]
fn cluster_brinkhoff_movement() {
    run_cluster_differential(
        grid(7, 7, 11),
        ScenarioConfig {
            movement: MovementModel::Brinkhoff,
            ..base_cfg(121)
        },
        10,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_san_francisco_like_slice() {
    let net = Arc::new(generators::san_francisco_like(600, 12));
    run_cluster_differential(
        net,
        ScenarioConfig {
            num_objects: 120,
            num_queries: 15,
            k: 5,
            ..base_cfg(131)
        },
        6,
        ShardAlgo::Gma,
    );
}

#[test]
fn cluster_query_churn_mid_run() {
    let net = grid(8, 8, 13);
    let mut scenario = Scenario::new(net.clone(), base_cfg(141));
    let mut inproc = ShardedEngine::new(net.clone(), EngineConfig::with_shards(4));
    let mut cluster = ClusterEngine::loopback(net.clone(), EngineConfig::with_shards(4));
    scenario.install_into(&mut inproc);
    scenario.install_into(&mut cluster);

    for t in 1..=12usize {
        let mut batch = scenario.tick();
        if t % 3 == 0 {
            let e = EdgeId((t % net.num_edges()) as u32);
            batch.queries.push(QueryEvent::Install {
                id: QueryId(1000 + t as u32),
                k: 3,
                at: NetPoint::new(e, 0.4),
            });
        }
        if t % 3 == 2 && t > 3 {
            batch.queries.push(QueryEvent::Remove {
                id: QueryId(1000 + (t - 2) as u32),
            });
        }
        let ri = inproc.tick(&batch);
        let rc = cluster.tick(&batch);
        assert_bit_identical(
            &inproc,
            &cluster,
            Some((&ri, &rc)),
            &format!("churn tick {t}"),
        );
    }
}

#[test]
fn cluster_empty_ticks_change_nothing() {
    let net = grid(6, 6, 14);
    let scenario = Scenario::new(net.clone(), base_cfg(151));
    let mut cluster = ClusterEngine::loopback(net, EngineConfig::with_shards(4));
    scenario.install_into(&mut cluster);
    let snapshot: Vec<_> = {
        let mut ids = cluster.query_ids();
        ids.sort();
        ids.iter()
            .map(|&q| cluster.result(q).unwrap().to_vec())
            .collect()
    };
    for _ in 0..3 {
        let rep = cluster.tick(&UpdateBatch::default());
        assert_eq!(rep.results_changed, 0);
    }
    let mut ids = cluster.query_ids();
    ids.sort();
    for (i, &q) in ids.iter().enumerate() {
        assert_eq!(cluster.result(q).unwrap(), snapshot[i].as_slice());
    }
}

// -------------------------------------------------------------------
// Fault injection: the same workloads must stay bit-identical when the
// transport misbehaves.
// -------------------------------------------------------------------

#[test]
fn cluster_identical_under_injected_delay() {
    run_cluster_differential_with(
        grid(8, 8, 1),
        base_cfg(11),
        8,
        ShardAlgo::Gma,
        &[FaultPlan {
            delay: Duration::from_millis(2),
            ..Default::default()
        }],
        RetryPolicy::default(),
    );
}

#[test]
fn cluster_identical_under_reordering() {
    // Every 4th request frame is held back and delivered after its
    // successor; the coordinator's timeout + retransmit and the
    // service's sequence dedup must hide it completely.
    run_cluster_differential_with(
        grid(8, 8, 1),
        base_cfg(11),
        8,
        ShardAlgo::Gma,
        &[FaultPlan {
            reorder_every: 4,
            ..Default::default()
        }],
        RetryPolicy {
            timeout: Duration::from_millis(40),
            max_retries: 8,
        },
    );
}

#[test]
fn cluster_identical_under_frame_corruption() {
    // Every 5th request frame gets one byte flipped. The service must
    // reject it on checksum (never panic, never apply) and the
    // coordinator must recover by retransmission.
    let net = grid(8, 8, 1);
    let cfg = base_cfg(11);
    let policy = RetryPolicy {
        timeout: Duration::from_millis(40),
        max_retries: 8,
    };
    let plans = [FaultPlan {
        corrupt_every: 5,
        ..Default::default()
    }];
    run_cluster_differential_with(net.clone(), cfg, 8, ShardAlgo::Gma, &plans, policy);

    // And the retry counter must actually show the recoveries.
    let ecfg = EngineConfig::with_shards(2);
    let mut cluster = ClusterEngine::loopback_with_faults(net.clone(), ecfg, &plans, policy);
    let mut scenario = Scenario::new(net, base_cfg(11));
    scenario.install_into(&mut cluster);
    for _ in 0..6 {
        let batch = scenario.tick();
        cluster.tick(&batch);
    }
    assert!(
        cluster.stats().retries > 0,
        "corruption every 5 frames must force retransmits"
    );
}

#[test]
fn cluster_identical_through_mid_run_shard_crash() {
    // Shard 0's service dies after 12 delivered frames — after the
    // install phase, in the middle of the tick phase, for both shard
    // counts (at S=2 installation alone delivers 11 frames to shard 0;
    // the full 12-tick run delivers 23). The coordinator must respawn it
    // and replay the journal into the fresh monitor, with every
    // subsequent answer still bit-identical.
    let net = grid(8, 8, 1);
    let cfg = base_cfg(11);
    let crash_plan = FaultPlan {
        crash_after_frames: 12,
        ..Default::default()
    };
    for shards in [2usize, 4] {
        let ecfg = EngineConfig::with_shards(shards);
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        // Only shard 0 crashes; the rest run fault-free.
        let mut plans = vec![FaultPlan::default(); shards];
        plans[0] = crash_plan;
        let mut cluster =
            ClusterEngine::loopback_with_faults(net.clone(), ecfg, &plans, RetryPolicy::default());
        let mut scenario = Scenario::new(net.clone(), cfg.clone());
        scenario.install_into(&mut inproc);
        scenario.install_into(&mut cluster);
        for t in 1..=12usize {
            let batch = scenario.tick();
            let ri = inproc.tick(&batch);
            let rc = cluster.tick(&batch);
            assert_bit_identical(
                &inproc,
                &cluster,
                Some((&ri, &rc)),
                &format!("S={shards}, crash run, tick {t}"),
            );
        }
        let stats = cluster.stats();
        assert!(
            stats.crash_recoveries >= 1,
            "S={shards}: the planned crash must have fired (stats: {stats:?})"
        );
    }
}

#[test]
fn cluster_identical_under_forced_migrations() {
    // The hotspot workload of `engine_rebalances_under_hotspot_...`: an
    // aggressive rebalancer migrates cells mid-run, and the migration
    // hand-off travels as typed frames. Everything must stay identical.
    let net = grid(8, 8, 23);
    let n = net.num_edges() as u32;
    for shards in [2usize, 4] {
        let ecfg = EngineConfig {
            num_shards: shards,
            rebalance_trigger: 1.0,
            rebalance_cooldown: 1,
            ..EngineConfig::default()
        };
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        let mut cluster = ClusterEngine::loopback(net.clone(), ecfg);
        for i in 0..n {
            let at = NetPoint::new(EdgeId(i), 0.45);
            inproc.apply(UpdateEvent::insert_object(ObjectId(i), at));
            cluster.apply(UpdateEvent::insert_object(ObjectId(i), at));
        }
        const Q: u32 = 8;
        for q in 0..Q {
            let at = NetPoint::new(EdgeId(q % 4), 0.3);
            inproc.apply(UpdateEvent::install_query(QueryId(q), 5, at));
            cluster.apply(UpdateEvent::install_query(QueryId(q), 5, at));
        }
        for t in 0..24u32 {
            let mut batch = UpdateBatch::default();
            for q in 0..Q {
                let e = EdgeId((t * 2 + q % 4) % n);
                let frac = if (t + q) % 2 == 0 { 0.25 } else { 0.7 };
                batch.queries.push(QueryEvent::Move {
                    id: QueryId(q),
                    to: NetPoint::new(e, frac),
                });
            }
            batch.objects.push(rnn_monitor::core::ObjectEvent::Move {
                id: ObjectId(t % n),
                to: NetPoint::new(EdgeId((t * 3) % n), 0.6),
            });
            let ri = inproc.tick(&batch);
            let rc = cluster.tick(&batch);
            assert_bit_identical(
                &inproc,
                &cluster,
                Some((&ri, &rc)),
                &format!("S={shards}, migration run, tick {t}"),
            );
            cluster
                .engine()
                .validate_replication()
                .expect("invariants hold mid-migration over RPC");
        }
        assert!(
            cluster.engine().cells_migrated() > 0,
            "S={shards}: the drifting hotspot must force cell migrations"
        );
        assert_eq!(
            inproc.cells_migrated(),
            cluster.engine().cells_migrated(),
            "S={shards}: migration schedules diverge"
        );
    }
}
