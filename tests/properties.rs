//! Property-based tests (proptest) on the core data structures and on the
//! end-to-end monitoring invariants.

use std::sync::Arc;

use proptest::prelude::*;
use rnn_monitor::cluster::wal as cluster_wal;
use rnn_monitor::core::influence::IntervalSet;
use rnn_monitor::core::{ContinuousMonitor, Gma, Ima, MonitorState, Ovh, UpdateBatch, UpdateEvent};
use rnn_monitor::core::{EdgeWeightUpdate, ObjectEvent, QueryEvent};
use rnn_monitor::roadnet::{
    generators, DijkstraEngine, EdgeId, EdgeWeights, NetPoint, NodeId, ObjectId, QueryId,
    RoadNetwork, SequenceTable,
};

// ---------------------------------------------------------------------
// IntervalSet properties.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn interval_membership_matches_construction(
        lo1 in 0.0f64..1.0, len1 in 0.0f64..1.0,
        probe in 0.0f64..1.0,
    ) {
        let hi1 = (lo1 + len1).min(1.0);
        let s = IntervalSet::single(lo1, hi1);
        prop_assert_eq!(s.covers(probe), probe >= lo1 && probe <= hi1);
    }

    #[test]
    fn interval_union_covers_both(
        lo1 in 0.0f64..1.0, len1 in 0.0f64..0.5,
        lo2 in 0.0f64..1.0, len2 in 0.0f64..0.5,
        probe in 0.0f64..1.0,
    ) {
        let hi1 = (lo1 + len1).min(1.0);
        let hi2 = (lo2 + len2).min(1.0);
        let mut s = IntervalSet::single(lo1, hi1);
        // `add` panics only when three disjoint ranges would be needed —
        // with two ranges that cannot happen.
        s.add(lo2, hi2);
        let expect = (probe >= lo1 && probe <= hi1) || (probe >= lo2 && probe <= hi2);
        prop_assert_eq!(s.covers(probe), expect);
    }
}

// ---------------------------------------------------------------------
// Dijkstra / quadtree / sequences on random networks.
// ---------------------------------------------------------------------

fn random_grid(seed: u64) -> RoadNetwork {
    generators::grid_city(&generators::GridCityConfig {
        nx: 5,
        ny: 5,
        seed,
        ..Default::default()
    })
}

/// Floyd–Warshall oracle for node-to-node distances.
fn floyd_warshall(net: &RoadNetwork, w: &EdgeWeights) -> Vec<Vec<f64>> {
    let n = net.num_nodes();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for e in net.edge_ids() {
        let rec = net.edge(e);
        let (a, b) = (rec.start.index(), rec.end.index());
        d[a][b] = d[a][b].min(w.get(e));
        d[b][a] = d[b][a].min(w.get(e));
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dijkstra_matches_floyd_warshall(seed in 0u64..200) {
        let net = random_grid(seed);
        let w = EdgeWeights::from_base(&net);
        let oracle = floyd_warshall(&net, &w);
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let src = rnn_monitor::NodeId((seed % net.num_nodes() as u64) as u32);
        eng.sssp(&net, &w, src, None);
        for n in net.node_ids() {
            let got = eng.dist_of(n).unwrap_or(f64::INFINITY);
            let want = oracle[src.index()][n.index()];
            prop_assert!((got - want).abs() <= 1e-9 * want.max(1.0),
                "node {n:?}: {got} vs {want}");
        }
    }

    #[test]
    fn sequences_partition_edges(seed in 0u64..200) {
        let net = random_grid(seed);
        let st = SequenceTable::build(&net);
        let mut covered = vec![0usize; net.num_edges()];
        for s in st.iter() {
            for &e in &s.edges {
                covered[e.index()] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "seed {seed}: not a partition");
    }

    #[test]
    fn quadtree_locate_is_consistent(seed in 0u64..100, t in 0.05f64..0.95) {
        let net = random_grid(seed);
        let qt = rnn_monitor::roadnet::PmrQuadtree::build(&net);
        for e in net.edge_ids().step_by(7) {
            let p = NetPoint::new(e, t);
            let xy = p.coordinates(&net);
            let found = qt.locate(&net, xy).unwrap();
            prop_assert!(found.coordinates(&net).dist(xy) < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end monitoring properties on random update streams.
// ---------------------------------------------------------------------

/// A compact random update program applied identically to all monitors.
#[derive(Debug, Clone)]
enum Op {
    MoveObject { idx: u8, edge: u16, frac: f64 },
    DeleteObject { idx: u8 },
    InsertObject { idx: u8, edge: u16, frac: f64 },
    MoveQuery { idx: u8, edge: u16, frac: f64 },
    ScaleEdge { edge: u16, factor: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>(), 0.0f64..1.0).prop_map(|(idx, edge, frac)| Op::MoveObject {
            idx,
            edge,
            frac
        }),
        any::<u8>().prop_map(|idx| Op::DeleteObject { idx }),
        (any::<u8>(), any::<u16>(), 0.0f64..1.0).prop_map(|(idx, edge, frac)| Op::InsertObject {
            idx,
            edge,
            frac
        }),
        (any::<u8>(), any::<u16>(), 0.0f64..1.0).prop_map(|(idx, edge, frac)| Op::MoveQuery {
            idx,
            edge,
            frac
        }),
        (any::<u16>(), 0.5f64..2.0).prop_map(|(edge, factor)| Op::ScaleEdge { edge, factor }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random update programs: IMA and GMA always agree with the
    /// from-scratch oracle, and IMA's internal invariants hold.
    #[test]
    fn monitors_agree_on_random_programs(
        seed in 0u64..50,
        k in 1usize..6,
        ticks in prop::collection::vec(prop::collection::vec(op_strategy(), 0..6), 1..8),
    ) {
        let net = Arc::new(random_grid(seed));
        let ne = net.num_edges() as u16;
        let mut ovh = Ovh::new(net.clone());
        let mut ima = Ima::new(net.clone());
        let mut gma = Gma::new(net.clone());
        // 12 objects, 4 queries at deterministic spots.
        for i in 0..12u32 {
            let e = EdgeId((i * 5) % ne as u32);
            let p = NetPoint::new(e, 0.3 + 0.05 * i as f64 % 0.6);
            ovh.apply(UpdateEvent::insert_object(ObjectId(i), p));
            ima.apply(UpdateEvent::insert_object(ObjectId(i), p));
            gma.apply(UpdateEvent::insert_object(ObjectId(i), p));
        }
        for i in 0..4u32 {
            let e = EdgeId((i * 11 + 3) % ne as u32);
            let p = NetPoint::new(e, 0.5);
            ovh.apply(UpdateEvent::install_query(QueryId(i), k, p));
            ima.apply(UpdateEvent::install_query(QueryId(i), k, p));
            gma.apply(UpdateEvent::install_query(QueryId(i), k, p));
        }

        let mut weights = EdgeWeights::from_base(&net);
        for ops in &ticks {
            let mut batch = UpdateBatch::default();
            for op in ops {
                match *op {
                    Op::MoveObject { idx, edge, frac } => {
                        batch.objects.push(ObjectEvent::Move {
                            id: ObjectId(u32::from(idx % 16)),
                            to: NetPoint::new(EdgeId(u32::from(edge % ne)), frac),
                        });
                    }
                    Op::DeleteObject { idx } => {
                        batch.objects.push(ObjectEvent::Delete { id: ObjectId(u32::from(idx % 16)) });
                    }
                    Op::InsertObject { idx, edge, frac } => {
                        batch.objects.push(ObjectEvent::Insert {
                            id: ObjectId(u32::from(idx % 16)),
                            at: NetPoint::new(EdgeId(u32::from(edge % ne)), frac),
                        });
                    }
                    Op::MoveQuery { idx, edge, frac } => {
                        batch.queries.push(QueryEvent::Move {
                            id: QueryId(u32::from(idx % 4)),
                            to: NetPoint::new(EdgeId(u32::from(edge % ne)), frac),
                        });
                    }
                    Op::ScaleEdge { edge, factor } => {
                        let e = EdgeId(u32::from(edge % ne));
                        let new_w = weights.get(e) * factor;
                        weights.set(e, new_w);
                        batch.edges.push(EdgeWeightUpdate { edge: e, new_weight: new_w });
                    }
                }
            }
            // Moves of deleted objects are invalid; sanitize like a real
            // feed would (move-after-delete within a tick is legal and
            // handled by coalescing, so only drop moves of ids that are
            // gone *entering* the tick and not re-inserted first).
            ovh.tick(&batch);
            ima.tick(&batch);
            gma.tick(&batch);

            for q in 0..4u32 {
                let a = ovh.result(QueryId(q)).unwrap();
                let b = ima.result(QueryId(q)).unwrap();
                let c = gma.result(QueryId(q)).unwrap();
                prop_assert_eq!(a.len(), b.len(), "IMA size, query {}", q);
                prop_assert_eq!(a.len(), c.len(), "GMA size, query {}", q);
                let mut da: Vec<f64> = a.iter().map(|n| n.dist).collect();
                let mut db: Vec<f64> = b.iter().map(|n| n.dist).collect();
                let mut dc: Vec<f64> = c.iter().map(|n| n.dist).collect();
                da.sort_by(|x, y| x.partial_cmp(y).unwrap());
                db.sort_by(|x, y| x.partial_cmp(y).unwrap());
                dc.sort_by(|x, y| x.partial_cmp(y).unwrap());
                for ((x, y), z) in da.iter().zip(&db).zip(&dc) {
                    prop_assert!((x - y).abs() <= 1e-9 * x.max(1.0), "IMA {} vs {}", x, y);
                    prop_assert!((x - z).abs() <= 1e-9 * x.max(1.0), "GMA {} vs {}", x, z);
                }
            }
        }
        ima.validate_invariants();
    }

    /// Results are always sorted, deduplicated, within k, and kNN_dist
    /// equals the k-th distance.
    #[test]
    fn result_shape_invariants(seed in 0u64..30, k in 1usize..8) {
        let net = Arc::new(random_grid(seed));
        let mut ima = Ima::new(net.clone());
        for i in 0..10u32 {
            ima.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 7) % net.num_edges() as u32), 0.25),
            ));
        }
        ima.apply(UpdateEvent::install_query(QueryId(0), k, NetPoint::new(EdgeId(0), 0.5)));
        let r = ima.result(QueryId(0)).unwrap();
        prop_assert!(r.len() <= k);
        prop_assert_eq!(r.len(), k.min(10));
        for w in r.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
            prop_assert!(w[0].object != w[1].object);
        }
        let knn = ima.knn_dist(QueryId(0)).unwrap();
        if r.len() == k {
            prop_assert_eq!(knn, r[k - 1].dist);
        } else {
            prop_assert!(knn.is_infinite());
        }
    }
}

// ---------------------------------------------------------------------
// Sharded-engine replica bookkeeping (replica masks + edge→object index).
// ---------------------------------------------------------------------

use rnn_monitor::engine::{EngineConfig, ShardedEngine};

/// [`Op`] plus query lifecycle events: the engine's replica bookkeeping
/// must survive installs and removals, which grow and shrink halos.
#[derive(Debug, Clone)]
enum QOp {
    Base(Op),
    InstallQuery {
        idx: u8,
        k: u8,
        edge: u16,
        frac: f64,
    },
    RemoveQuery {
        idx: u8,
    },
}

fn qop_strategy() -> impl Strategy<Value = QOp> {
    prop_oneof![
        op_strategy().prop_map(QOp::Base),
        (any::<u8>(), any::<u8>(), any::<u16>(), 0.0f64..1.0)
            .prop_map(|(idx, k, edge, frac)| QOp::InstallQuery { idx, k, edge, frac }),
        any::<u8>().prop_map(|idx| QOp::RemoveQuery { idx }),
    ]
}

/// Translates a base [`Op`] into batch events (mirrors the mapping used by
/// `monitors_agree_on_random_programs`).
fn push_op(op: &Op, batch: &mut UpdateBatch, weights: &mut EdgeWeights, ne: u16) {
    match *op {
        Op::MoveObject { idx, edge, frac } => batch.objects.push(ObjectEvent::Move {
            id: ObjectId(u32::from(idx % 16)),
            to: NetPoint::new(EdgeId(u32::from(edge % ne)), frac),
        }),
        Op::DeleteObject { idx } => batch.objects.push(ObjectEvent::Delete {
            id: ObjectId(u32::from(idx % 16)),
        }),
        Op::InsertObject { idx, edge, frac } => batch.objects.push(ObjectEvent::Insert {
            id: ObjectId(u32::from(idx % 16)),
            at: NetPoint::new(EdgeId(u32::from(edge % ne)), frac),
        }),
        Op::MoveQuery { idx, edge, frac } => batch.queries.push(QueryEvent::Move {
            id: QueryId(u32::from(idx % 4)),
            to: NetPoint::new(EdgeId(u32::from(edge % ne)), frac),
        }),
        Op::ScaleEdge { edge, factor } => {
            let e = EdgeId(u32::from(edge % ne));
            let new_w = weights.get(e) * factor;
            weights.set(e, new_w);
            batch.edges.push(EdgeWeightUpdate {
                edge: e,
                new_weight: new_w,
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random programs with query churn: after every tick the engine's
    /// replica masks, halo edge sets, and edge→object index must agree
    /// with each other (`validate_replication`), and its answers with a
    /// single-threaded GMA.
    #[test]
    fn engine_replica_masks_and_index_stay_consistent(
        seed in 0u64..40,
        shards in 2usize..5,
        ticks in prop::collection::vec(prop::collection::vec(qop_strategy(), 0..6), 1..8),
    ) {
        let net = Arc::new(random_grid(seed));
        let ne = net.num_edges() as u16;
        let mut gma = Gma::new(net.clone());
        let mut eng = ShardedEngine::new(
            net.clone(),
            EngineConfig {
                num_shards: shards,
                // Aggressive shrink settings exercise the evict path on
                // nearly every tick.
                halo_shrink_trigger: 1.0,
                halo_shrink_ticks: 1,
                ..EngineConfig::default()
            },
        );
        for i in 0..12u32 {
            let e = EdgeId((i * 5) % u32::from(ne));
            let p = NetPoint::new(e, 0.3 + 0.05 * i as f64 % 0.6);
            gma.apply(UpdateEvent::insert_object(ObjectId(i), p));
            eng.apply(UpdateEvent::insert_object(ObjectId(i), p));
        }
        for i in 0..3u32 {
            let p = NetPoint::new(EdgeId((i * 11 + 3) % u32::from(ne)), 0.5);
            gma.apply(UpdateEvent::install_query(QueryId(i), 3, p));
            eng.apply(UpdateEvent::install_query(QueryId(i), 3, p));
        }

        let mut weights = EdgeWeights::from_base(&net);
        for ops in &ticks {
            let mut batch = UpdateBatch::default();
            for op in ops {
                match *op {
                    QOp::Base(ref op) => push_op(op, &mut batch, &mut weights, ne),
                    QOp::InstallQuery { idx, k, edge, frac } => {
                        batch.queries.push(QueryEvent::Install {
                            id: QueryId(u32::from(idx % 4)),
                            k: usize::from(k % 5) + 1,
                            at: NetPoint::new(EdgeId(u32::from(edge % ne)), frac),
                        });
                    }
                    QOp::RemoveQuery { idx } => {
                        batch.queries.push(QueryEvent::Remove {
                            id: QueryId(u32::from(idx % 4)),
                        });
                    }
                }
            }
            gma.tick(&batch);
            eng.tick(&batch);

            if let Err(msg) = eng.validate_replication() {
                prop_assert!(false, "replication invariants broken: {}", msg);
            }
            let mut gids = gma.query_ids();
            let mut eids = eng.query_ids();
            gids.sort();
            eids.sort();
            prop_assert_eq!(&gids, &eids, "query sets diverge");
            for &q in &gids {
                let a = gma.result(q).unwrap();
                let b = eng.result(q).unwrap();
                prop_assert_eq!(a.len(), b.len(), "result size, query {}", q);
                let mut da: Vec<f64> = a.iter().map(|n| n.dist).collect();
                let mut db: Vec<f64> = b.iter().map(|n| n.dist).collect();
                da.sort_by(|x, y| x.partial_cmp(y).unwrap());
                db.sort_by(|x, y| x.partial_cmp(y).unwrap());
                for (x, y) in da.iter().zip(&db) {
                    prop_assert!((x - y).abs() <= 1e-9 * x.max(1.0), "dist {} vs {}", x, y);
                }
                let (dg, de) = (gma.knn_dist(q).unwrap(), eng.knn_dist(q).unwrap());
                prop_assert!(
                    (dg.is_infinite() && de.is_infinite())
                        || (dg - de).abs() <= 1e-9 * dg.max(1.0),
                    "kNN_dist {} vs {}",
                    dg,
                    de
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Dynamic re-partitioning: cell reassignment invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random sequences of boundary-cell migrations preserve the partition
    /// invariant: every edge owned by exactly one in-range shard, views an
    /// exact partition of nodes and edges, boundary-node lists exactly the
    /// owned/foreign contact nodes.
    #[test]
    fn cell_reassignment_preserves_partition_invariant(
        seed in 0u64..400,
        shards in 2usize..6,
        rounds in 1usize..6,
    ) {
        let net = random_grid(seed % 13);
        let mut p = rnn_monitor::roadnet::NetworkPartition::build(&net, shards);
        prop_assert!(p.validate(&net).is_ok());
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..rounds {
            let from = (rng() % shards as u64) as u32;
            let to = (rng() % shards as u64) as u32;
            if from == to {
                continue;
            }
            let cells = p.boundary_cells_between(&net, from, to);
            if cells.is_empty() {
                continue;
            }
            let take = (rng() as usize % cells.len()) + 1;
            let moves: Vec<(EdgeId, u32)> =
                cells[..take].iter().map(|&e| (e, to)).collect();
            p.reassign(&net, &moves);
            for &(e, s) in &moves {
                prop_assert_eq!(p.shard_of_edge(e), s, "moved cell not re-owned");
            }
            if let Err(msg) = p.validate(&net) {
                prop_assert!(false, "partition invariant broken: {}", msg);
            }
            // The views stay an exact partition of the edge set.
            let total: usize = p.views().iter().map(|v| v.edges.len()).sum();
            prop_assert_eq!(total, net.num_edges());
        }
    }
}

// ---------------------------------------------------------------------
// Pooled expansion trees vs a naive hash-map reference.
// ---------------------------------------------------------------------

mod tree_pool_model {
    use std::collections::HashMap;

    /// The pre-pool layout: one owned record per node with an explicit
    /// children vector. Slow and allocation-happy, but obviously correct —
    /// the behavioural oracle for the arena-of-trees surgery.
    #[derive(Clone, Debug, Default)]
    pub struct RefTree {
        pub nodes: HashMap<u32, RefNode>,
    }

    #[derive(Clone, Debug)]
    pub struct RefNode {
        pub dist: f64,
        pub parent: Option<(u32, u32)>,
        pub children: Vec<(u32, u32)>,
    }

    impl RefTree {
        pub fn insert(&mut self, n: u32, dist: f64, parent: Option<(u32, u32)>) {
            assert!(!self.nodes.contains_key(&n));
            if let Some((p, e)) = parent {
                self.nodes.get_mut(&p).unwrap().children.push((n, e));
            }
            self.nodes.insert(
                n,
                RefNode {
                    dist,
                    parent,
                    children: Vec::new(),
                },
            );
        }

        pub fn remove_subtree(&mut self, n: u32) -> usize {
            let Some(rec) = self.nodes.get(&n) else {
                return 0;
            };
            if let Some((p, _)) = rec.parent {
                if let Some(prec) = self.nodes.get_mut(&p) {
                    prec.children.retain(|&(c, _)| c != n);
                }
            }
            let mut stack = vec![n];
            let mut removed = 0;
            while let Some(cur) = stack.pop() {
                if let Some(rec) = self.nodes.remove(&cur) {
                    removed += 1;
                    stack.extend(rec.children.iter().map(|&(c, _)| c));
                }
            }
            removed
        }

        pub fn retain_within(&mut self, theta: f64) -> usize {
            let before = self.nodes.len();
            self.nodes.retain(|_, t| t.dist <= theta);
            let alive: std::collections::HashSet<u32> = self.nodes.keys().copied().collect();
            for t in self.nodes.values_mut() {
                t.children.retain(|&(c, _)| alive.contains(&c));
            }
            before - self.nodes.len()
        }

        pub fn reroot_at_subtree(&mut self, new_root: u32, shift: f64) -> usize {
            if !self.nodes.contains_key(&new_root) {
                let n = self.nodes.len();
                self.nodes.clear();
                return n;
            }
            let mut keep: HashMap<u32, RefNode> = HashMap::new();
            let mut stack = vec![new_root];
            while let Some(cur) = stack.pop() {
                let mut rec = self.nodes.remove(&cur).unwrap();
                stack.extend(rec.children.iter().map(|&(c, _)| c));
                rec.dist -= shift;
                if cur == new_root {
                    rec.parent = None;
                }
                keep.insert(cur, rec);
            }
            let pruned = self.nodes.len();
            self.nodes = keep;
            pruned
        }

        pub fn clear(&mut self) -> usize {
            let n = self.nodes.len();
            self.nodes.clear();
            n
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena-of-trees model check: random surgery programs (adjacency-
    /// driven inserts, subtree cuts, θ-prunes, re-roots, clones, clears,
    /// release/recreate cycles) over several trees sharing one pool agree
    /// exactly with the naive hash-map-of-Vec reference, preserve the
    /// structural invariants, and leak no pool slots across directory
    /// epochs.
    #[test]
    fn tree_pool_matches_hashmap_reference(
        seed in 0u64..5000,
        ops in 20usize..80,
    ) {
        use rnn_monitor::core::tree::{ExpansionTree, TreePool};
        use tree_pool_model::RefTree;

        let net = random_grid(seed % 17);
        let weights = EdgeWeights::from_base(&net);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7);
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };

        const TREES: usize = 3;
        let mut pool = TreePool::new();
        let mut trees: Vec<ExpansionTree> = (0..TREES).map(|_| pool.new_tree()).collect();
        let mut refs: Vec<RefTree> = vec![RefTree::default(); TREES];

        for _ in 0..ops {
            let ti = (rng() % TREES as u64) as usize;
            // A deterministic "random member" of the reference tree.
            let pick_member = |r: &RefTree, roll: u64| -> Option<u32> {
                if r.nodes.is_empty() {
                    return None;
                }
                let mut keys: Vec<u32> = r.nodes.keys().copied().collect();
                keys.sort_unstable();
                Some(keys[(roll % keys.len() as u64) as usize])
            };
            match rng() % 8 {
                // Insert: seed a root, or grow from a random member along a
                // real adjacent edge (keeps distances weight-consistent).
                0..=2 => match pick_member(&refs[ti], rng()) {
                    None => {
                        let n = NodeId((rng() % net.num_nodes() as u64) as u32);
                        pool.insert(&mut trees[ti], n, 0.0, None);
                        refs[ti].insert(n.0, 0.0, None);
                    }
                    Some(p) => {
                        let adj = net.adjacent(NodeId(p));
                        if !adj.is_empty() {
                            let (e, m) = adj[(rng() % adj.len() as u64) as usize];
                            if !refs[ti].nodes.contains_key(&m.0) {
                                let d = refs[ti].nodes[&p].dist + weights.get(e);
                                pool.insert(&mut trees[ti], m, d, Some((NodeId(p), e)));
                                refs[ti].insert(m.0, d, Some((p, e.0)));
                            }
                        }
                    }
                },
                3 => {
                    // Cut a subtree (sometimes of an absent node: both
                    // sides must report 0).
                    let n = (rng() % net.num_nodes() as u64) as u32;
                    let a = pool.remove_subtree(&mut trees[ti], NodeId(n));
                    let b = refs[ti].remove_subtree(n);
                    prop_assert_eq!(a, b, "remove_subtree count diverged");
                }
                4 => {
                    let max = refs[ti]
                        .nodes
                        .values()
                        .map(|t| t.dist)
                        .fold(0.0f64, f64::max);
                    let theta = max * (rng() % 100) as f64 / 100.0;
                    let a = pool.retain_within(&mut trees[ti], theta);
                    let b = refs[ti].retain_within(theta);
                    prop_assert_eq!(a, b, "retain_within count diverged");
                }
                5 => {
                    // Re-root at a random member, shifting by its own old
                    // distance (the move-onto-a-verified-node case).
                    if let Some(s) = pick_member(&refs[ti], rng()) {
                        let shift = refs[ti].nodes[&s].dist;
                        let a = pool.reroot_at_subtree(&mut trees[ti], NodeId(s), shift);
                        let b = refs[ti].reroot_at_subtree(s, shift);
                        prop_assert_eq!(a, b, "reroot count diverged");
                    }
                }
                6 => {
                    // Clone tree ti over its right neighbour (release the
                    // old handle first — no slot may leak).
                    let tj = (ti + 1) % TREES;
                    let cloned = pool.clone_tree(&trees[ti]);
                    let old = std::mem::replace(&mut trees[tj], cloned);
                    pool.release(old);
                    refs[tj] = refs[ti].clone();
                }
                _ => {
                    // Full release + recreate: the recycled directory must
                    // carry nothing across epochs.
                    let old = std::mem::take(&mut trees[ti]);
                    pool.release(old);
                    trees[ti] = pool.new_tree();
                    refs[ti].clear();
                }
            }

            // Structure parity + invariants after every operation.
            let mut owned = 0usize;
            for (t, r) in trees.iter().zip(&refs) {
                prop_assert_eq!(t.len(), r.nodes.len(), "length diverged");
                owned += t.len();
                for (&n, rec) in &r.nodes {
                    let d = t.dist(&pool, NodeId(n));
                    prop_assert_eq!(d, Some(rec.dist), "distance diverged at {}", n);
                    let parent = t.parent_of(&pool, NodeId(n)).expect("member has a link");
                    prop_assert_eq!(
                        parent.map(|(p, e)| (p.0, e.0)),
                        rec.parent,
                        "parent link diverged at {}",
                        n
                    );
                    let mut got = t.children_of(&pool, NodeId(n));
                    got.sort_unstable_by_key(|&(c, _)| c.0);
                    let mut want: Vec<_> = rec
                        .children
                        .iter()
                        .map(|&(c, e)| (NodeId(c), EdgeId(e)))
                        .collect();
                    want.sort_unstable_by_key(|&(c, _)| c.0);
                    prop_assert_eq!(got, want, "children diverged at {}", n);
                }
                prop_assert_eq!(t.iter(&pool).count(), t.len(), "iteration diverged");
                pool.check_invariants(t, &net, &weights);
            }
            // Free-list integrity: every live slab slot is owned by exactly
            // one of the live trees.
            prop_assert_eq!(pool.live_nodes(), owned, "pool leaked or double-freed slots");
        }

        // Releasing everything must return the pool to empty — no slot
        // survives its tree across epochs.
        for t in trees {
            pool.release(t);
        }
        prop_assert_eq!(pool.live_nodes(), 0, "slots leaked across release");
    }
}

// ---------------------------------------------------------------------
// Cluster wire protocol: every message type round-trips bit-exactly
// through its frame, and damaged frames are rejected, never applied and
// never panicking.
// ---------------------------------------------------------------------

use rnn_monitor::cluster::{Frame, MsgTag};
use rnn_monitor::core::{MemoryUsage, Neighbor, OpCounters, TickReport};
use rnn_monitor::engine::{BatchKind, DeltaBatch, QuerySnapshot, TickOutcome};
use rnn_monitor::roadnet::{WireCodec, WireReader};

fn netpoint_strategy() -> impl Strategy<Value = NetPoint> {
    (any::<u16>(), 0.0f64..1.0).prop_map(|(e, frac)| NetPoint::new(EdgeId(e as u32), frac))
}

fn object_event_strategy() -> impl Strategy<Value = ObjectEvent> {
    prop_oneof![
        (any::<u32>(), netpoint_strategy()).prop_map(|(id, to)| ObjectEvent::Move {
            id: ObjectId(id),
            to
        }),
        (any::<u32>(), netpoint_strategy()).prop_map(|(id, at)| ObjectEvent::Insert {
            id: ObjectId(id),
            at
        }),
        any::<u32>().prop_map(|id| ObjectEvent::Delete { id: ObjectId(id) }),
    ]
}

fn query_event_strategy() -> impl Strategy<Value = QueryEvent> {
    prop_oneof![
        (any::<u32>(), netpoint_strategy()).prop_map(|(id, to)| QueryEvent::Move {
            id: QueryId(id),
            to
        }),
        (any::<u32>(), 1usize..32, netpoint_strategy()).prop_map(|(id, k, at)| {
            QueryEvent::Install {
                id: QueryId(id),
                k,
                at,
            }
        }),
        any::<u32>().prop_map(|id| QueryEvent::Remove { id: QueryId(id) }),
    ]
}

fn edge_update_strategy() -> impl Strategy<Value = EdgeWeightUpdate> {
    (any::<u16>(), 0.01f64..100.0).prop_map(|(e, w)| EdgeWeightUpdate {
        edge: EdgeId(e as u32),
        new_weight: w,
    })
}

fn snapshot_strategy() -> impl Strategy<Value = QuerySnapshot> {
    (
        any::<u32>(),
        prop_oneof![
            (0.0f64..1e9).prop_map(|d| d),
            (0u8..1).prop_map(|_| f64::INFINITY)
        ],
        prop::collection::vec(
            (any::<u32>(), 0.0f64..1e9).prop_map(|(o, d)| Neighbor {
                object: ObjectId(o),
                dist: d,
            }),
            0..6,
        ),
    )
        .prop_map(|(id, knn_dist, result)| QuerySnapshot {
            id: QueryId(id),
            knn_dist,
            result,
        })
}

/// Arbitrary counters: all 19 fields filled from one seed via a splitmix
/// step, so every field exercises large values.
fn counters_from_seed(seed: u64) -> OpCounters {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z ^ (z >> 27)
    };
    OpCounters {
        nodes_settled: next(),
        edges_scanned: next(),
        objects_considered: next(),
        relaxations: next(),
        updates_ignored: next(),
        reevaluations: next(),
        tree_nodes_pruned: next(),
        resync_touched: next(),
        replica_evictions: next(),
        alloc_events: next(),
        install_alloc_events: next(),
        expansion_steps: next(),
        shared_expansions: next(),
        tree_nodes_recycled: next(),
        rebalance_events: next(),
        cells_migrated: next(),
        coalesced_superseded: next(),
        shed_events: next(),
        drain_alloc_events: next(),
    }
}

fn tick_outcome_strategy() -> impl Strategy<Value = TickOutcome> {
    (
        (
            any::<u64>(),
            any::<u32>(),
            0u32..1_000_000_000,
            any::<u64>(),
        ),
        prop::collection::vec(snapshot_strategy(), 0..5),
        prop_oneof![(0u8..1).prop_map(|_| None), (0usize..10_000).prop_map(Some)],
        prop::collection::vec((any::<u16>(), any::<u64>()), 0..5),
    )
        .prop_map(
            |((seed, secs, nanos, changed), snapshots, active_groups, charges)| {
                let report = TickReport {
                    counters: counters_from_seed(seed),
                    elapsed: std::time::Duration::new(secs as u64 % 1_000_000, nanos),
                    results_changed: changed as usize,
                };
                TickOutcome {
                    report,
                    snapshots,
                    active_groups,
                    cell_charges: charges
                        .into_iter()
                        .map(|(e, s)| (EdgeId(e as u32), s))
                        .collect(),
                }
            },
        )
}

fn delta_batch_strategy() -> impl Strategy<Value = DeltaBatch> {
    (
        prop::collection::vec(object_event_strategy(), 0..6),
        prop::collection::vec(query_event_strategy(), 0..6),
        prop::collection::vec(edge_update_strategy(), 0..6),
        0u8..3,
    )
        .prop_map(|(objects, queries, edges, kind)| DeltaBatch {
            objects,
            queries,
            shared_edges: Arc::new(edges),
            kind: match kind {
                0 => BatchKind::Tick,
                1 => BatchKind::Resync,
                _ => BatchKind::Migration,
            },
        })
}

const ALL_TAGS: [MsgTag; 16] = [
    MsgTag::TickEvents,
    MsgTag::ResyncEvents,
    MsgTag::MigrationEvents,
    MsgTag::MemoryRequest,
    MsgTag::Shutdown,
    MsgTag::TickReply,
    MsgTag::MemoryReply,
    MsgTag::SnapshotRequest,
    MsgTag::SnapshotReply,
    MsgTag::SnapshotInstall,
    MsgTag::RestoreReply,
    MsgTag::Append,
    MsgTag::AppendAck,
    MsgTag::Heartbeat,
    MsgTag::Promote,
    MsgTag::SnapshotOffer,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The frame envelope round-trips any tag/seq/payload bit-exactly.
    #[test]
    fn frame_envelope_round_trips(
        tag_idx in 0usize..ALL_TAGS.len(),
        seq in any::<u32>(),
        epoch in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let f = Frame { tag: ALL_TAGS[tag_idx], seq, epoch, payload };
        let bytes = f.to_bytes();
        prop_assert_eq!(Frame::from_bytes(&bytes).unwrap(), f);
    }

    /// Every request message type round-trips through its typed frame:
    /// delta batches (tick / resync / migration) survive bit-exactly.
    #[test]
    fn delta_batches_round_trip_through_frames(
        batch in delta_batch_strategy(),
        seq in any::<u32>(),
    ) {
        let mut payload = Vec::new();
        batch.encode(&mut payload);
        let tag = match batch.kind {
            BatchKind::Tick => MsgTag::TickEvents,
            BatchKind::Resync => MsgTag::ResyncEvents,
            BatchKind::Migration => MsgTag::MigrationEvents,
        };
        let bytes = Frame { tag, seq, epoch: 0, payload }.to_bytes();
        let back = Frame::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.tag, tag);
        let decoded = DeltaBatch::decode(&mut WireReader::new(&back.payload)).unwrap();
        prop_assert_eq!(&decoded.objects, &batch.objects);
        prop_assert_eq!(&decoded.queries, &batch.queries);
        prop_assert_eq!(&*decoded.shared_edges, &*batch.shared_edges);
    }

    /// Every reply message type round-trips: tick outcomes (reports,
    /// snapshot deltas incl. ∞ distances, cell charges) and memory
    /// breakdowns.
    #[test]
    fn replies_round_trip_through_frames(
        outcome in tick_outcome_strategy(),
        mem_seed in any::<u64>(),
        seq in any::<u32>(),
    ) {
        let mut payload = Vec::new();
        outcome.encode(&mut payload);
        let bytes = Frame { tag: MsgTag::TickReply, seq, epoch: 0, payload }.to_bytes();
        let back = Frame::from_bytes(&bytes).unwrap();
        let decoded = TickOutcome::decode(&mut WireReader::new(&back.payload)).unwrap();
        // Work counters, snapshots and charges must survive bit-exactly;
        // wall-clock rides along and must too (it is plain u64/u32 data).
        prop_assert_eq!(decoded, outcome);

        let mut s = mem_seed;
        let mut next = move || { s = s.wrapping_mul(6364136223846793005).wrapping_add(17); (s >> 13) as usize };
        let mem = MemoryUsage {
            edge_table: next(),
            query_table: next(),
            expansion_trees: next(),
            influence_lists: next(),
            auxiliary: next(),
        };
        let mut payload = Vec::new();
        mem.encode(&mut payload);
        let bytes = Frame { tag: MsgTag::MemoryReply, seq, epoch: 0, payload }.to_bytes();
        let back = Frame::from_bytes(&bytes).unwrap();
        prop_assert_eq!(MemoryUsage::decode(&mut WireReader::new(&back.payload)).unwrap(), mem);
    }

    /// Truncating a frame anywhere yields a decode error — never a panic,
    /// never a bogus success.
    #[test]
    fn truncated_frames_error_not_panic(
        batch in delta_batch_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let mut payload = Vec::new();
        batch.encode(&mut payload);
        let bytes = Frame { tag: MsgTag::TickEvents, seq: 3, epoch: 7, payload }.to_bytes();
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(Frame::from_bytes(&bytes[..cut]).is_err());
    }

    /// Flipping any single bit past the length prefix is caught (checksum
    /// or framing), so a corrupted frame can never be applied.
    #[test]
    fn corrupted_frames_are_rejected(
        batch in delta_batch_strategy(),
        byte_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut payload = Vec::new();
        batch.encode(&mut payload);
        let mut bytes = Frame { tag: MsgTag::MigrationEvents, seq: 9, epoch: 2, payload }.to_bytes();
        let idx = 4 + (byte_seed as usize) % (bytes.len() - 4);
        bytes[idx] ^= 1 << bit;
        prop_assert!(Frame::from_bytes(&bytes).is_err());
    }
}

// ---------------------------------------------------------------------
// Static-analysis lexer properties: the lint pass runs over every source
// file in the workspace, so its lexer must terminate, never panic, and
// keep line numbers sane on arbitrary input — including bytes that are
// not valid Rust (unterminated strings, stray quotes, lone backslashes).
// ---------------------------------------------------------------------

proptest! {
    /// Lexing arbitrary bytes (lossily decoded) terminates without
    /// panicking, and every reported line number is within the input.
    #[test]
    fn lexer_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lines = src.lines().count().max(1) as u32;
        let out = rnn_analysis::lexer::lex(&src);
        for t in &out.tokens {
            prop_assert!(t.line >= 1 && t.line <= lines);
        }
        for a in &out.allows {
            prop_assert!(!a.rule.is_empty());
            prop_assert!(a.line >= 1 && a.line <= lines);
        }
    }

    /// Token lines are nondecreasing: the stream preserves source order.
    #[test]
    fn lexer_lines_are_monotone(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = rnn_analysis::lexer::lex(&src).tokens;
        for w in toks.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
    }

    /// Quote-heavy input — the worst case for string/char/lifetime
    /// disambiguation — still terminates and stays in bounds.
    #[test]
    fn lexer_survives_quote_soup(
        picks in proptest::collection::vec(0usize..12, 0..200),
    ) {
        const PIECES: [&str; 12] = [
            "\"", "'", "r#\"", "\"#", "//", "/*", "*/", "\\", "\n",
            "lint: allow(", "b'", "r##",
        ];
        let src: String = picks.iter().map(|&i| PIECES[i]).collect();
        let out = rnn_analysis::lexer::lex(&src);
        let lines = src.lines().count().max(1) as u32;
        for t in &out.tokens {
            prop_assert!(t.line >= 1 && t.line <= lines);
        }
    }
}

// ---------------------------------------------------------------------
// Durability plane: monitor-state snapshots must round-trip to an
// answer-equivalent monitor for every algorithm on random networks and
// workloads, their decoder must be total on mutilated bytes, and the
// WAL scan must recover exactly the untorn record prefix wherever the
// tail is cut.
// ---------------------------------------------------------------------

/// Installs a seed-derived population and runs a few ticks, leaving the
/// monitor in a non-trivial steady state worth snapshotting.
fn populate_for_snapshot(m: &mut dyn ContinuousMonitor, net: &RoadNetwork, seed: u64) {
    let n = net.num_edges() as u64;
    for i in 0..20u64 {
        let e = EdgeId(((seed.wrapping_mul(31) + i * 7) % n) as u32);
        let frac = 0.05 + 0.9 * ((i as f64 * 0.37 + seed as f64 * 0.11) % 1.0);
        m.apply(UpdateEvent::insert_object(
            ObjectId(i as u32),
            NetPoint::new(e, frac),
        ));
    }
    for q in 0..6u64 {
        let e = EdgeId(((seed.wrapping_mul(17) + q * 13) % n) as u32);
        m.apply(UpdateEvent::install_query(
            QueryId(q as u32),
            1 + (q as usize % 4),
            NetPoint::new(e, 0.5),
        ));
    }
    for t in 0..3u64 {
        let mut batch = UpdateBatch::default();
        batch.objects.push(ObjectEvent::Move {
            id: ObjectId(((seed + t) % 20) as u32),
            to: NetPoint::new(EdgeId(((seed + 3 * t) % n) as u32), 0.4),
        });
        batch.edges.push(EdgeWeightUpdate {
            edge: EdgeId(((seed + 5 * t) % n) as u32),
            new_weight: 1.0 + (t as f64) * 0.25,
        });
        m.tick(&batch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// capture → encode → decode → restore yields a monitor with
    /// bit-identical answers, for each algorithm on random populated
    /// networks.
    #[test]
    fn snapshot_round_trip_is_answer_equivalent(seed in 0u64..120, algo in 0usize..3) {
        let net = Arc::new(random_grid(seed));
        let (mut orig, mut fresh): (Box<dyn ContinuousMonitor>, Box<dyn ContinuousMonitor>) =
            match algo {
                0 => (Box::new(Gma::new(net.clone())), Box::new(Gma::new(net.clone()))),
                1 => (Box::new(Ima::new(net.clone())), Box::new(Ima::new(net.clone()))),
                _ => (Box::new(Ovh::new(net.clone())), Box::new(Ovh::new(net.clone()))),
            };
        populate_for_snapshot(orig.as_mut(), &net, seed);
        let snap = orig.snapshot_state().expect("all three algorithms snapshot");
        let bytes = snap.to_bytes();
        let decoded = MonitorState::from_bytes(&bytes);
        prop_assert_eq!(decoded.as_ref().ok(), Some(&snap), "decode must invert encode");
        prop_assert!(decoded.unwrap().restore_into(fresh.as_mut()).is_ok());
        let mut ids = orig.query_ids();
        ids.sort();
        for q in ids {
            prop_assert_eq!(orig.result(q).unwrap(), fresh.result(q).unwrap());
            prop_assert_eq!(
                orig.knn_dist(q).unwrap().to_bits(),
                fresh.knn_dist(q).unwrap().to_bits()
            );
        }
    }

    /// The snapshot decoder is total: truncating a valid encoding at any
    /// proportional cut is rejected as an error, never a panic.
    #[test]
    fn snapshot_decode_rejects_truncation(seed in 0u64..60, cut in 0.0f64..1.0) {
        let net = Arc::new(random_grid(seed));
        let mut m = Gma::new(net.clone());
        populate_for_snapshot(&mut m, &net, seed);
        let bytes = m.snapshot_state().expect("gma snapshots").to_bytes();
        let at = ((bytes.len() as f64) * cut) as usize;
        if at < bytes.len() {
            prop_assert!(MonitorState::from_bytes(&bytes[..at]).is_err());
        }
    }

    /// Cutting a WAL image at an arbitrary byte offset never panics and
    /// recovers exactly the records that fit before the cut.
    #[test]
    fn wal_scan_recovers_untorn_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        cut in 0.0f64..1.0,
    ) {
        let mut image = Vec::new();
        let mut ends = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let frame = Frame { tag: MsgTag::TickEvents, seq: i as u32, epoch: 0, payload: p.clone() };
            image.extend_from_slice(&frame.to_bytes());
            ends.push(image.len());
        }
        let at = ((image.len() as f64) * cut) as usize;
        let (records, valid) = cluster_wal::scan(&image[..at]);
        // The valid prefix is exactly the full records that fit in the cut.
        let want = ends.iter().take_while(|&&e| e <= at).count();
        prop_assert_eq!(records.len(), want, "cut at {} of {}", at, image.len());
        prop_assert_eq!(valid, if want == 0 { 0 } else { ends[want - 1] });
        for (i, (seq, bytes)) in records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u32);
            let start = if i == 0 { 0 } else { ends[i - 1] };
            prop_assert_eq!(bytes.as_slice(), &image[start..ends[i]]);
        }
    }

    /// Flipping any single bit *inside* a record (past its length
    /// prefix) makes the scan stop exactly there: every record before
    /// the flipped one is recovered verbatim, nothing at or after it
    /// survives, and the valid prefix ends at the previous record's
    /// boundary — a torn middle behaves like a torn tail, never a
    /// silent partial apply.
    #[test]
    fn wal_scan_stops_at_a_mid_record_bit_flip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut image = Vec::new();
        let mut bounds = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let start = image.len();
            let frame = Frame { tag: MsgTag::TickEvents, seq: i as u32, epoch: 1, payload: p.clone() };
            image.extend_from_slice(&frame.to_bytes());
            bounds.push((start, image.len()));
        }
        let victim = (pick as usize) % bounds.len();
        let (start, end) = bounds[victim];
        // Flip past the 4-byte length prefix so framing is intact and
        // the checksum is what must catch it.
        let idx = start + 4 + (pick as usize / 7) % (end - start - 4);
        image[idx] ^= 1 << bit;
        let (records, valid) = cluster_wal::scan(&image);
        prop_assert_eq!(records.len(), victim);
        prop_assert_eq!(valid, bounds[victim].0);
        for (i, (seq, bytes)) in records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u32);
            prop_assert_eq!(bytes.as_slice(), &image[bounds[i].0..bounds[i].1]);
        }
    }

    /// Truncating exactly *at* a record boundary is lossless up to the
    /// cut: every record before the boundary is recovered and the valid
    /// prefix is the boundary itself (no record is half-counted).
    #[test]
    fn wal_scan_is_exact_at_record_boundaries(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        pick in any::<u64>(),
    ) {
        let mut image = Vec::new();
        let mut ends = vec![0usize];
        for (i, p) in payloads.iter().enumerate() {
            let frame = Frame { tag: MsgTag::TickEvents, seq: i as u32, epoch: 1, payload: p.clone() };
            image.extend_from_slice(&frame.to_bytes());
            ends.push(image.len());
        }
        let cut_idx = (pick as usize) % ends.len();
        let cut = ends[cut_idx];
        let (records, valid) = cluster_wal::scan(&image[..cut]);
        prop_assert_eq!(records.len(), cut_idx, "exactly the records before the boundary");
        prop_assert_eq!(valid, cut, "a boundary cut leaves no torn tail");
    }

    /// Scanning arbitrary garbage is total and returns a consistent
    /// (records, valid-prefix) pair.
    #[test]
    fn wal_scan_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let (records, valid) = cluster_wal::scan(&bytes);
        prop_assert!(valid <= bytes.len());
        let (again, valid2) = cluster_wal::scan(&bytes[..valid]);
        prop_assert_eq!(valid2, valid, "valid prefix must be a fixpoint");
        prop_assert_eq!(again.len(), records.len());
    }
}
