//! Differential correctness: at every timestamp of every scenario, OVH
//! (the from-scratch oracle), IMA and GMA must report the same k-NN
//! **distance multiset** and the same `kNN_dist` for every query.
//!
//! Object *ids* may legitimately differ between algorithms on exact
//! distance ties, so the comparison is on sorted distances (with relative
//! tolerance 1e-9 for accumulated float noise along different summation
//! orders).

use std::sync::Arc;

use rnn_monitor::core::{ContinuousMonitor, Gma, Ima, Ovh, QueryEvent, UpdateBatch};
use rnn_monitor::roadnet::{generators, NetPoint, QueryId, RoadNetwork};
use rnn_monitor::workload::{Distribution, MovementModel, Scenario, ScenarioConfig};

const REL_TOL: f64 = 1e-9;

fn assert_dist_eq(a: f64, b: f64, ctx: &str) {
    if a.is_infinite() && b.is_infinite() {
        return;
    }
    assert!(
        (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0),
        "{ctx}: {a} vs {b}"
    );
}

fn compare_monitors(monitors: &[&dyn ContinuousMonitor], tick: usize) {
    let reference = monitors[0];
    let mut ids = reference.query_ids();
    ids.sort();
    for &other in &monitors[1..] {
        let mut other_ids = other.query_ids();
        other_ids.sort();
        assert_eq!(ids, other_ids, "query sets diverge at tick {tick}");
    }
    for qid in ids {
        let ref_result = reference.result(qid).unwrap();
        let mut ref_dists: Vec<f64> = ref_result.iter().map(|n| n.dist).collect();
        ref_dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &other in &monitors[1..] {
            let ctx = format!(
                "tick {tick}, query {qid}, {} vs {}",
                reference.name(),
                other.name()
            );
            let other_result = other.result(qid).unwrap();
            assert_eq!(ref_result.len(), other_result.len(), "{ctx}: result sizes");
            let mut other_dists: Vec<f64> = other_result.iter().map(|n| n.dist).collect();
            other_dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (da, db) in ref_dists.iter().zip(&other_dists) {
                assert_dist_eq(*da, *db, &ctx);
            }
            assert_dist_eq(
                reference.knn_dist(qid).unwrap(),
                other.knn_dist(qid).unwrap(),
                &format!("{ctx} (kNN_dist)"),
            );
        }
    }
}

/// Runs one scenario against all three monitors for `ticks` timestamps,
/// comparing after installation and after every tick. Also validates IMA's
/// internal invariants every few ticks.
fn run_differential(net: Arc<RoadNetwork>, cfg: ScenarioConfig, ticks: usize) {
    let mut scenario = Scenario::new(net.clone(), cfg);
    let mut ovh = Ovh::new(net.clone());
    let mut ima = Ima::new(net.clone());
    let mut gma = Gma::new(net.clone());
    scenario.install_into(&mut ovh);
    scenario.install_into(&mut ima);
    scenario.install_into(&mut gma);
    compare_monitors(&[&ovh, &ima, &gma], 0);

    for t in 1..=ticks {
        let batch = scenario.tick();
        ovh.tick(&batch);
        ima.tick(&batch);
        gma.tick(&batch);
        compare_monitors(&[&ovh, &ima, &gma], t);
        if t % 5 == 0 {
            ima.validate_invariants();
        }
    }
}

fn grid(nx: usize, ny: usize, seed: u64) -> Arc<RoadNetwork> {
    Arc::new(generators::grid_city(&generators::GridCityConfig {
        nx,
        ny,
        seed,
        ..Default::default()
    }))
}

fn base_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        num_objects: 80,
        num_queries: 12,
        k: 4,
        seed,
        ..Default::default()
    }
}

#[test]
fn default_mixed_workload() {
    run_differential(grid(8, 8, 1), base_cfg(11), 20);
}

#[test]
fn second_seed_mixed_workload() {
    run_differential(grid(7, 9, 2), base_cfg(22), 20);
}

#[test]
fn k_equals_one() {
    run_differential(
        grid(8, 8, 3),
        ScenarioConfig {
            k: 1,
            ..base_cfg(33)
        },
        15,
    );
}

#[test]
fn large_k_forces_wide_trees() {
    run_differential(
        grid(6, 6, 4),
        ScenarioConfig {
            k: 25,
            num_objects: 60,
            ..base_cfg(44)
        },
        12,
    );
}

#[test]
fn k_exceeds_object_count_underflow() {
    // Fewer objects than k: results are underfull, kNN_dist = ∞, trees span
    // the whole network. Everything must still agree.
    run_differential(
        grid(5, 5, 5),
        ScenarioConfig {
            k: 10,
            num_objects: 6,
            num_queries: 5,
            ..base_cfg(55)
        },
        10,
    );
}

#[test]
fn edge_heavy_workload() {
    run_differential(
        grid(8, 8, 6),
        ScenarioConfig {
            edge_agility: 0.30,
            object_agility: 0.0,
            query_agility: 0.0,
            ..base_cfg(66)
        },
        15,
    );
}

#[test]
fn query_heavy_workload() {
    run_differential(
        grid(8, 8, 7),
        ScenarioConfig {
            edge_agility: 0.0,
            object_agility: 0.0,
            query_agility: 0.8,
            query_speed: 2.0,
            ..base_cfg(77)
        },
        15,
    );
}

#[test]
fn object_heavy_fast_workload() {
    run_differential(
        grid(8, 8, 8),
        ScenarioConfig {
            edge_agility: 0.0,
            object_agility: 0.9,
            object_speed: 4.0,
            query_agility: 0.0,
            ..base_cfg(88)
        },
        15,
    );
}

#[test]
fn everything_agile_at_once() {
    run_differential(
        grid(7, 7, 9),
        ScenarioConfig {
            edge_agility: 0.25,
            object_agility: 0.5,
            query_agility: 0.5,
            object_speed: 2.0,
            query_speed: 2.0,
            ..base_cfg(99)
        },
        15,
    );
}

#[test]
fn gaussian_objects_and_queries() {
    run_differential(
        grid(8, 8, 10),
        ScenarioConfig {
            object_distribution: Distribution::gaussian_objects(),
            query_distribution: Distribution::gaussian_queries(),
            ..base_cfg(110)
        },
        12,
    );
}

#[test]
fn brinkhoff_movement_model() {
    run_differential(
        grid(7, 7, 11),
        ScenarioConfig {
            movement: MovementModel::Brinkhoff,
            ..base_cfg(121)
        },
        12,
    );
}

#[test]
fn oldenburg_like_small_slice() {
    // A bigger, more road-like network with long degree-2 chains.
    let net = Arc::new(generators::san_francisco_like(900, 12));
    run_differential(
        net,
        ScenarioConfig {
            num_objects: 150,
            num_queries: 20,
            k: 5,
            ..base_cfg(131)
        },
        8,
    );
}

#[test]
fn query_churn_mid_run() {
    // Queries installed and removed while the system runs.
    let net = grid(8, 8, 13);
    let mut scenario = Scenario::new(net.clone(), base_cfg(141));
    let mut ovh = Ovh::new(net.clone());
    let mut ima = Ima::new(net.clone());
    let mut gma = Gma::new(net.clone());
    scenario.install_into(&mut ovh);
    scenario.install_into(&mut ima);
    scenario.install_into(&mut gma);

    for t in 1..=15usize {
        let mut batch = scenario.tick();
        // Install a fresh query every 3 ticks, remove it two ticks later.
        if t % 3 == 0 {
            let e = rnn_monitor::roadnet::EdgeId((t % net.num_edges()) as u32);
            batch.queries.push(QueryEvent::Install {
                id: QueryId(1000 + t as u32),
                k: 3,
                at: NetPoint::new(e, 0.4),
            });
        }
        if t % 3 == 2 && t > 3 {
            batch.queries.push(QueryEvent::Remove {
                id: QueryId(1000 + (t - 2) as u32),
            });
        }
        ovh.tick(&batch);
        ima.tick(&batch);
        gma.tick(&batch);
        compare_monitors(&[&ovh, &ima, &gma], t);
    }
}

#[test]
fn empty_ticks_change_nothing() {
    let net = grid(6, 6, 14);
    let scenario = Scenario::new(net.clone(), base_cfg(151));
    let mut ima = Ima::new(net.clone());
    let mut gma = Gma::new(net.clone());
    scenario.install_into(&mut ima);
    scenario.install_into(&mut gma);
    let snapshot: Vec<_> = {
        let mut ids = ima.query_ids();
        ids.sort();
        ids.iter()
            .map(|&q| ima.result(q).unwrap().to_vec())
            .collect()
    };
    for _ in 0..3 {
        let ima_rep = ima.tick(&UpdateBatch::default());
        let gma_rep = gma.tick(&UpdateBatch::default());
        assert_eq!(ima_rep.results_changed, 0);
        assert_eq!(gma_rep.results_changed, 0);
    }
    let mut ids = ima.query_ids();
    ids.sort();
    for (i, &q) in ids.iter().enumerate() {
        assert_eq!(ima.result(q).unwrap(), snapshot[i].as_slice());
    }
}
