//! The static-analysis pass runs as part of `cargo test`: the workspace
//! must be clean under every rule in `lint.toml`. CI runs the same check
//! as a dedicated job (`cargo run -p rnn-analysis -- check`); this test
//! makes the invariant local — a plain `cargo test` catches a hot-path
//! allocation or a panicking decode path before a PR is even pushed.

use std::path::Path;

use rnn_analysis::check_workspace;

#[test]
fn workspace_is_clean_under_all_lint_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = check_workspace(root).expect("lint pass must be able to run");
    assert!(
        diags.is_empty(),
        "rnn-analysis findings (fix them or add a justified `// lint: allow(...)`):\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
