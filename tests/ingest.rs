//! Correctness of the ingest front-end (`rnn_engine::ingest`): the
//! sharded MPSC submission stage must be a *transparent* prefix of the
//! tick path.
//!
//! * **No coalescing triggered** (at most one event per entity per
//!   window): an engine fed event-by-event through an [`IngestHandle`]
//!   must be **bit-identical** — results, `kNN_dist` bits, and every
//!   deterministic work counter — to a twin engine ticking the same
//!   [`UpdateBatch`] directly, at S ∈ {1, 2, 4}. The only permitted
//!   difference is the ingest stage's own `drain_alloc_events` warm-up
//!   bookkeeping.
//! * **Coalescing triggered** (a firehose oversamples entity moves):
//!   the ingest-fed engine must stay **answer-identical** to a twin fed
//!   the firehose's effective one-event-per-entity batches, while
//!   `coalesced_superseded` proves the fold actually happened.
//! * **Coalescing is order-insensitive**: interleaving concurrent
//!   producers differently must never change any entity's folded
//!   outcome (proptest below).
//! * **`Reject` admission is typed**: a full lane surfaces
//!   [`IngestError::LaneFull`] with the offending lane and bound — never
//!   a panic, never silence.

use std::sync::Arc;

use proptest::prelude::*;
use rnn_monitor::core::{ContinuousMonitor, TickReport, UpdateBatch, UpdateEvent};
use rnn_monitor::engine::{
    AdmissionPolicy, EngineConfig, IngestConfig, IngestError, IngestHub, ShardedEngine,
};
use rnn_monitor::roadnet::{generators, EdgeId, NetPoint, ObjectId, RoadNetwork};
use rnn_monitor::workload::{
    Firehose, FirehoseConfig, FirehosePattern, MovementModel, Scenario, ScenarioConfig,
};

fn grid(nx: usize, ny: usize, seed: u64) -> Arc<RoadNetwork> {
    Arc::new(generators::grid_city(&generators::GridCityConfig {
        nx,
        ny,
        seed,
        ..Default::default()
    }))
}

fn small_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        num_objects: 120,
        num_queries: 16,
        k: 4,
        seed,
        movement: MovementModel::RandomWalk,
        object_agility: 0.3,
        ..Default::default()
    }
}

/// Exact result comparison: both sides run the very same engine code on
/// the very same event stream, so results compare bit-for-bit (ids
/// included), not as tolerance-padded distance multisets.
fn assert_results_identical(a: &dyn ContinuousMonitor, b: &dyn ContinuousMonitor, ctx: &str) {
    let mut ids = a.query_ids();
    ids.sort();
    let mut other = b.query_ids();
    other.sort();
    assert_eq!(ids, other, "{ctx}: query sets diverge");
    for qid in ids {
        assert_eq!(a.result(qid), b.result(qid), "{ctx}: query {qid} result");
        assert_eq!(
            a.knn_dist(qid).map(f64::to_bits),
            b.knn_dist(qid).map(f64::to_bits),
            "{ctx}: query {qid} kNN_dist bits"
        );
    }
}

/// Submitting a scenario's batches event-by-event (one event per entity
/// per window, so coalescing never folds anything) is bit-identical to
/// ticking the batches directly, at S ∈ {1, 2, 4}.
#[test]
fn ingest_without_coalescing_is_bit_identical_to_batch_path() {
    let net = grid(6, 6, 9);
    for shards in [1usize, 2, 4] {
        let mut scenario = Scenario::new(net.clone(), small_cfg(77));
        let cfg = EngineConfig::builder()
            .shards(shards)
            .ingest_capacity(4096)
            .admission(AdmissionPolicy::Block)
            .build()
            .expect("valid ingest config");
        let mut fed = ShardedEngine::new(net.clone(), cfg);
        let handle = fed.ingest_handle();
        let mut twin = ShardedEngine::new(net.clone(), EngineConfig::with_shards(shards));
        scenario.install_into(&mut fed);
        scenario.install_into(&mut twin);

        for ts in 0..6 {
            let batch = scenario.tick();
            for &ev in &batch.objects {
                handle
                    .submit(UpdateEvent::Object(ev))
                    .expect("lossless lane");
            }
            for &ev in &batch.queries {
                handle
                    .submit(UpdateEvent::Query(ev))
                    .expect("lossless lane");
            }
            for &ev in &batch.edges {
                handle.submit(UpdateEvent::Edge(ev)).expect("lossless lane");
            }
            let mut fed_rep = fed.tick_ingest();
            let twin_rep = twin.tick(&batch);

            let ctx = format!("S={shards}, ts={ts}");
            assert_eq!(fed_rep.counters.coalesced_superseded, 0, "{ctx}");
            assert_eq!(fed_rep.counters.shed_events, 0, "{ctx}");
            // The drain's own warm-up bookkeeping is the one counter the
            // batch path cannot have; everything else must match bit-wise.
            fed_rep.counters.drain_alloc_events = 0;
            assert_eq!(fed_rep.counters, twin_rep.counters, "{ctx}: counters");
            assert_eq!(
                fed_rep.results_changed, twin_rep.results_changed,
                "{ctx}: results_changed"
            );
            assert_results_identical(&fed, &twin, &ctx);
        }
    }
}

/// A flash-crowd firehose (every entity over-reported several times per
/// window) through the ingest stage must fold to the same answers as a
/// twin fed the firehose's effective batches — and must actually coalesce.
#[test]
fn flash_crowd_firehose_coalesces_and_matches_effective_batch_oracle() {
    let net = grid(6, 6, 11);
    let mut fire = Firehose::new(
        net.clone(),
        FirehoseConfig::new(FirehosePattern::FlashCrowd, small_cfg(123)),
    );
    let cfg = EngineConfig::builder()
        .shards(4)
        .ingest_capacity(8192)
        .admission(AdmissionPolicy::Block)
        .build()
        .expect("valid ingest config");
    let mut fed = ShardedEngine::new(net.clone(), cfg);
    let handle = fed.ingest_handle();
    let mut twin = ShardedEngine::new(net.clone(), EngineConfig::with_shards(4));
    fire.install_into(&mut fed);
    fire.install_into(&mut twin);

    let mut total = TickReport::default();
    for ts in 0..6 {
        let t = fire.tick();
        assert!(
            t.raw.len() > t.effective.len(),
            "firehose must oversample (ts {ts})"
        );
        for &ev in t.raw {
            handle.submit(ev).expect("lossless lane");
        }
        let effective = t.effective.clone();
        let rep = fed.tick_ingest();
        twin.tick(&effective);
        assert_eq!(rep.counters.shed_events, 0, "Block never sheds (ts {ts})");
        total.absorb_parallel(&rep);
        assert_results_identical(&fed, &twin, &format!("ts {ts}"));
    }
    assert!(
        total.counters.coalesced_superseded > 0,
        "a flash crowd must trigger last-write-wins folding"
    );
}

/// `Reject` admission surfaces a typed, value-carrying error instead of
/// panicking or silently dropping; draining reopens the lane.
#[test]
fn reject_policy_surfaces_typed_lane_full_error() {
    let mut hub = IngestHub::new(IngestConfig {
        lanes: 1,
        capacity: 2,
        policy: AdmissionPolicy::Reject,
    });
    let handle = hub.handle();
    let at = NetPoint::new(EdgeId(0), 0.5);
    handle
        .submit(UpdateEvent::move_object(ObjectId(1), at))
        .expect("first fits");
    handle
        .submit(UpdateEvent::move_object(ObjectId(2), at))
        .expect("second fits");
    let err = handle
        .submit(UpdateEvent::move_object(ObjectId(3), at))
        .expect_err("third must be refused");
    assert_eq!(
        err,
        IngestError::LaneFull {
            lane: 0,
            capacity: 2
        }
    );
    assert!(err.to_string().contains("lane 0"), "{err}");

    let mut batch = UpdateBatch::default();
    let stats = hub.drain_into(&mut batch);
    assert_eq!(stats.drained, 2, "the refused event was never queued");
    assert_eq!(stats.shed_events, 0, "Reject refuses; it does not shed");
    assert_eq!(batch.objects.len(), 2);
    handle
        .submit(UpdateEvent::move_object(ObjectId(3), at))
        .expect("drain reopens the lane");
}

/// Builder validation mirrors the same typed-error discipline at
/// configuration time: out-of-range ingest knobs never reach the hub.
#[test]
fn builder_rejects_invalid_ingest_knobs_with_typed_errors() {
    let err = EngineConfig::builder().ingest_lanes(0).build().unwrap_err();
    assert!(err.to_string().contains("ingest.lanes"), "{err}");
    let err = EngineConfig::builder()
        .ingest_capacity(0)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("ingest.capacity"), "{err}");
    let err = EngineConfig::builder().shards(0).build().unwrap_err();
    assert!(err.to_string().contains("shard"), "{err}");
}

/// Per-entity event scripts for the order-insensitivity property. Each
/// entity reports `1..=4` moves within one tick window; the final
/// position is what must survive coalescing.
fn entity_scripts() -> impl Strategy<Value = Vec<Vec<NetPoint>>> {
    prop::collection::vec(prop::collection::vec((0u32..64, 0.0f64..1.0), 1..5), 1..7).prop_map(
        |entities| {
            entities
                .into_iter()
                .map(|moves| {
                    moves
                        .into_iter()
                        .map(|(e, f)| NetPoint::new(EdgeId(e), f))
                        .collect()
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coalescing is insensitive to how concurrent producers interleave:
    /// any interleaving that preserves each entity's own submission order
    /// folds to the same per-entity outcome, with the same superseded
    /// count. `interleave_seed` drives one arbitrary round-robin-ish
    /// schedule; the baseline is plain sequential submission.
    #[test]
    fn coalescing_is_order_insensitive(
        scripts in entity_scripts(),
        interleave_seed in 0u64..u64::MAX,
    ) {
        let cfg = IngestConfig {
            lanes: 4,
            capacity: 1024,
            policy: AdmissionPolicy::Block,
        };

        // Baseline: entity 0's script, then entity 1's, ...
        let mut seq_hub = IngestHub::new(cfg);
        {
            let h = seq_hub.handle();
            for (idx, script) in scripts.iter().enumerate() {
                for &to in script {
                    h.submit(UpdateEvent::move_object(ObjectId(idx as u32), to)).unwrap();
                }
            }
        }
        let mut seq_batch = UpdateBatch::default();
        let seq_stats = seq_hub.drain_into(&mut seq_batch);

        // Shuffled: a deterministic schedule derived from the seed that
        // still consumes each script front-to-back.
        let mut cursors: Vec<usize> = vec![0; scripts.len()];
        let mut state = interleave_seed | 1;
        let mut mix_hub = IngestHub::new(cfg);
        {
            let h = mix_hub.handle();
            let total: usize = scripts.iter().map(Vec::len).sum();
            for _ in 0..total {
                // xorshift over the entities that still have events left.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let live: Vec<usize> = (0..scripts.len())
                    .filter(|&i| cursors[i] < scripts[i].len())
                    .collect();
                let pick = live[(state % live.len() as u64) as usize];
                let to = scripts[pick][cursors[pick]];
                cursors[pick] += 1;
                h.submit(UpdateEvent::move_object(ObjectId(pick as u32), to)).unwrap();
            }
        }
        let mut mix_batch = UpdateBatch::default();
        let mix_stats = mix_hub.drain_into(&mut mix_batch);

        // Same multiset of events → same fold totals...
        prop_assert_eq!(seq_stats.drained, mix_stats.drained);
        prop_assert_eq!(seq_stats.coalesced_superseded, mix_stats.coalesced_superseded);
        prop_assert_eq!(seq_stats.shed_events, 0);
        prop_assert_eq!(mix_stats.shed_events, 0);
        prop_assert_eq!(seq_stats.coalesced_superseded as usize,
            scripts.iter().map(|s| s.len() - 1).sum::<usize>());

        // ...and, entity by entity, the identical surviving event: the
        // last move of that entity's own script, exactly once.
        prop_assert_eq!(seq_batch.objects.len(), scripts.len());
        for (idx, script) in scripts.iter().enumerate() {
            let expected = UpdateEvent::move_object(
                ObjectId(idx as u32),
                *script.last().unwrap(),
            );
            let find = |b: &UpdateBatch| {
                let mine: Vec<UpdateEvent> = b
                    .objects
                    .iter()
                    .map(|&e| UpdateEvent::Object(e))
                    .filter(|e| matches!(*e, UpdateEvent::Object(
                        rnn_monitor::core::ObjectEvent::Move { id, .. }) if id.index() == idx))
                    .collect();
                prop_assert_eq!(mine.len(), 1, "entity {} folded to one event", idx);
                prop_assert_eq!(mine[0], expected);
            };
            find(&seq_batch);
            find(&mix_batch);
        }
    }
}
