//! Differential correctness of the sharded engine: at every timestamp of a
//! seeded scenario, `ShardedEngine` with S ∈ {1, 2, 4} shards must report
//! exactly the same k-NN sets as a single-threaded monitor fed the same
//! update stream.
//!
//! As in `differential.rs`, object ids may legitimately differ on exact
//! distance ties, so results compare as sorted distance multisets plus
//! `kNN_dist`, with relative tolerance 1e-9 for summation-order noise.

use std::sync::Arc;

use rnn_monitor::core::{ContinuousMonitor, Gma, Ima, QueryEvent, UpdateBatch, UpdateEvent};
use rnn_monitor::engine::{EngineConfig, ShardAlgo, ShardedEngine};
use rnn_monitor::roadnet::{generators, NetPoint, QueryId, RoadNetwork};
use rnn_monitor::workload::{MovementModel, Scenario, ScenarioConfig};

const REL_TOL: f64 = 1e-9;

fn assert_dist_eq(a: f64, b: f64, ctx: &str) {
    if a.is_infinite() && b.is_infinite() {
        return;
    }
    assert!(
        (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0),
        "{ctx}: {a} vs {b}"
    );
}

fn compare_monitors(
    reference: &dyn ContinuousMonitor,
    others: &[&dyn ContinuousMonitor],
    tick: usize,
) {
    let mut ids = reference.query_ids();
    ids.sort();
    for &other in others {
        let mut other_ids = other.query_ids();
        other_ids.sort();
        assert_eq!(ids, other_ids, "query sets diverge at tick {tick}");
    }
    for &qid in &ids {
        let ref_result = reference.result(qid).unwrap();
        let mut ref_dists: Vec<f64> = ref_result.iter().map(|n| n.dist).collect();
        ref_dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &other in others {
            let ctx = format!(
                "tick {tick}, query {qid}, {} vs {}",
                reference.name(),
                other.name()
            );
            let other_result = other.result(qid).unwrap();
            assert_eq!(ref_result.len(), other_result.len(), "{ctx}: result sizes");
            let mut other_dists: Vec<f64> = other_result.iter().map(|n| n.dist).collect();
            other_dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (da, db) in ref_dists.iter().zip(&other_dists) {
                assert_dist_eq(*da, *db, &ctx);
            }
            assert_dist_eq(
                reference.knn_dist(qid).unwrap(),
                other.knn_dist(qid).unwrap(),
                &format!("{ctx} (kNN_dist)"),
            );
        }
    }
}

/// Runs one scenario against a single-threaded reference and sharded
/// engines with 1, 2, and 4 shards, comparing after installation and after
/// every tick.
fn run_engine_differential(
    net: Arc<RoadNetwork>,
    cfg: ScenarioConfig,
    ticks: usize,
    algo: ShardAlgo,
) {
    let mut scenario = Scenario::new(net.clone(), cfg);
    let mut reference: Box<dyn ContinuousMonitor> = match algo {
        ShardAlgo::Gma => Box::new(Gma::new(net.clone())),
        ShardAlgo::Ima => Box::new(Ima::new(net.clone())),
        ShardAlgo::Ovh => Box::new(rnn_monitor::Ovh::new(net.clone())),
    };
    let mut engines: Vec<ShardedEngine> = [1usize, 2, 4]
        .into_iter()
        .map(|s| {
            ShardedEngine::new(
                net.clone(),
                EngineConfig {
                    num_shards: s,
                    algo,
                    halo_slack: 0.25,
                    ..EngineConfig::default()
                },
            )
        })
        .collect();

    scenario.install_into(reference.as_mut());
    for e in &mut engines {
        scenario.install_into(e);
    }
    {
        let views: Vec<&dyn ContinuousMonitor> = engines
            .iter()
            .map(|e| e as &dyn ContinuousMonitor)
            .collect();
        compare_monitors(reference.as_ref(), &views, 0);
    }

    for t in 1..=ticks {
        let batch = scenario.tick();
        reference.tick(&batch);
        for e in &mut engines {
            e.tick(&batch);
        }
        let views: Vec<&dyn ContinuousMonitor> = engines
            .iter()
            .map(|e| e as &dyn ContinuousMonitor)
            .collect();
        compare_monitors(reference.as_ref(), &views, t);
    }
}

fn grid(nx: usize, ny: usize, seed: u64) -> Arc<RoadNetwork> {
    Arc::new(generators::grid_city(&generators::GridCityConfig {
        nx,
        ny,
        seed,
        ..Default::default()
    }))
}

fn base_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        num_objects: 80,
        num_queries: 12,
        k: 4,
        seed,
        ..Default::default()
    }
}

#[test]
fn engine_matches_gma_default_workload() {
    run_engine_differential(grid(8, 8, 1), base_cfg(11), 15, ShardAlgo::Gma);
}

#[test]
fn engine_matches_ima_default_workload() {
    run_engine_differential(grid(7, 9, 2), base_cfg(22), 15, ShardAlgo::Ima);
}

#[test]
fn engine_matches_gma_second_seed() {
    run_engine_differential(grid(9, 7, 3), base_cfg(33), 15, ShardAlgo::Gma);
}

#[test]
fn engine_k_equals_one() {
    run_engine_differential(
        grid(8, 8, 4),
        ScenarioConfig {
            k: 1,
            ..base_cfg(44)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_large_k_forces_wide_halos() {
    run_engine_differential(
        grid(6, 6, 5),
        ScenarioConfig {
            k: 25,
            num_objects: 60,
            ..base_cfg(55)
        },
        10,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_underfull_results() {
    // Fewer objects than k: kNN_dist = ∞ drives halos to full replication;
    // everything must still agree.
    run_engine_differential(
        grid(5, 5, 6),
        ScenarioConfig {
            k: 10,
            num_objects: 6,
            num_queries: 5,
            ..base_cfg(66)
        },
        8,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_edge_heavy_workload() {
    // Weight churn stresses halo-membership refresh.
    run_engine_differential(
        grid(8, 8, 7),
        ScenarioConfig {
            edge_agility: 0.30,
            object_agility: 0.0,
            query_agility: 0.0,
            ..base_cfg(77)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_query_heavy_workload() {
    // Fast queries migrate across shard borders constantly.
    run_engine_differential(
        grid(8, 8, 8),
        ScenarioConfig {
            edge_agility: 0.0,
            object_agility: 0.0,
            query_agility: 0.8,
            query_speed: 2.0,
            ..base_cfg(88)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_object_heavy_fast_workload() {
    // Fast objects churn the replica sets.
    run_engine_differential(
        grid(8, 8, 9),
        ScenarioConfig {
            edge_agility: 0.0,
            object_agility: 0.9,
            object_speed: 4.0,
            query_agility: 0.0,
            ..base_cfg(99)
        },
        12,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_everything_agile_with_ima() {
    run_engine_differential(
        grid(7, 7, 10),
        ScenarioConfig {
            edge_agility: 0.25,
            object_agility: 0.5,
            query_agility: 0.5,
            object_speed: 2.0,
            query_speed: 2.0,
            ..base_cfg(110)
        },
        12,
        ShardAlgo::Ima,
    );
}

#[test]
fn engine_brinkhoff_movement() {
    run_engine_differential(
        grid(7, 7, 11),
        ScenarioConfig {
            movement: MovementModel::Brinkhoff,
            ..base_cfg(121)
        },
        10,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_san_francisco_like_slice() {
    // Long degree-2 chains produce few intersections and jagged borders.
    let net = Arc::new(generators::san_francisco_like(600, 12));
    run_engine_differential(
        net,
        ScenarioConfig {
            num_objects: 120,
            num_queries: 15,
            k: 5,
            ..base_cfg(131)
        },
        6,
        ShardAlgo::Gma,
    );
}

#[test]
fn engine_query_churn_mid_run() {
    // Queries installed and removed through tick batches while running.
    let net = grid(8, 8, 13);
    let mut scenario = Scenario::new(net.clone(), base_cfg(141));
    let mut gma = Gma::new(net.clone());
    let mut eng = ShardedEngine::new(net.clone(), EngineConfig::with_shards(4));
    scenario.install_into(&mut gma);
    scenario.install_into(&mut eng);

    for t in 1..=12usize {
        let mut batch = scenario.tick();
        if t % 3 == 0 {
            let e = rnn_monitor::roadnet::EdgeId((t % net.num_edges()) as u32);
            batch.queries.push(QueryEvent::Install {
                id: QueryId(1000 + t as u32),
                k: 3,
                at: NetPoint::new(e, 0.4),
            });
        }
        if t % 3 == 2 && t > 3 {
            batch.queries.push(QueryEvent::Remove {
                id: QueryId(1000 + (t - 2) as u32),
            });
        }
        gma.tick(&batch);
        eng.tick(&batch);
        compare_monitors(&gma, &[&eng], t);
    }
}

#[test]
fn engine_duplicate_install_same_shard_then_move() {
    // The router re-installs a query on its current shard without sending a
    // Remove first, relying on the monitors' batch coalescing (state.rs:
    // last Install wins, a following Move keeps its k). Pin that contract:
    // duplicate Install on the same shard, then Move — within one batch and
    // across batches — must stay answer-identical to a single monitor.
    let net = grid(8, 8, 17);
    let n = net.num_edges() as u32;
    let mut gma = Gma::new(net.clone());
    let mut eng = ShardedEngine::new(net.clone(), EngineConfig::with_shards(4));
    for i in 0..40u32 {
        let at = NetPoint::new(rnn_monitor::roadnet::EdgeId((i * 7) % n), 0.35);
        gma.apply(UpdateEvent::insert_object(
            rnn_monitor::roadnet::ObjectId(i),
            at,
        ));
        eng.apply(UpdateEvent::insert_object(
            rnn_monitor::roadnet::ObjectId(i),
            at,
        ));
    }
    let e0 = rnn_monitor::roadnet::EdgeId(0);
    gma.apply(UpdateEvent::install_query(
        QueryId(9),
        4,
        NetPoint::new(e0, 0.5),
    ));
    eng.apply(UpdateEvent::install_query(
        QueryId(9),
        4,
        NetPoint::new(e0, 0.5),
    ));
    compare_monitors(&gma, &[&eng], 0);

    let home = eng.partition().shard_of_edge(e0);
    let same_shard = net
        .edge_ids()
        .find(|&e| e != e0 && eng.partition().shard_of_edge(e) == home)
        .expect("shard owns more than one edge");
    let foreign = net
        .edge_ids()
        .find(|&e| eng.partition().shard_of_edge(e) != home)
        .expect("4-way split has foreign edges");

    // Tick 1: re-Install on the same shard (new k, new edge), then Move
    // within the same batch — the owning monitor sees [Install, Move] with
    // no Remove in between.
    let mut batch = UpdateBatch::default();
    batch.queries.push(QueryEvent::Install {
        id: QueryId(9),
        k: 6,
        at: NetPoint::new(same_shard, 0.25),
    });
    batch.queries.push(QueryEvent::Move {
        id: QueryId(9),
        to: NetPoint::new(same_shard, 0.75),
    });
    gma.tick(&batch);
    eng.tick(&batch);
    compare_monitors(&gma, &[&eng], 1);
    assert_eq!(
        eng.result(QueryId(9)).unwrap().len(),
        6,
        "re-install must adopt the new k"
    );

    // Tick 2: another same-shard duplicate Install, then a Move that
    // crosses the border (Remove+Install for the engine, plain events for
    // the reference).
    let mut batch = UpdateBatch::default();
    batch.queries.push(QueryEvent::Install {
        id: QueryId(9),
        k: 3,
        at: NetPoint::new(e0, 0.1),
    });
    batch.queries.push(QueryEvent::Move {
        id: QueryId(9),
        to: NetPoint::new(foreign, 0.5),
    });
    gma.tick(&batch);
    eng.tick(&batch);
    compare_monitors(&gma, &[&eng], 2);
    assert_eq!(eng.result(QueryId(9)).unwrap().len(), 3);
    eng.validate_replication()
        .expect("replica bookkeeping survives re-install");

    for t in 3..6 {
        let batch = UpdateBatch::default();
        gma.tick(&batch);
        eng.tick(&batch);
        compare_monitors(&gma, &[&eng], t);
    }
}

#[test]
fn engine_heavy_churn_replicas_decay_to_steady_state() {
    // Heavy query churn — install/remove/migrate every tick — against
    // S ∈ {2, 4, 8}. Answers must stay identical to single-monitor GMA
    // throughout, and once churn subsides the halo shrink must return
    // `replica_count()` exactly to its pre-churn steady-state level
    // (objects, base queries, and weights are static, and
    // halo_shrink_trigger = 1 makes the decayed radius reproducible).
    let net = grid(8, 8, 21);
    let n = net.num_edges() as u32;
    let mut gma = Gma::new(net.clone());
    let mut engines: Vec<ShardedEngine> = [2usize, 4, 8]
        .into_iter()
        .map(|s| {
            ShardedEngine::new(
                net.clone(),
                EngineConfig {
                    num_shards: s,
                    halo_shrink_trigger: 1.0,
                    halo_shrink_ticks: 2,
                    ..EngineConfig::default()
                },
            )
        })
        .collect();

    for i in 0..70u32 {
        let at = NetPoint::new(rnn_monitor::roadnet::EdgeId((i * 13) % n), 0.35);
        gma.apply(UpdateEvent::insert_object(
            rnn_monitor::roadnet::ObjectId(i),
            at,
        ));
        for e in &mut engines {
            e.apply(UpdateEvent::insert_object(
                rnn_monitor::roadnet::ObjectId(i),
                at,
            ));
        }
    }
    for q in 0..6u32 {
        let at = NetPoint::new(rnn_monitor::roadnet::EdgeId((q * 29 + 3) % n), 0.6);
        gma.apply(UpdateEvent::install_query(QueryId(q), 4, at));
        for e in &mut engines {
            e.apply(UpdateEvent::install_query(QueryId(q), 4, at));
        }
    }
    // Let post-install halos settle into steady state.
    for _ in 0..3 {
        let batch = UpdateBatch::default();
        gma.tick(&batch);
        for e in &mut engines {
            e.tick(&batch);
        }
    }
    let steady: Vec<usize> = engines.iter().map(|e| e.replica_count()).collect();
    let evictions_before: Vec<u64> = engines.iter().map(|e| e.replica_evictions()).collect();

    // Churn: every tick installs a wide (k=7) query, migrates the previous
    // one, and removes the one before that.
    let mut peak = vec![0usize; engines.len()];
    for t in 0..14u32 {
        let mut batch = UpdateBatch::default();
        batch.queries.push(QueryEvent::Install {
            id: QueryId(100 + t),
            k: 7,
            at: NetPoint::new(rnn_monitor::roadnet::EdgeId((t * 17 + 5) % n), 0.25),
        });
        if t >= 1 {
            batch.queries.push(QueryEvent::Move {
                id: QueryId(100 + t - 1),
                to: NetPoint::new(rnn_monitor::roadnet::EdgeId((t * 31 + 11) % n), 0.75),
            });
        }
        if t >= 2 {
            batch.queries.push(QueryEvent::Remove {
                id: QueryId(100 + t - 2),
            });
        }
        gma.tick(&batch);
        for (i, e) in engines.iter_mut().enumerate() {
            e.tick(&batch);
            peak[i] = peak[i].max(e.replica_count());
        }
        let views: Vec<&dyn ContinuousMonitor> = engines
            .iter()
            .map(|e| e as &dyn ContinuousMonitor)
            .collect();
        compare_monitors(&gma, &views, t as usize + 1);
        for e in &engines {
            e.validate_replication()
                .expect("invariants hold under churn");
        }
    }

    // Churn subsides: remove the stragglers, then quiet ticks while the
    // halos decay. Answers must stay identical the whole way down.
    let mut batch = UpdateBatch::default();
    for id in [112u32, 113] {
        batch.queries.push(QueryEvent::Remove { id: QueryId(id) });
    }
    gma.tick(&batch);
    for e in &mut engines {
        e.tick(&batch);
    }
    for t in 0..4usize {
        let batch = UpdateBatch::default();
        gma.tick(&batch);
        for e in &mut engines {
            e.tick(&batch);
        }
        let views: Vec<&dyn ContinuousMonitor> = engines
            .iter()
            .map(|e| e as &dyn ContinuousMonitor)
            .collect();
        compare_monitors(&gma, &views, 100 + t);
    }

    for (i, e) in engines.iter().enumerate() {
        assert_eq!(
            e.replica_count(),
            steady[i],
            "S={}: replicas did not decay back to steady state (peak was {})",
            e.num_shards(),
            peak[i]
        );
        assert!(
            e.replica_evictions() > evictions_before[i],
            "S={}: churn must evict stale replicas",
            e.num_shards()
        );
        e.validate_replication()
            .expect("invariants hold after decay");
    }
}

#[test]
fn engine_rebalances_under_hotspot_and_stays_identical() {
    // Forced migrations: an aggressive rebalancer (trigger 1.0, cooldown 1)
    // under a drifting query hotspot must migrate cells while every tick's
    // answers stay identical to a single-threaded GMA fed the same stream.
    let net = grid(8, 8, 23);
    let n = net.num_edges() as u32;
    let mut gma = Gma::new(net.clone());
    let mut engines: Vec<ShardedEngine> = [2usize, 4]
        .into_iter()
        .map(|s| {
            ShardedEngine::new(
                net.clone(),
                EngineConfig {
                    num_shards: s,
                    rebalance_trigger: 1.0,
                    rebalance_cooldown: 1,
                    ..EngineConfig::default()
                },
            )
        })
        .collect();

    for i in 0..n {
        let at = NetPoint::new(rnn_monitor::roadnet::EdgeId(i), 0.45);
        gma.apply(UpdateEvent::insert_object(
            rnn_monitor::roadnet::ObjectId(i),
            at,
        ));
        for e in &mut engines {
            e.apply(UpdateEvent::insert_object(
                rnn_monitor::roadnet::ObjectId(i),
                at,
            ));
        }
    }
    // A tight cluster of queries that drifts across the network edge by
    // edge, dragging the load hotspot over shard borders.
    const Q: u32 = 8;
    for q in 0..Q {
        let at = NetPoint::new(rnn_monitor::roadnet::EdgeId(q % 4), 0.3);
        gma.apply(UpdateEvent::install_query(QueryId(q), 5, at));
        for e in &mut engines {
            e.apply(UpdateEvent::install_query(QueryId(q), 5, at));
        }
    }

    for t in 0..24u32 {
        let mut batch = UpdateBatch::default();
        for q in 0..Q {
            // Cluster center drifts by two edges per tick; members fan out
            // over four consecutive edge ids, oscillating along the edge.
            let e = rnn_monitor::roadnet::EdgeId((t * 2 + q % 4) % n);
            let frac = if (t + q) % 2 == 0 { 0.25 } else { 0.7 };
            batch.queries.push(QueryEvent::Move {
                id: QueryId(q),
                to: NetPoint::new(e, frac),
            });
        }
        // A little object churn near the cluster keeps the workers busy.
        batch.objects.push(rnn_monitor::core::ObjectEvent::Move {
            id: rnn_monitor::roadnet::ObjectId(t % n),
            to: NetPoint::new(rnn_monitor::roadnet::EdgeId((t * 3) % n), 0.6),
        });
        gma.tick(&batch);
        for e in &mut engines {
            e.tick(&batch);
            e.validate_replication()
                .expect("replication + partition invariants hold mid-migration");
        }
        let views: Vec<&dyn ContinuousMonitor> = engines
            .iter()
            .map(|e| e as &dyn ContinuousMonitor)
            .collect();
        compare_monitors(&gma, &views, t as usize + 1);
    }
    for e in &engines {
        assert!(
            e.cells_migrated() > 0,
            "S={}: the drifting hotspot must force cell migrations",
            e.num_shards()
        );
        assert!(e.rebalance_events() > 0);
    }
}

#[test]
fn engine_empty_ticks_change_nothing() {
    let net = grid(6, 6, 14);
    let scenario = Scenario::new(net.clone(), base_cfg(151));
    let mut eng = ShardedEngine::new(net, EngineConfig::with_shards(4));
    scenario.install_into(&mut eng);
    let snapshot: Vec<_> = {
        let mut ids = eng.query_ids();
        ids.sort();
        ids.iter()
            .map(|&q| eng.result(q).unwrap().to_vec())
            .collect()
    };
    for _ in 0..3 {
        let rep = eng.tick(&UpdateBatch::default());
        assert_eq!(rep.results_changed, 0);
    }
    let mut ids = eng.query_ids();
    ids.sort();
    for (i, &q) in ids.iter().enumerate() {
        assert_eq!(eng.result(q).unwrap(), snapshot[i].as_slice());
    }
}
