//! Tick-path flatness tests: shared-anchor expansion correctness and the
//! steady-state zero-allocation guarantee of the arena/heap layout.

use std::sync::Arc;

use proptest::prelude::*;
use rnn_monitor::core::{ContinuousMonitor, Gma, Ima, OpCounters, UpdateBatch, UpdateEvent};
use rnn_monitor::core::{ObjectEvent, QueryEvent};
use rnn_monitor::roadnet::{generators, EdgeId, NetPoint, ObjectId, QueryId, RoadNetwork};
use rnn_monitor::workload::{Scenario, ScenarioConfig};

fn grid(seed: u64) -> Arc<RoadNetwork> {
    Arc::new(generators::grid_city(&generators::GridCityConfig {
        nx: 5,
        ny: 5,
        seed,
        ..Default::default()
    }))
}

/// Deterministic pseudo-random stream (the test drives its own workload so
/// the shrink behaviour of proptest stays simple).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn frac(&mut self) -> f64 {
        (self.next() % 1000) as f64 / 1000.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shared-anchor expansions must answer exactly like independent
    /// per-query expansions: a monitor holding several co-located queries
    /// (the configuration that triggers the root-grouped multi-k
    /// expansion) agrees with one monitor per query, on random networks
    /// and random workloads.
    #[test]
    fn shared_anchor_expansion_matches_independent_queries(
        seed in 0u64..1000,
        n_queries in 2usize..5,
        n_objects in 6usize..30,
    ) {
        let net = grid(seed % 7);
        let edges = net.num_edges() as u32;
        let mut rng = Lcg(seed.wrapping_mul(997) + 13);

        // One IMA with all queries co-located (shared expansions fire) and
        // one independent single-query IMA per query. GMA rides along: its
        // sharing (active-node expansions serving many queries) must agree
        // with both.
        let mut shared_ima = Ima::new(net.clone());
        let mut shared_gma = Gma::new(net.clone());
        let mut solo: Vec<Ima> = (0..n_queries).map(|_| Ima::new(net.clone())).collect();

        for i in 0..n_objects {
            let at = NetPoint::new(EdgeId(rng.next() as u32 % edges), rng.frac());
            let id = ObjectId(i as u32);
            shared_ima.apply(UpdateEvent::insert_object(id, at));
            shared_gma.apply(UpdateEvent::insert_object(id, at));
            for m in &mut solo {
                m.apply(UpdateEvent::insert_object(id, at));
            }
        }
        let q0 = NetPoint::new(EdgeId(rng.next() as u32 % edges), rng.frac());
        for (i, m) in solo.iter_mut().enumerate() {
            let k = 1 + i % 3;
            shared_ima.apply(UpdateEvent::install_query(QueryId(i as u32), k, q0));
            shared_gma.apply(UpdateEvent::install_query(QueryId(i as u32), k, q0));
            m.apply(UpdateEvent::install_query(QueryId(i as u32), k, q0));
        }

        let mut shared_seen = 0u64;
        for tick in 0..6 {
            // Random object churn, plus a joint move of every query to one
            // fresh position (same root ⇒ one multi-k expansion serves all).
            let mut batch = UpdateBatch::default();
            for i in 0..n_objects {
                if rng.next() % 3 == 0 {
                    batch.objects.push(ObjectEvent::Move {
                        id: ObjectId(i as u32),
                        to: NetPoint::new(EdgeId(rng.next() as u32 % edges), rng.frac()),
                    });
                }
            }
            if tick % 2 == 0 {
                let to = NetPoint::new(EdgeId(rng.next() as u32 % edges), rng.frac());
                for i in 0..n_queries {
                    batch.queries.push(QueryEvent::Move {
                        id: QueryId(i as u32),
                        to,
                    });
                }
            }
            let rep = shared_ima.tick(&batch);
            shared_seen += rep.counters.shared_expansions;
            shared_gma.tick(&batch);
            for m in solo.iter_mut() {
                m.tick(&batch);
            }
            for (i, m) in solo.iter().enumerate() {
                let id = QueryId(i as u32);
                prop_assert_eq!(
                    shared_ima.result(id).unwrap(),
                    m.result(id).unwrap(),
                    "shared IMA diverged for {:?} at tick {}", id, tick
                );
                let a = shared_gma.result(id).unwrap();
                let b = m.result(id).unwrap();
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.object, y.object);
                    prop_assert!((x.dist - y.dist).abs() <= 1e-9 * y.dist.max(1.0));
                }
            }
            shared_ima.validate_invariants();
        }
        // Co-located queries moving together must actually exercise the
        // shared multi-k path at least once.
        prop_assert!(
            shared_seen > 0,
            "root-grouped expansion never fired for co-located queries"
        );
    }
}

/// The steady-state zero-allocation guarantee: once the workload's
/// high-water marks are reached, ticks report zero alloc events on the
/// instrumented structures (per-edge arenas + Dijkstra heap + tree pool).
/// The workload includes edge-weight churn, so every measured tick
/// performs tree *surgery* — subtree cuts, θ-prunes and re-expansion
/// inserts — and the guarantee covers it: surgery runs entirely through
/// the pool's free list (`tree_nodes_recycled > 0`) without allocating.
/// The scenario is seeded, so this is deterministic.
#[test]
fn steady_state_ticks_are_allocation_free() {
    let net = Arc::new(generators::san_francisco_like(300, 17));
    let cfg = ScenarioConfig {
        num_objects: 400,
        num_queries: 40,
        k: 4,
        object_agility: 0.1,
        query_agility: 0.05,
        edge_agility: 0.08,
        seed: 9,
        ..Default::default()
    };
    let mut scenario = Scenario::new(net.clone(), cfg);
    let mut ima = Ima::new(net.clone());
    let mut gma = Gma::new(net.clone());
    scenario.install_into(&mut ima);
    scenario.install_into(&mut gma);

    // Warm up until the arenas, heaps and the tree pool have seen their
    // high-water marks (the pool's spare-directory population adapts to
    // the tick's concurrent-expansion demand during the first ticks).
    for _ in 0..16 {
        let batch = scenario.tick();
        ima.tick(&batch);
        gma.tick(&batch);
    }
    let mut steady = OpCounters::default();
    for _ in 0..6 {
        let batch = scenario.tick();
        steady.merge(&ima.tick(&batch).counters);
        steady.merge(&gma.tick(&batch).counters);
    }
    assert_eq!(
        steady.alloc_events, 0,
        "steady-state ticks allocated on the arena/heap/tree-pool tick path"
    );
    assert!(
        steady.expansion_steps > 0,
        "the expansion-step counter must see heap traffic"
    );
    assert!(
        steady.shared_expansions > 0,
        "GMA's endpoint expansions must serve multiple queries"
    );
    assert!(
        steady.tree_nodes_pruned > 0,
        "edge churn must force tree surgery in the measured window"
    );
    assert!(
        steady.tree_nodes_recycled > 0,
        "tree surgery must recycle pooled slots, not grow the slab"
    );
    ima.validate_invariants();
}

/// The tree-pool hint: monitors constructed with
/// `with_tree_pool_hint(queries)` pre-provision the pool's spare
/// directories, so the install phase builds its expansion trees from warm
/// buffers. The first tick's `install_alloc_events` must drop strictly
/// below the cold-constructed monitor's — and answers must be identical
/// (the warm-up is invisible to the algorithms).
#[test]
fn tree_pool_hint_cuts_first_tick_install_allocs() {
    let net = Arc::new(generators::san_francisco_like(300, 17));
    let cfg = ScenarioConfig {
        num_objects: 400,
        num_queries: 40,
        k: 4,
        object_agility: 0.1,
        query_agility: 0.05,
        edge_agility: 0.08,
        seed: 9,
        ..Default::default()
    };
    let mut cold = Ima::new(net.clone());
    let mut warm = Ima::with_tree_pool_hint(net.clone(), cfg.num_queries);
    // Objects placed up front (they build no trees); every query arrives
    // through the first tick's batch, whose report carries the
    // install-time allocation accounting.
    let edges = net.num_edges() as u32;
    let mut rng = Lcg(41);
    for i in 0..cfg.num_objects {
        let at = NetPoint::new(EdgeId(rng.next() as u32 % edges), rng.frac());
        cold.apply(UpdateEvent::insert_object(ObjectId(i as u32), at));
        warm.apply(UpdateEvent::insert_object(ObjectId(i as u32), at));
    }
    let mut batch = UpdateBatch::default();
    for q in 0..cfg.num_queries {
        batch.queries.push(QueryEvent::Install {
            id: QueryId(q as u32),
            k: cfg.k,
            at: NetPoint::new(EdgeId(rng.next() as u32 % edges), rng.frac()),
        });
    }
    let cold_report = cold.tick(&batch);
    let warm_report = warm.tick(&batch);
    assert!(
        cold_report.counters.install_alloc_events > 0,
        "cold install must pay counted tree allocations"
    );
    assert!(
        warm_report.counters.install_alloc_events < cold_report.counters.install_alloc_events,
        "prewarmed pool must cut first-tick install allocs ({} vs cold {})",
        warm_report.counters.install_alloc_events,
        cold_report.counters.install_alloc_events
    );
    // Same stream, same answers: the hint is performance-only.
    let mut ids = cold.query_ids();
    ids.sort();
    for id in ids {
        assert_eq!(cold.result(id), warm.result(id), "hint changed {id:?}");
    }
    warm.validate_invariants();
}
