//! Crash-recovery differentials for the durability plane: a cluster
//! whose shards snapshot their monitor state and journal every event
//! frame must survive mid-run crashes by **snapshot install + journal
//! suffix replay** — answer-identical to an uncrashed in-process twin —
//! and, when a shard stays dead past its recovery budget, survivors
//! must **take over** its cells through the migration planner.
//!
//! Counter discipline: a restored monitor answers identically but its
//! allocator-history counters (pools warmed by restore, not the full
//! run) and tree-shape-history counters (expansion trees recomputed on
//! load, not replayed install-by-install) legitimately diverge, so the
//! snapshot-recovery differentials compare the
//! [`OpCounters::restore_stable`] projection — answers, result churn,
//! and pure expansion work stay bit-identical. The snapshot-free full
//! journal replay path stays *exactly* bit-identical, every counter
//! included, and is covered by `cluster_differential.rs`.

use std::sync::Arc;
use std::time::Duration;

use rnn_monitor::cluster::{
    loopback_pair, wal, ClusterEngine, ClusterError, DurabilityConfig, FaultPlan, Frame, MsgTag,
    ReplicaNode, ReplicatedLog, RetryPolicy, Transport,
};
use rnn_monitor::core::{ContinuousMonitor, Gma, TickReport, TransportStats};
use rnn_monitor::engine::{EngineConfig, ReplicationConfig, ShardAlgo, ShardedEngine};
use rnn_monitor::roadnet::{generators, RoadNetwork};
use rnn_monitor::workload::{Scenario, ScenarioConfig};

fn grid(nx: usize, ny: usize, seed: u64) -> Arc<RoadNetwork> {
    Arc::new(generators::grid_city(&generators::GridCityConfig {
        nx,
        ny,
        seed,
        ..Default::default()
    }))
}

fn base_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        num_objects: 80,
        num_queries: 12,
        k: 4,
        seed,
        ..Default::default()
    }
}

/// Answers must bit-match; work counters compare through the
/// restore-stable projection (see module docs).
fn assert_answers_identical(
    inproc: &ShardedEngine,
    cluster: &ClusterEngine,
    reports: Option<(&TickReport, &TickReport)>,
    ctx: &str,
) {
    let mut ids = inproc.query_ids();
    ids.sort();
    let mut cids = cluster.query_ids();
    cids.sort();
    assert_eq!(ids, cids, "{ctx}: query sets diverge");
    for &qid in &ids {
        assert_eq!(
            inproc.result(qid).unwrap(),
            cluster.result(qid).unwrap(),
            "{ctx}, query {qid}: results diverge"
        );
        assert_eq!(
            inproc.knn_dist(qid).unwrap().to_bits(),
            cluster.knn_dist(qid).unwrap().to_bits(),
            "{ctx}, query {qid}: kNN_dist bits diverge"
        );
    }
    if let Some((ri, rc)) = reports {
        assert_eq!(
            ri.counters.restore_stable(),
            rc.counters.restore_stable(),
            "{ctx}: restore-stable work counters diverge"
        );
        assert_eq!(
            ri.results_changed, rc.results_changed,
            "{ctx}: results_changed diverges"
        );
    }
}

/// xorshift64*, so crash points are seeded but spread across the run.
fn seeded_crash_frame(seed: u64, shard: usize) -> u32 {
    let mut x = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1));
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33;
    // Spread across install and tick phases, but low enough that every
    // shard's budget is reached even at S=4 (each shard sees ~20+
    // delivered frames over a 12-tick run).
    6 + (r % 10) as u32
}

/// Crashes shard 0 mid-run with snapshots every `snapshot_every` event
/// frames; recovery must install the latest snapshot and replay only
/// the journal suffix.
fn run_snapshot_recovery_differential(snapshot_every: u32, crash_after_frames: u32) {
    let net = grid(8, 8, 1);
    let cfg = base_cfg(11);
    for shards in [2usize, 4] {
        let ecfg = EngineConfig {
            num_shards: shards,
            algo: ShardAlgo::Gma,
            ..EngineConfig::default()
        };
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        let mut plans = vec![FaultPlan::default(); shards];
        plans[0] = FaultPlan {
            crash_after_frames,
            ..Default::default()
        };
        let mut cluster = ClusterEngine::loopback_durable(
            net.clone(),
            ecfg,
            &plans,
            RetryPolicy::default(),
            DurabilityConfig::in_memory(snapshot_every),
        );
        let mut scenario = Scenario::new(net.clone(), cfg.clone());
        scenario.install_into(&mut inproc);
        scenario.install_into(&mut cluster);
        for t in 1..=12usize {
            let batch = scenario.tick();
            let ri = inproc.tick(&batch);
            let rc = cluster.tick(&batch);
            assert_answers_identical(
                &inproc,
                &cluster,
                Some((&ri, &rc)),
                &format!(
                    "S={shards}, every={snapshot_every}, crash={crash_after_frames}, tick {t}"
                ),
            );
        }
        let s0 = &cluster.shard_stats()[0];
        assert!(
            s0.snapshots > 0,
            "S={shards}: snapshot cycle never fired (stats: {s0:?})"
        );
        assert!(
            s0.crash_recoveries >= 1,
            "S={shards}: the planned crash must have fired (stats: {s0:?})"
        );
        // Bounded-time recovery: each rebuild replays at most the journal
        // suffix accumulated since the last snapshot (plus the in-flight
        // frame), never the whole history.
        let per_recovery_bound = u64::from(snapshot_every) + 2;
        assert!(
            s0.frames_replayed <= s0.crash_recoveries * per_recovery_bound,
            "S={shards}: replay not bounded by the WAL suffix: {} frames over {} recoveries \
             (snapshot_every={snapshot_every})",
            s0.frames_replayed,
            s0.crash_recoveries,
        );
        // The satellite fix: the coordinator journal is truncated behind
        // every durable snapshot instead of growing without bound.
        for (s, st) in cluster.shard_stats().iter().enumerate() {
            assert!(
                st.journal_len < u64::from(snapshot_every),
                "shard {s}: journal not truncated behind snapshots (stats: {st:?})"
            );
        }
    }
}

#[test]
fn cluster_recovers_from_snapshot_plus_journal_suffix() {
    run_snapshot_recovery_differential(3, 14);
}

#[test]
fn cluster_recovers_with_sparse_snapshots() {
    run_snapshot_recovery_differential(8, 12);
}

#[test]
fn cluster_recovers_from_seeded_random_crash_ticks() {
    // Every shard gets its own seeded crash point; each must recover
    // from its snapshot + suffix with answers indistinguishable from
    // the uncrashed twin.
    let net = grid(7, 9, 2);
    let cfg = base_cfg(22);
    for (seed, shards) in [(41u64, 2usize), (42, 4), (43, 4)] {
        let ecfg = EngineConfig {
            num_shards: shards,
            algo: ShardAlgo::Ima,
            ..EngineConfig::default()
        };
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        let plans: Vec<FaultPlan> = (0..shards)
            .map(|s| FaultPlan {
                crash_after_frames: seeded_crash_frame(seed, s),
                ..Default::default()
            })
            .collect();
        let mut cluster = ClusterEngine::loopback_durable(
            net.clone(),
            ecfg,
            &plans,
            RetryPolicy::default(),
            DurabilityConfig::in_memory(4),
        );
        let mut scenario = Scenario::new(net.clone(), cfg.clone());
        scenario.install_into(&mut inproc);
        scenario.install_into(&mut cluster);
        for t in 1..=12usize {
            let batch = scenario.tick();
            let ri = inproc.tick(&batch);
            let rc = cluster.tick(&batch);
            assert_answers_identical(
                &inproc,
                &cluster,
                Some((&ri, &rc)),
                &format!("seed={seed}, S={shards}, tick {t}"),
            );
        }
        let stats = cluster.stats();
        assert!(
            stats.crash_recoveries >= shards as u64,
            "seed={seed}, S={shards}: every shard was scheduled to crash (stats: {stats:?})"
        );
        assert!(stats.snapshots > 0, "seed={seed}: no snapshots taken");
    }
}

#[test]
fn on_disk_durability_persists_snapshot_and_torn_tail_safe_wal() {
    let root =
        std::env::temp_dir().join(format!("rnn-recovery-{}-{}", std::process::id(), line!()));
    let _ = std::fs::remove_dir_all(&root);

    let net = grid(8, 8, 3);
    let shards = 2usize;
    let ecfg = EngineConfig {
        num_shards: shards,
        algo: ShardAlgo::Gma,
        ..EngineConfig::default()
    };
    let mut inproc = ShardedEngine::new(net.clone(), ecfg);
    let mut plans = vec![FaultPlan::default(); shards];
    plans[0] = FaultPlan {
        crash_after_frames: 14,
        ..Default::default()
    };
    let mut cluster = ClusterEngine::loopback_durable(
        net.clone(),
        ecfg,
        &plans,
        RetryPolicy::default(),
        DurabilityConfig::on_disk(4, root.clone()),
    );
    let mut scenario = Scenario::new(net.clone(), base_cfg(33));
    scenario.install_into(&mut inproc);
    scenario.install_into(&mut cluster);
    for t in 1..=10usize {
        let batch = scenario.tick();
        let ri = inproc.tick(&batch);
        let rc = cluster.tick(&batch);
        assert_answers_identical(
            &inproc,
            &cluster,
            Some((&ri, &rc)),
            &format!("disk, tick {t}"),
        );
    }
    let stats = cluster.stats();
    assert!(stats.snapshots > 0 && stats.crash_recoveries >= 1);
    assert!(
        stats.snapshot_bytes > 0,
        "durable snapshot missing (stats: {stats:?})"
    );

    for s in 0..shards {
        let dir = root.join(format!("shard-{s}"));
        let snap = dir.join("snapshot.bin");
        assert!(snap.exists(), "shard {s}: no snapshot file at {snap:?}");
        // The on-disk WAL must be a clean prefix of verbatim frame
        // records: scanning it back yields no torn tail to discard.
        let bytes = std::fs::read(dir.join("events.wal")).expect("WAL file readable");
        let (records, valid) = wal::scan(&bytes);
        assert_eq!(
            valid,
            bytes.len(),
            "shard {s}: WAL has a torn tail after clean shutdown-free run"
        );
        assert_eq!(
            records.len() as u64,
            cluster.shard_stats()[s].journal_len,
            "shard {s}: WAL records diverge from the in-memory journal"
        );
    }

    drop(cluster);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn failover_promotes_follower_and_stays_answer_identical() {
    // Shard 0 crashes at a seeded frame and every respawn is stillborn,
    // so the PR-8 recovery budget exhausts — but with follower replicas
    // attached the link must *fail over* instead of dying: a follower
    // rebuilds the shard from its own replicated log (snapshot install +
    // local suffix replay) and the run stays answer-identical to the
    // in-process twin, with zero planner takeovers.
    let net = grid(8, 8, 6);
    let cfg = base_cfg(66);
    for (shards, replicas) in [(2usize, 1u32), (2, 2), (4, 1), (4, 2)] {
        let ecfg = EngineConfig {
            num_shards: shards,
            algo: ShardAlgo::Gma,
            replication: ReplicationConfig::with_replicas(replicas),
            ..EngineConfig::default()
        };
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        let mut plans = vec![FaultPlan::default(); shards];
        plans[0] = FaultPlan {
            crash_after_frames: seeded_crash_frame(60 + replicas as u64, 0),
            respawn_dead: true,
            ..Default::default()
        };
        let mut cluster = ClusterEngine::loopback_durable(
            net.clone(),
            ecfg,
            &plans,
            RetryPolicy::default(),
            DurabilityConfig::in_memory(4),
        );
        let mut scenario = Scenario::new(net.clone(), cfg.clone());
        scenario.install_into(&mut inproc);
        scenario.install_into(&mut cluster);
        for t in 1..=12usize {
            let batch = scenario.tick();
            let ri = inproc.tick(&batch);
            let rc = cluster.tick(&batch);
            assert_answers_identical(
                &inproc,
                &cluster,
                Some((&ri, &rc)),
                &format!("S={shards}, R={replicas}, failover run, tick {t}"),
            );
        }
        let stats = cluster.stats();
        assert!(
            stats.failovers >= 1,
            "S={shards}, R={replicas}: the dead shard never failed over (stats: {stats:?})"
        );
        assert!(
            stats.replica_appends > 0 && stats.commit_lag_frames > 0,
            "S={shards}, R={replicas}: events were never replicated (stats: {stats:?})"
        );
        assert_eq!(
            stats.fenced_appends, 0,
            "S={shards}, R={replicas}: no stale leader exists in this run (stats: {stats:?})"
        );
        let engine = cluster.engine();
        assert_eq!(
            engine.takeovers(),
            0,
            "S={shards}, R={replicas}: failover must preempt planner takeover"
        );
        assert_eq!(
            engine.live_shards(),
            shards,
            "S={shards}, R={replicas}: the promoted follower keeps the shard alive"
        );
        assert!(
            engine.links()[0].epoch() >= 1,
            "S={shards}, R={replicas}: promotion must bump the leadership epoch"
        );
    }
}

#[test]
fn seeded_chaos_schedule_survives_duplication_partition_and_crash() {
    // One seeded chaos schedule per run: shard 0 crashes with stillborn
    // respawns (failover via the recovery path), shard 2's link turns
    // into a one-way partition (outbound black-hole — failover via
    // retransmit-budget exhaustion, the asymmetric failure no Closed
    // error ever signals), and the other shards see every Nth frame
    // duplicated. Answers must stay bit-identical throughout and both
    // failovers must land without a single planner takeover.
    let net = grid(7, 9, 7);
    let cfg = base_cfg(77);
    for seed in [71u64, 72] {
        let shards = 4usize;
        let ecfg = EngineConfig {
            num_shards: shards,
            algo: ShardAlgo::Ima,
            replication: ReplicationConfig::with_replicas(2),
            ..EngineConfig::default()
        };
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        let plans = vec![
            FaultPlan {
                crash_after_frames: seeded_crash_frame(seed, 0),
                respawn_dead: true,
                ..Default::default()
            },
            FaultPlan {
                duplicate_every: 3,
                ..Default::default()
            },
            FaultPlan {
                partition_after_frames: seeded_crash_frame(seed, 2),
                ..Default::default()
            },
            FaultPlan {
                duplicate_every: 5,
                ..Default::default()
            },
        ];
        // A short reply timeout keeps the partition's retransmit budget
        // cheap; correctness never depends on the timing.
        let policy = RetryPolicy {
            timeout: Duration::from_millis(100),
            max_retries: 3,
        };
        let mut cluster = ClusterEngine::loopback_durable(
            net.clone(),
            ecfg,
            &plans,
            policy,
            DurabilityConfig::in_memory(4),
        );
        let mut scenario = Scenario::new(net.clone(), cfg.clone());
        scenario.install_into(&mut inproc);
        scenario.install_into(&mut cluster);
        for t in 1..=12usize {
            let batch = scenario.tick();
            let ri = inproc.tick(&batch);
            let rc = cluster.tick(&batch);
            assert_answers_identical(
                &inproc,
                &cluster,
                Some((&ri, &rc)),
                &format!("chaos seed={seed}, tick {t}"),
            );
        }
        let stats = cluster.stats();
        assert!(
            stats.failovers >= 2,
            "seed={seed}: both the crashed and the partitioned shard must fail over \
             (stats: {stats:?})"
        );
        let engine = cluster.engine();
        assert_eq!(engine.takeovers(), 0, "seed={seed}: no takeover");
        assert_eq!(engine.live_shards(), shards, "seed={seed}: all shards live");
        assert!(
            engine.links()[0].epoch() >= 1 && engine.links()[2].epoch() >= 1,
            "seed={seed}: both failed-over links must carry bumped epochs"
        );
    }
}

#[test]
fn stale_leader_appends_are_provably_fenced() {
    // A real follower ([`ReplicaNode`], not a scripted ack loop) that has
    // seen epoch 7 must refuse an append from a leader still at epoch 2:
    // the append comes back as a typed `ClusterError::Fenced` carrying
    // the newer term, the fenced-append counter trips, and nothing
    // commits — a partitioned stale leader can never merge writes.
    let (mut co, peer) = loopback_pair(FaultPlan::default());
    let net = grid(4, 4, 8);
    let follower = std::thread::spawn(move || {
        ReplicaNode::new(peer, Box::new(move || Box::new(Gma::new(net))), false).run();
    });

    // The legitimate leader (epoch 7) replicates one event.
    let event = Frame {
        tag: MsgTag::TickEvents,
        seq: 0,
        epoch: 7,
        payload: vec![0xAB; 6],
    }
    .to_bytes();
    let append = Frame {
        tag: MsgTag::Append,
        seq: 0,
        epoch: 7,
        payload: event,
    }
    .to_bytes();
    co.send(&append).expect("append to live follower");
    let ack = co
        .recv_timeout(Duration::from_secs(2))
        .expect("follower acks the epoch-7 append");
    let ack = Frame::from_bytes(&ack).expect("ack decodes");
    assert_eq!((ack.tag, ack.epoch), (MsgTag::AppendAck, 7));

    // A stale leader (epoch 2) adopts the same follower link and tries
    // to append: provably rejected, never committed.
    let mut stale = ReplicatedLog::new(3, vec![Box::new(co) as Box<dyn Transport>], 1, 0, 2, None);
    let mut stats = TransportStats::default();
    let stale_event = Frame {
        tag: MsgTag::TickEvents,
        seq: 1,
        epoch: 2,
        payload: vec![0xCD; 6],
    }
    .to_bytes();
    let err = stale
        .append(1, &stale_event, &mut stats)
        .expect_err("the stale epoch must be fenced");
    assert_eq!(
        err,
        ClusterError::Fenced {
            shard: 3,
            epoch: 2,
            newer: 7
        }
    );
    assert_eq!(stats.fenced_appends, 1, "the fence must be observable");
    assert_eq!(stale.commit_seq(), None, "a fenced append never commits");

    drop(stale); // closes the link; the follower thread exits
    follower.join().expect("follower thread exits cleanly");
}

#[test]
fn takeover_hands_dead_shard_cells_to_survivors() {
    // Shard 0 crashes and every respawn is stillborn, so the recovery
    // budget exhausts and the link goes Down. With `takeover` enabled
    // the engine must adopt its cells via the migration planner and keep
    // answering — answer-identical to the in-process twin (work counters
    // legitimately diverge: survivors re-install the orphaned queries).
    let net = grid(8, 8, 4);
    let cfg = base_cfg(44);
    for (shards, crash_after_frames) in [(2usize, 16u32), (4, 12)] {
        let ecfg = EngineConfig {
            num_shards: shards,
            algo: ShardAlgo::Gma,
            takeover: true,
            ..EngineConfig::default()
        };
        let mut inproc = ShardedEngine::new(net.clone(), ecfg);
        let mut plans = vec![FaultPlan::default(); shards];
        plans[0] = FaultPlan {
            crash_after_frames,
            respawn_dead: true,
            ..Default::default()
        };
        let mut cluster = ClusterEngine::loopback_durable(
            net.clone(),
            ecfg,
            &plans,
            RetryPolicy::default(),
            DurabilityConfig::in_memory(4),
        );
        let mut scenario = Scenario::new(net.clone(), cfg.clone());
        scenario.install_into(&mut inproc);
        scenario.install_into(&mut cluster);
        for t in 1..=12usize {
            let batch = scenario.tick();
            inproc.tick(&batch);
            cluster.tick(&batch);
            assert_answers_identical(
                &inproc,
                &cluster,
                None,
                &format!("S={shards}, takeover run, tick {t}"),
            );
            cluster
                .engine()
                .validate_replication()
                .expect("replication invariants hold through takeover");
        }
        let engine = cluster.engine();
        assert!(
            engine.takeovers() >= 1,
            "S={shards}: the dead shard was never taken over"
        );
        assert!(
            engine.is_shard_dead(0),
            "S={shards}: shard 0 should be dead"
        );
        assert_eq!(
            engine.live_shards(),
            shards - 1,
            "S={shards}: exactly one shard should have died"
        );
        // The corpse's recovery failure surfaced as a typed error, not a
        // panic (the pre-durability code killed the whole coordinator
        // here).
        let err = cluster.engine().links()[0].last_error();
        assert!(
            err.is_some(),
            "S={shards}: dead link must report a ClusterError"
        );
    }
}

#[test]
fn takeover_survives_repeated_deaths_down_to_one_shard() {
    // Kill three of four shards at staggered points; the single survivor
    // ends up owning the whole network and must still answer correctly.
    let net = grid(6, 6, 5);
    let shards = 4usize;
    let ecfg = EngineConfig {
        num_shards: shards,
        algo: ShardAlgo::Gma,
        takeover: true,
        ..EngineConfig::default()
    };
    let mut inproc = ShardedEngine::new(net.clone(), ecfg);
    let plans: Vec<FaultPlan> = (0..shards)
        .map(|s| {
            if s == 3 {
                FaultPlan::default()
            } else {
                FaultPlan {
                    crash_after_frames: 8 + 4 * s as u32,
                    respawn_dead: true,
                    ..Default::default()
                }
            }
        })
        .collect();
    let mut cluster = ClusterEngine::loopback_durable(
        net.clone(),
        ecfg,
        &plans,
        RetryPolicy::default(),
        DurabilityConfig::default(),
    );
    let mut scenario = Scenario::new(net.clone(), base_cfg(55));
    scenario.install_into(&mut inproc);
    scenario.install_into(&mut cluster);
    for t in 1..=14usize {
        let batch = scenario.tick();
        inproc.tick(&batch);
        cluster.tick(&batch);
        assert_answers_identical(&inproc, &cluster, None, &format!("cascade, tick {t}"));
        cluster
            .engine()
            .validate_replication()
            .expect("replication invariants hold through cascading takeovers");
    }
    let engine = cluster.engine();
    assert_eq!(engine.takeovers(), 3, "three shards were scheduled to die");
    assert_eq!(engine.live_shards(), 1, "only shard 3 survives");
    assert!(!engine.is_shard_dead(3));
}
