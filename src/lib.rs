//! # rnn-monitor
//!
//! Umbrella crate for the reproduction of *"Continuous Nearest Neighbor
//! Monitoring in Road Networks"* (Mouratidis, Yiu, Papadias, Mamoulis,
//! VLDB 2006). Re-exports the three workspace layers:
//!
//! * [`roadnet`] — the road-network substrate (graph, network positions,
//!   Dijkstra, PMR quadtree, sequences, synthetic map generators),
//! * [`core`] — the monitoring algorithms (OVH baseline, IMA, GMA, and the
//!   CRNN extension) behind the [`core::ContinuousMonitor`] trait,
//! * [`workload`] — placement distributions, movement models, and the
//!   per-timestamp update-stream simulator of the paper's §6 evaluation,
//! * [`engine`] — the sharded multi-threaded monitoring engine that runs
//!   one monitor per network region with halo replication at the borders,
//! * [`cluster`] — the shard-per-process deployment of that engine: the
//!   same route/absorb loop over a length-prefixed RPC layer (loopback /
//!   Unix socket / TCP) with a fault-injectable transport.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the experiment harness that regenerates every figure
//! of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rnn_cluster as cluster;
pub use rnn_core as core;
pub use rnn_engine as engine;
pub use rnn_roadnet as roadnet;
pub use rnn_workload as workload;

pub use rnn_cluster::{ClusterEngine, FaultPlan, RetryPolicy};
pub use rnn_core::{ContinuousMonitor, Gma, Ima, Neighbor, Ovh, UpdateBatch};
pub use rnn_engine::{EngineConfig, ReplicationConfig, ShardAlgo, ShardedEngine};
pub use rnn_roadnet::{EdgeId, NetPoint, NodeId, ObjectId, QueryId, RoadNetwork};
pub use rnn_workload::{Scenario, ScenarioConfig};
