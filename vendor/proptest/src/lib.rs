//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! range and tuple strategies, [`any`], [`prop_oneof!`],
//! `prop::collection::vec`, and `prop_assert*` macros. Inputs are generated
//! from a deterministic RNG seeded by the test's module path and name, so
//! failures reproduce exactly across runs. No shrinking: on failure the
//! case index and generated arguments are printed instead. Swapping the
//! real crate back in is a one-line Cargo change.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test deterministic random source.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds the generator from the test's fully qualified name, so every
    /// test has its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    fn u64_below(&mut self, n: u64) -> u64 {
        self.rng.random_range(0..n.max(1))
    }

    fn unit_f64(&mut self) -> f64 {
        self.rng.random::<f64>()
    }
}

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous [`prop_oneof!`] arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A [`Strategy::prop_map`] adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed strategies (the [`prop_oneof!`] backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.u64_below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.u64_below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty => $bits:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                (rng.rng.random::<u64>() >> (64 - $bits)) as $t
            }
        }
    )*};
}

arbitrary_int!(u8 => 8, u16 => 16, u32 => 32, u64 => 64, usize => 64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng.random::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.u64_below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Prints the failing case (index + generated inputs) when a test panics,
/// standing in for proptest's shrinking-based failure report.
pub struct CaseGuard {
    /// Zero-based case index.
    pub case: u32,
    /// Rendered generated arguments.
    pub desc: String,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest(stub): failure in case #{} with inputs: {}",
                self.case, self.desc
            );
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    /// `prop::collection::vec` etc., as in upstream proptest's prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each function runs `cases` times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let guard = $crate::CaseGuard {
                        case,
                        desc: format!(
                            concat!("" $(, stringify!($arg), " = {:?}; ")*)
                            $(, $arg)*
                        ),
                    };
                    $body
                    drop(guard);
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Property-test assertion (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot(u8),
        Pair(u8, u8),
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_is_honoured(_x in 0u64..10) {
            // Body runs; the count is checked below via a separate counter
            // test because each case shares no state here.
        }
    }

    #[test]
    fn oneof_and_vec_generate() {
        let strat = prop::collection::vec(
            prop_oneof![
                any::<u8>().prop_map(Shape::Dot),
                (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Shape::Pair(a, b)),
            ],
            1..8,
        );
        let mut rng = crate::TestRng::for_test("oneof_and_vec_generate");
        let mut dots = 0;
        let mut pairs = 0;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 8);
            for s in v {
                match s {
                    Shape::Dot(_) => dots += 1,
                    Shape::Pair(..) => pairs += 1,
                }
            }
        }
        assert!(
            dots > 0 && pairs > 0,
            "union never took one arm: {dots}/{pairs}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let a: Vec<_> = {
            let mut rng = crate::TestRng::for_test("det");
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::TestRng::for_test("det");
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
