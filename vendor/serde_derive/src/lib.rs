//! Derive macros for the vendored `serde` stand-in.
//!
//! The traits in the stub `serde` crate are empty markers, so deriving
//! them only requires naming the type: the macros scan the item's tokens
//! for the `struct`/`enum` keyword and emit an empty impl. Generic types
//! are rejected with a clear error — no annotated type in this workspace
//! is generic, and supporting them would mean reimplementing real parsing
//! for no behavioral gain.

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Name of the type an item token stream defines, or a compile error if it
/// is generic (the stub impl could not name its parameters faithfully
/// without real generics parsing).
fn type_name(input: TokenStream, trait_name: &str) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            return Err(format!(
                "derive({trait_name}) stub: missing type name after `{kw}`"
            ));
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!(
                "derive({trait_name}) stub cannot handle generic type `{name}`; \
                 write the impl by hand or extend vendor/serde_derive"
            ));
        }
        return Ok(name.to_string());
    }
    Err(format!(
        "derive({trait_name}) stub: no struct/enum/union found"
    ))
}

fn emit(input: TokenStream, trait_name: &str, make: impl Fn(&str) -> String) -> TokenStream {
    match type_name(input, trait_name) {
        Ok(name) => make(&name),
        Err(msg) => format!("compile_error!({msg:?});"),
    }
    .parse()
    .expect("stub derive produced invalid tokens")
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "Serialize", |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "Deserialize", |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
