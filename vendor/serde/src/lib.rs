//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! keeps `#[derive(Serialize, Deserialize)]` annotations compiling: the
//! traits are empty markers and the derives emit empty impls. No actual
//! serialization happens anywhere in the workspace today (JSON artifacts
//! are written by hand); when a real serializer is needed, swapping the
//! upstream crates back in is a one-line Cargo change per crate and the
//! annotations are already in place.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
