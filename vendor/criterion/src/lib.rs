//! Offline stand-in for `criterion`.
//!
//! Provides the macros and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `iter_batched`) backed by a deliberately small timing loop: each
//! benchmark is warmed up once and then timed over `sample_size` batches,
//! reporting mean wall-clock time per iteration to stdout. No statistics,
//! plots, or HTML — the point is that `cargo bench` runs end-to-end and
//! prints honest numbers offline. Swapping the real crate back in is a
//! one-line Cargo change per crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub times routine calls
/// individually, so the hint is accepted and ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: u64,
    elapsed: &'a mut Duration,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            hint::black_box(routine());
        }
        *self.elapsed += start.elapsed();
        *self.iters += self.samples;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            *self.elapsed += start.elapsed();
            *self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the stub does a single warm-up call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub times a fixed iteration
    /// count instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        let _ = &self.criterion;
        self
    }

    /// Benches `f` with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut elapsed = Duration::ZERO;
    let mut iters = 0u64;
    // One untimed warm-up pass so first-touch allocations stay out of the
    // numbers, then the timed pass.
    {
        let mut warm = Duration::ZERO;
        let mut warm_iters = 0u64;
        f(&mut Bencher {
            samples: 1,
            elapsed: &mut warm,
            iters: &mut warm_iters,
        });
    }
    f(&mut Bencher {
        samples,
        elapsed: &mut elapsed,
        iters: &mut iters,
    });
    let per_iter = if iters == 0 {
        Duration::ZERO
    } else {
        elapsed / iters as u32
    };
    println!("bench: {label:<56} {per_iter:>12.2?}/iter  ({iters} iters)");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benches `f` outside any group.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&id.to_string(), 10, &mut f);
        self
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group
            .sample_size(5)
            .bench_function("count", |b| b.iter(|| calls += 1));
        // 1 warm-up + 5 timed.
        assert_eq!(calls, 6);
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut setups = 0u64;
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &two| {
                b.iter_batched(
                    || {
                        setups += 1;
                        two
                    },
                    |x| x * 2,
                    BatchSize::SmallInput,
                )
            });
        assert_eq!(setups, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
