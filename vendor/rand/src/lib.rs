//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of the rand 0.9 API the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`] and [`seq::SliceRandom::shuffle`] — backed by a
//! deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! The stream differs from upstream `StdRng` (which is ChaCha-based); all
//! in-repo consumers only rely on *determinism for a given seed*, never on
//! the specific stream, so the swap is behavior-preserving for this
//! workspace. Swapping the real crate back in is a one-line Cargo change.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the stand-in for rand's
/// `StandardUniform` distribution).
pub trait UniformSample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: the low bits of weaker generators are the worst.
        rng.next_u64() >> 63 == 1
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

/// Ranges a value can be drawn from (`rng.random_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire reduction,
/// bias negligible for the span sizes used here).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sampling range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of an inferred type (`bool`, `f64`, integers).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random-order operations on slices.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices (the only `SliceRandom` method used here).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic given the RNG state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.random_range(1..=4usize);
            assert!((1..=4).contains(&j));
            let f = rng.random_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4000..6000).contains(&trues), "{trues}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
