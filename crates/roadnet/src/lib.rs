//! # rnn-roadnet
//!
//! Road-network substrate for continuous k-NN monitoring (Mouratidis et al.,
//! VLDB 2006). This crate provides everything the monitoring algorithms in
//! `rnn-core` assume as given infrastructure:
//!
//! * [`graph::RoadNetwork`] — an in-memory graph of nodes and bidirectional
//!   weighted edges with planar coordinates (§3 of the paper),
//! * [`netpoint::NetPoint`] — positions *on* the network (a point along an
//!   edge), the coordinate system in which objects and queries live,
//! * [`dijkstra`] — network-expansion primitives (Dijkstra [5]) used both by
//!   the monitoring algorithms and by test oracles,
//! * [`quadtree::PmrQuadtree`] — the spatial index **SI** on edges (a PMR
//!   quadtree [9]) used to map raw coordinates to the containing edge,
//! * [`sequence`] — the decomposition of the network into *sequences* (paths
//!   between consecutive intersections) that the group monitoring algorithm
//!   (GMA, §5) is built on,
//! * [`generators`] — synthetic road-map generators standing in for the San
//!   Francisco / Oldenburg maps used in the paper's evaluation (§6).
//!
//! All identifiers are compact `u32` newtypes ([`ids`]) so that the hot data
//! structures stay small and hashing stays cheap ([`hash`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod dijkstra;
pub mod generators;
pub mod geometry;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod netpoint;
pub mod objindex;
pub mod partition;
pub mod quadtree;
pub mod sequence;
pub mod weights;
pub mod wire;

pub use arena::{SlotPool, SpanArena};
pub use dijkstra::DijkstraEngine;
pub use geometry::{Point2, Rect};
pub use graph::{Edge, NetworkData, RoadNetwork, RoadNetworkBuilder};
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{EdgeId, NodeId, ObjectId, QueryId, SeqId};
pub use netpoint::NetPoint;
pub use objindex::EdgeObjectIndex;
pub use partition::{NetworkPartition, ShardView};
pub use quadtree::PmrQuadtree;
pub use sequence::{Sequence, SequenceTable};
pub use weights::EdgeWeights;
pub use wire::{WireCodec, WireError, WireReader};
