//! Network expansion (Dijkstra's algorithm [5]) primitives.
//!
//! The monitoring algorithms expand the network around queries (§4.1),
//! interleaving object scanning with node settlement, so this module exposes
//! a *stepwise* engine ([`DijkstraEngine`]) rather than a monolithic
//! shortest-path function: callers seed sources, pop settled nodes one at a
//! time, and relax neighbours themselves.
//!
//! The engine keeps dense per-node scratch arrays that are invalidated in
//! O(1) between runs via epoch stamping — an expansion that touches `m`
//! nodes costs `O(m log m)`, not `O(|V|)`, even though the arrays are
//! network-sized. One engine per monitor amortises all allocations:
//! [`DijkstraEngine::reset_reuse`] restarts an expansion without releasing
//! any capacity, so every expansion of a tick after the first is
//! allocation-free (observable through [`DijkstraEngine::take_alloc_events`]).
//!
//! Heap entries are ordered by the **monotone-bits `u64` image** of the
//! `f64` distance: for the non-negative distances Dijkstra produces,
//! `f64::to_bits` preserves order exactly, so the heap compares plain
//! integers — no `partial_cmp().expect()` NaN branch per comparison on the
//! hottest loop in the system, and `(u64, u32)` entries stay 16 bytes.
//!
//! Convenience wrappers ([`DijkstraEngine::sssp`],
//! [`DijkstraEngine::dist_between_points`],
//! [`DijkstraEngine::path_between_nodes`]) serve the workload generator and
//! the test oracles.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId};
use crate::netpoint::NetPoint;
use crate::weights::EdgeWeights;

/// A min-heap entry: `(distance as monotone u64 bits, node)`, ordered by
/// distance then node id so that expansion order is fully deterministic.
///
/// Dijkstra distances are always finite-or-`+∞` and non-negative, and on
/// that range `f64::to_bits` is strictly monotone — so ordering the raw
/// bit patterns as integers reproduces the float order *exactly* (same
/// pops, same tie-breaks) while the comparison compiles to branch-free
/// integer code instead of a three-way float compare with a NaN `expect`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct HeapEntry {
    key: u64,
    node: NodeId,
}

impl HeapEntry {
    #[inline]
    fn new(dist: f64, node: NodeId) -> Self {
        debug_assert!(
            dist >= 0.0,
            "expansion distances must be non-negative, got {dist}"
        );
        // `+ 0.0` normalises a negative zero (which `clamp(0.0, 1.0)`
        // preserves, so a fraction of -0.0 can reach us through seed
        // arithmetic) to +0.0 — the raw bits of -0.0 would otherwise sort
        // *after* +∞ and starve that branch of the expansion.
        Self {
            key: (dist + 0.0).to_bits(),
            node,
        }
    }

    #[inline]
    fn dist(self) -> f64 {
        f64::from_bits(self.key)
    }
}

impl Ord for HeapEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the std max-heap pops the *smallest* distance first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-node expansion state, valid only for the current epoch.
#[derive(Clone, Copy)]
struct NodeState {
    dist: f64,
    parent: Option<NodeId>,
    /// Edge used to reach the node from `parent` (disambiguates parallel
    /// edges; `None` for sources or when seeded without edge info).
    parent_edge: Option<EdgeId>,
    settled: bool,
}

/// Reusable stepwise Dijkstra engine over a fixed-size node set.
pub struct DijkstraEngine {
    states: Vec<NodeState>,
    stamps: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
    /// Heap-capacity growth events (see [`Self::take_alloc_events`]).
    allocs: u64,
    /// Raw heap pops, including lazily discarded stale entries (see
    /// [`Self::take_expansion_steps`]).
    steps: u64,
}

impl DijkstraEngine {
    /// Creates an engine for networks with up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            states: vec![
                NodeState {
                    dist: f64::INFINITY,
                    parent: None,
                    parent_edge: None,
                    settled: false
                };
                num_nodes
            ],
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            stamps: vec![0; num_nodes],
            epoch: 0,
            // Pre-size the heap so typical expansions never grow it: one
            // entry per node covers everything but heavy stale-entry
            // pile-ups (growth beyond this is counted as an alloc event).
            heap: BinaryHeap::with_capacity(num_nodes),
            allocs: 0,
            steps: 0,
        }
    }

    /// Restarts the engine for a new expansion **without releasing any
    /// capacity**: the heap keeps its buffer and the dense per-node arrays
    /// are invalidated in O(1) by bumping the epoch stamp. This is the
    /// reuse mode that lets one engine serve *all* of a monitor's
    /// expansions in a tick allocation-free — the only allocations are
    /// high-water-mark heap growth, counted in [`Self::take_alloc_events`].
    pub fn reset_reuse(&mut self) {
        self.heap.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: physically reset the stamps once every 2^32
                // runs so stale entries can never alias.
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Starts a fresh expansion, invalidating all previous state in O(1).
    /// Alias of [`Self::reset_reuse`], kept as the conventional name.
    #[inline]
    pub fn begin(&mut self) {
        self.reset_reuse();
    }

    /// Heap-capacity growth events since the last take. Zero across a tick
    /// proves the tick's expansions ran entirely in reused capacity.
    pub fn take_alloc_events(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// Raw expansion steps (heap pops, including lazily discarded stale
    /// entries) since the last take — the machine-independent measure of
    /// heap traffic.
    pub fn take_expansion_steps(&mut self) -> u64 {
        std::mem::take(&mut self.steps)
    }

    /// The running expansion-step counter *without* draining it. Callers
    /// that attribute work to individual searches snapshot this before and
    /// after; the periodic [`Self::take_expansion_steps`] harvest is
    /// unaffected.
    #[inline]
    pub fn expansion_steps(&self) -> u64 {
        self.steps
    }

    /// Pushes a heap entry, counting capacity growth as an alloc event.
    /// Growth reserves 4× so the high-water mark is passed (and paid for)
    /// once, not re-approached every few ticks.
    #[inline]
    fn heap_push(&mut self, entry: HeapEntry) {
        if self.heap.len() == self.heap.capacity() {
            self.allocs += 1;
            self.heap
                .reserve(self.heap.capacity().saturating_mul(3).max(64));
        }
        self.heap.push(entry);
    }

    #[inline]
    fn state(&self, n: NodeId) -> Option<&NodeState> {
        (self.stamps[n.index()] == self.epoch).then(|| &self.states[n.index()])
    }

    #[inline]
    fn state_mut(&mut self, n: NodeId) -> &mut NodeState {
        let i = n.index();
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.states[i] = NodeState {
                dist: f64::INFINITY,
                parent: None,
                parent_edge: None,
                settled: false,
            };
        }
        &mut self.states[i]
    }

    /// Seeds `node` as a source at distance `dist` (with optional
    /// predecessor, recorded in the shortest-path tree). Keeps the better
    /// distance if the node was already seeded or relaxed.
    pub fn seed(&mut self, node: NodeId, dist: f64, parent: Option<NodeId>) {
        self.seed_via(node, dist, parent, None);
    }

    /// Like [`Self::seed`], also recording the edge used to reach the node
    /// (so shortest-path trees can disambiguate parallel edges).
    pub fn seed_via(
        &mut self,
        node: NodeId,
        dist: f64,
        parent: Option<NodeId>,
        parent_edge: Option<EdgeId>,
    ) {
        let st = self.state_mut(node);
        if dist < st.dist && !st.settled {
            st.dist = dist;
            st.parent = parent;
            st.parent_edge = parent_edge;
            self.heap_push(HeapEntry::new(dist, node));
        }
    }

    /// Marks `node` as already settled at `dist` without putting it on the
    /// heap. Used to pre-load the *valid part of an expansion tree* when
    /// re-expanding after updates (§4.2–4.5): pre-settled nodes are never
    /// re-visited and act as interior sources.
    pub fn presettle(&mut self, node: NodeId, dist: f64) {
        let st = self.state_mut(node);
        st.dist = dist;
        st.parent = None;
        st.parent_edge = None;
        st.settled = true;
    }

    /// Pops the next node to settle, or `None` when the frontier is empty.
    /// Returns `(node, distance)`. Lazily discards stale heap entries.
    pub fn pop_settle(&mut self) -> Option<(NodeId, f64)> {
        while let Some(entry) = self.heap.pop() {
            self.steps += 1;
            let (dist, node) = (entry.dist(), entry.node);
            let st = self.state_mut(node);
            if st.settled || dist > st.dist {
                continue;
            }
            st.settled = true;
            return Some((node, dist));
        }
        None
    }

    /// The distance of the next candidate on the heap without settling it.
    pub fn peek_dist(&mut self) -> Option<f64> {
        while let Some(&entry) = self.heap.peek() {
            let (dist, node) = (entry.dist(), entry.node);
            let settled_or_stale = match self.state(node) {
                Some(st) => st.settled || dist > st.dist,
                None => true,
            };
            if settled_or_stale {
                self.heap.pop();
                self.steps += 1;
            } else {
                return Some(dist);
            }
        }
        None
    }

    /// Relaxes `node` through `via` at total distance `dist`.
    /// Returns `true` if this improved the node's tentative distance.
    pub fn relax(&mut self, node: NodeId, via: NodeId, dist: f64) -> bool {
        self.relax_via(node, via, None, dist)
    }

    /// Like [`Self::relax`], also recording the connecting edge.
    pub fn relax_via(
        &mut self,
        node: NodeId,
        via: NodeId,
        edge: Option<EdgeId>,
        dist: f64,
    ) -> bool {
        let st = self.state_mut(node);
        if !st.settled && dist < st.dist {
            st.dist = dist;
            st.parent = Some(via);
            st.parent_edge = edge;
            self.heap_push(HeapEntry::new(dist, node));
            true
        } else {
            false
        }
    }

    /// The settled or tentative distance of `node` in the current epoch.
    #[inline]
    pub fn dist_of(&self, node: NodeId) -> Option<f64> {
        self.state(node).map(|s| s.dist)
    }

    /// Whether `node` has been settled in the current epoch.
    #[inline]
    pub fn is_settled(&self, node: NodeId) -> bool {
        self.state(node).is_some_and(|s| s.settled)
    }

    /// The recorded shortest-path predecessor of `node`.
    #[inline]
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        self.state(node).and_then(|s| s.parent)
    }

    /// The recorded `(predecessor, connecting edge)` link of `node`, when
    /// the expansion used the `*_via` methods.
    #[inline]
    pub fn parent_link_of(&self, node: NodeId) -> Option<(NodeId, EdgeId)> {
        self.state(node)
            .and_then(|s| Some((s.parent?, s.parent_edge?)))
    }

    /// Full single-source shortest paths from `source`, optionally bounded
    /// by `radius` (nodes farther than `radius` are not settled).
    ///
    /// Returns the settled `(node, dist)` pairs in settlement order.
    pub fn sssp(
        &mut self,
        net: &RoadNetwork,
        weights: &EdgeWeights,
        source: NodeId,
        radius: Option<f64>,
    ) -> Vec<(NodeId, f64)> {
        self.begin();
        self.seed(source, 0.0, None);
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut out = Vec::new();
        while let Some((n, d)) = self.pop_settle() {
            if radius.is_some_and(|r| d > r) {
                break;
            }
            out.push((n, d));
            for &(e, m) in net.adjacent(n) {
                self.relax(m, n, d + weights.get(e));
            }
        }
        out
    }

    /// Network distance between two node ids (∞ if disconnected).
    pub fn dist_between_nodes(
        &mut self,
        net: &RoadNetwork,
        weights: &EdgeWeights,
        from: NodeId,
        to: NodeId,
    ) -> f64 {
        if from == to {
            return 0.0;
        }
        self.begin();
        self.seed(from, 0.0, None);
        while let Some((n, d)) = self.pop_settle() {
            if n == to {
                return d;
            }
            for &(e, m) in net.adjacent(n) {
                self.relax(m, n, d + weights.get(e));
            }
        }
        f64::INFINITY
    }

    /// Network distance between two arbitrary points (§3: the length of the
    /// shortest path connecting them). Handles the same-edge direct path.
    pub fn dist_between_points(
        &mut self,
        net: &RoadNetwork,
        weights: &EdgeWeights,
        a: NetPoint,
        b: NetPoint,
    ) -> f64 {
        let mut best = if a.edge == b.edge {
            a.along_edge_dist(&b, weights)
        } else {
            f64::INFINITY
        };
        let ea = net.edge(a.edge);
        let eb = net.edge(b.edge);
        self.begin();
        self.seed(ea.start, a.dist_to_start(weights), None);
        self.seed(ea.end, a.dist_to_end(weights), None);
        while let Some((n, d)) = self.pop_settle() {
            if d >= best {
                break;
            }
            if eb.touches(n) {
                best = best.min(d + b.dist_to_endpoint(net, weights, n));
            }
            for &(e, m) in net.adjacent(n) {
                self.relax(m, n, d + weights.get(e));
            }
        }
        best
    }

    /// Shortest node path `from → to` (inclusive of both), or `None` if
    /// disconnected. Used by the route-following movement generator.
    pub fn path_between_nodes(
        &mut self,
        net: &RoadNetwork,
        weights: &EdgeWeights,
        from: NodeId,
        to: NodeId,
    ) -> Option<Vec<NodeId>> {
        self.begin();
        self.seed(from, 0.0, None);
        let mut found = false;
        while let Some((n, d)) = self.pop_settle() {
            if n == to {
                found = true;
                break;
            }
            for &(e, m) in net.adjacent(n) {
                self.relax(m, n, d + weights.get(e));
            }
        }
        if !found {
            return None;
        }
        // lint: allow(hot-path-alloc): full-path extraction serves the workload generator and validators, never the monitoring tick
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = self.parent_of(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&from));
        Some(path)
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<NodeState>()
            + self.stamps.capacity() * std::mem::size_of::<u32>()
            + self.heap.capacity() * std::mem::size_of::<HeapEntry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    /// 2x2 grid with unit spacing:
    /// ```text
    /// 2 - 3
    /// |   |
    /// 0 - 1
    /// ```
    fn square() -> (RoadNetwork, EdgeWeights) {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        let n2 = b.add_node(0.0, 1.0);
        let n3 = b.add_node(1.0, 1.0);
        b.add_edge_euclidean(n0, n1); // e0
        b.add_edge_euclidean(n0, n2); // e1
        b.add_edge_euclidean(n1, n3); // e2
        b.add_edge_euclidean(n2, n3); // e3
        let net = b.build().unwrap();
        let w = EdgeWeights::from_base(&net);
        (net, w)
    }

    #[test]
    fn sssp_distances() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let settled = eng.sssp(&net, &w, NodeId(0), None);
        assert_eq!(settled.len(), 4);
        assert_eq!(eng.dist_of(NodeId(0)), Some(0.0));
        assert_eq!(eng.dist_of(NodeId(1)), Some(1.0));
        assert_eq!(eng.dist_of(NodeId(2)), Some(1.0));
        assert_eq!(eng.dist_of(NodeId(3)), Some(2.0));
    }

    #[test]
    fn sssp_respects_radius() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let settled = eng.sssp(&net, &w, NodeId(0), Some(1.5));
        let ids: Vec<_> = settled.iter().map(|&(n, _)| n).collect();
        assert!(ids.contains(&NodeId(0)) && ids.contains(&NodeId(1)) && ids.contains(&NodeId(2)));
        assert!(!ids.contains(&NodeId(3)));
    }

    #[test]
    fn weight_changes_affect_distances() {
        let (net, mut w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        assert_eq!(eng.dist_between_nodes(&net, &w, NodeId(0), NodeId(3)), 2.0);
        // Make the top edge expensive: path must go 0-1-3.
        w.set(crate::ids::EdgeId(3), 10.0);
        w.set(crate::ids::EdgeId(1), 0.25);
        assert_eq!(eng.dist_between_nodes(&net, &w, NodeId(0), NodeId(3)), 2.0);
        w.set(crate::ids::EdgeId(2), 0.5);
        assert_eq!(eng.dist_between_nodes(&net, &w, NodeId(0), NodeId(3)), 1.5);
    }

    #[test]
    fn point_to_point_same_edge() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let a = NetPoint::new(crate::ids::EdgeId(0), 0.2);
        let b = NetPoint::new(crate::ids::EdgeId(0), 0.9);
        assert!((eng.dist_between_points(&net, &w, a, b) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn point_to_point_same_edge_detour_can_win() {
        // If the shared edge is very heavy, going around may be shorter.
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        b.add_edge(n0, n1, 100.0); // e0 heavy
        b.add_edge(n0, n1, 1.0); // e1 parallel light
        let net = b.build().unwrap();
        let w = EdgeWeights::from_base(&net);
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let a = NetPoint::new(crate::ids::EdgeId(0), 0.0);
        let bpt = NetPoint::new(crate::ids::EdgeId(0), 1.0);
        // Direct along e0: 100. Around through e1: 1.
        assert!((eng.dist_between_points(&net, &w, a, bpt) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_to_point_across_edges() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        // Midpoint of bottom edge to midpoint of top edge:
        // 0.5 to a corner + 1 up + 0.5 across = 2.0.
        let a = NetPoint::new(crate::ids::EdgeId(0), 0.5);
        let b = NetPoint::new(crate::ids::EdgeId(3), 0.5);
        assert!((eng.dist_between_points(&net, &w, a, b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_distance_is_infinite() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        let n2 = b.add_node(5.0, 0.0);
        let n3 = b.add_node(6.0, 0.0);
        b.add_edge_euclidean(n0, n1);
        b.add_edge_euclidean(n2, n3);
        let net = b.build().unwrap();
        let w = EdgeWeights::from_base(&net);
        let mut eng = DijkstraEngine::new(net.num_nodes());
        assert_eq!(
            eng.dist_between_nodes(&net, &w, NodeId(0), NodeId(3)),
            f64::INFINITY
        );
        assert!(eng
            .path_between_nodes(&net, &w, NodeId(0), NodeId(3))
            .is_none());
    }

    #[test]
    fn path_extraction() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let path = eng
            .path_between_nodes(&net, &w, NodeId(0), NodeId(3))
            .unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], NodeId(0));
        assert_eq!(path[2], NodeId(3));
        // Middle hop is either corner; both are tied at distance 1 and the
        // deterministic tie-break picks the smaller node id.
        assert_eq!(path[1], NodeId(1));
    }

    #[test]
    fn engine_reuse_across_epochs() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        eng.sssp(&net, &w, NodeId(0), None);
        let d3_first = eng.dist_of(NodeId(3)).unwrap();
        eng.sssp(&net, &w, NodeId(3), None);
        // Old epoch state must not leak: distances now relative to node 3.
        assert_eq!(eng.dist_of(NodeId(3)), Some(0.0));
        assert_eq!(eng.dist_of(NodeId(0)), Some(d3_first));
    }

    #[test]
    fn presettled_nodes_act_as_sources() {
        let (net, _w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        eng.begin();
        // Pretend nodes 0 and 1 are a valid expansion-tree remnant.
        eng.presettle(NodeId(0), 0.0);
        eng.presettle(NodeId(1), 1.0);
        // Seed the frontier from them manually.
        eng.seed(NodeId(2), 1.0, Some(NodeId(0)));
        eng.seed(NodeId(3), 2.0, Some(NodeId(1)));
        let (n, d) = eng.pop_settle().unwrap();
        assert_eq!((n, d), (NodeId(2), 1.0));
        let (n, d) = eng.pop_settle().unwrap();
        assert_eq!((n, d), (NodeId(3), 2.0));
        assert!(eng.pop_settle().is_none());
        assert!(eng.is_settled(NodeId(0)));
    }

    #[test]
    fn peek_skips_stale_entries() {
        let (net, _w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        eng.begin();
        eng.seed(NodeId(3), 5.0, None);
        eng.seed(NodeId(3), 2.0, None); // better; first entry now stale
        assert_eq!(eng.peek_dist(), Some(2.0));
        let _ = net;
    }

    #[test]
    fn reuse_is_allocation_free_and_counts_steps() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        eng.sssp(&net, &w, NodeId(0), None);
        eng.take_alloc_events();
        assert!(eng.take_expansion_steps() > 0);
        // Re-running the same expansion reuses all capacity.
        for _ in 0..5 {
            eng.reset_reuse();
            eng.seed(NodeId(0), 0.0, None);
            while let Some((n, d)) = eng.pop_settle() {
                for &(e, m) in net.adjacent(n) {
                    eng.relax(m, n, d + w.get(e));
                }
            }
        }
        assert_eq!(eng.take_alloc_events(), 0, "reuse must not grow the heap");
        assert!(eng.take_expansion_steps() >= 4 * 5);
    }

    #[test]
    fn heap_key_order_matches_float_order() {
        // The monotone-bits claim: for non-negative floats, to_bits order
        // equals numeric order (including +∞ as the maximum).
        let samples = [
            0.0,
            1e-300,
            0.5,
            1.0,
            1.0 + f64::EPSILON,
            3.75,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
        // Negative zero must key identically to +0.0 (its raw bits would
        // sort after +∞).
        let nz = HeapEntry::new(-0.0, NodeId(1));
        let pz = HeapEntry::new(0.0, NodeId(1));
        assert_eq!(nz.key, pz.key);
        assert_eq!(nz.dist().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn negative_zero_seed_settles_first() {
        // A seed at -0.0 (reachable via a clamped -0.0 fraction) must pop
        // before farther nodes, exactly like a +0.0 seed.
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        eng.begin();
        eng.seed(NodeId(2), -0.0, None);
        eng.seed(NodeId(1), 0.25, None);
        let (n, d) = eng.pop_settle().unwrap();
        assert_eq!(n, NodeId(2));
        assert_eq!(d, 0.0);
        let _ = (net, w);
    }

    #[test]
    fn deterministic_tie_break() {
        let (net, w) = square();
        let mut eng = DijkstraEngine::new(net.num_nodes());
        // Nodes 1 and 2 are both at distance 1 from node 0; node 1 must
        // always settle first.
        for _ in 0..10 {
            eng.begin();
            eng.seed(NodeId(0), 0.0, None);
            let mut order = Vec::new();
            while let Some((n, d)) = eng.pop_settle() {
                order.push(n);
                for &(e, m) in net.adjacent(n) {
                    eng.relax(m, n, d + w.get(e));
                }
            }
            assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        }
    }
}
