//! Positions *on* the network.
//!
//! Objects and queries live on edges (§3). A [`NetPoint`] pins an entity to
//! an edge at a normalised fraction `t ∈ [0, 1]` of the way from
//! `edge.start` to `edge.end`. Distances *along* the edge scale with the
//! edge's **current weight**: an entity at fraction `t` of edge `e` is at
//! weighted distance `t · w(e)` from `e.start` — exactly the paper's
//! convention ("en-heap the endpoints of e with keys equal to the
//! corresponding fraction of e.w", Fig. 2).

use serde::{Deserialize, Serialize};

use crate::geometry::Point2;
use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId};
use crate::weights::EdgeWeights;

/// A position on the road network: a point along an edge.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetPoint {
    /// The edge the point lies on.
    pub edge: EdgeId,
    /// Normalised position along the edge: 0 at `edge.start`, 1 at
    /// `edge.end`.
    pub frac: f64,
}

impl NetPoint {
    /// Creates a network point, clamping the fraction into `[0, 1]`.
    #[inline]
    pub fn new(edge: EdgeId, frac: f64) -> Self {
        Self {
            edge,
            frac: frac.clamp(0.0, 1.0),
        }
    }

    /// A point sitting exactly on `node`, expressed on one of its incident
    /// edges. Returns `None` for isolated nodes.
    pub fn at_node(net: &RoadNetwork, node: NodeId) -> Option<Self> {
        let &(e, _) = net.adjacent(node).first()?;
        let edge = net.edge(e);
        let frac = if edge.start == node { 0.0 } else { 1.0 };
        Some(Self { edge: e, frac })
    }

    /// Weighted distance from this point to `edge.start` under the current
    /// weights.
    #[inline]
    pub fn dist_to_start(&self, weights: &EdgeWeights) -> f64 {
        self.frac * weights.get(self.edge)
    }

    /// Weighted distance from this point to `edge.end` under the current
    /// weights.
    #[inline]
    pub fn dist_to_end(&self, weights: &EdgeWeights) -> f64 {
        (1.0 - self.frac) * weights.get(self.edge)
    }

    /// Weighted distance from this point to the endpoint `n` of its edge.
    ///
    /// # Panics
    /// Panics (in debug builds) if `n` is not an endpoint of the edge.
    #[inline]
    pub fn dist_to_endpoint(&self, net: &RoadNetwork, weights: &EdgeWeights, n: NodeId) -> f64 {
        let edge = net.edge(self.edge);
        if n == edge.start {
            self.dist_to_start(weights)
        } else {
            debug_assert_eq!(n, edge.end, "node is not an endpoint");
            self.dist_to_end(weights)
        }
    }

    /// If the point coincides (within `eps` of the fraction) with one of the
    /// edge's endpoints, returns that node.
    pub fn as_node(&self, net: &RoadNetwork, eps: f64) -> Option<NodeId> {
        let edge = net.edge(self.edge);
        if self.frac <= eps {
            Some(edge.start)
        } else if self.frac >= 1.0 - eps {
            Some(edge.end)
        } else {
            None
        }
    }

    /// Planar coordinates of the point (for the spatial index and display).
    pub fn coordinates(&self, net: &RoadNetwork) -> Point2 {
        let edge = net.edge(self.edge);
        net.node_pos(edge.start)
            .lerp(net.node_pos(edge.end), self.frac)
    }

    /// Weighted distance between two points **on the same edge** (the direct
    /// path along the edge, not necessarily the network shortest path).
    ///
    /// # Panics
    /// Panics (in debug builds) if the points are on different edges.
    #[inline]
    pub fn along_edge_dist(&self, other: &NetPoint, weights: &EdgeWeights) -> f64 {
        debug_assert_eq!(self.edge, other.edge, "points must share an edge");
        (self.frac - other.frac).abs() * weights.get(self.edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn triangle() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(4.0, 0.0);
        let n2 = b.add_node(0.0, 3.0);
        b.add_edge_euclidean(n0, n1); // e0, w=4
        b.add_edge_euclidean(n1, n2); // e1, w=5
        b.add_edge_euclidean(n2, n0); // e2, w=3
        b.build().unwrap()
    }

    #[test]
    fn clamping() {
        let p = NetPoint::new(EdgeId(0), 1.5);
        assert_eq!(p.frac, 1.0);
        let p = NetPoint::new(EdgeId(0), -0.5);
        assert_eq!(p.frac, 0.0);
    }

    #[test]
    fn distances_scale_with_weight() {
        let net = triangle();
        let mut w = EdgeWeights::from_base(&net);
        let p = NetPoint::new(EdgeId(0), 0.25);
        assert!((p.dist_to_start(&w) - 1.0).abs() < 1e-12);
        assert!((p.dist_to_end(&w) - 3.0).abs() < 1e-12);
        // Doubling the weight doubles both distances; the fraction is fixed.
        w.set(EdgeId(0), 8.0);
        assert!((p.dist_to_start(&w) - 2.0).abs() < 1e-12);
        assert!((p.dist_to_end(&w) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dist_to_named_endpoint() {
        let net = triangle();
        let w = EdgeWeights::from_base(&net);
        let p = NetPoint::new(EdgeId(1), 0.2); // edge n1->n2, w=5
        assert!((p.dist_to_endpoint(&net, &w, NodeId(1)) - 1.0).abs() < 1e-12);
        assert!((p.dist_to_endpoint(&net, &w, NodeId(2)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn node_snapping() {
        let net = triangle();
        let p = NetPoint::new(EdgeId(0), 0.0);
        assert_eq!(p.as_node(&net, 1e-9), Some(NodeId(0)));
        let p = NetPoint::new(EdgeId(0), 1.0);
        assert_eq!(p.as_node(&net, 1e-9), Some(NodeId(1)));
        let p = NetPoint::new(EdgeId(0), 0.5);
        assert_eq!(p.as_node(&net, 1e-9), None);
    }

    #[test]
    fn at_node_round_trips() {
        let net = triangle();
        for n in net.node_ids() {
            let p = NetPoint::at_node(&net, n).unwrap();
            assert_eq!(p.as_node(&net, 1e-9), Some(n));
            assert!(p.coordinates(&net).dist(net.node_pos(n)) < 1e-12);
        }
    }

    #[test]
    fn coordinates_interpolate() {
        let net = triangle();
        let p = NetPoint::new(EdgeId(0), 0.5);
        assert_eq!(p.coordinates(&net), Point2::new(2.0, 0.0));
    }

    #[test]
    fn along_edge_distance() {
        let net = triangle();
        let w = EdgeWeights::from_base(&net);
        let a = NetPoint::new(EdgeId(0), 0.25);
        let b = NetPoint::new(EdgeId(0), 0.75);
        assert!((a.along_edge_dist(&b, &w) - 2.0).abs() < 1e-12);
        assert!((b.along_edge_dist(&a, &w) - 2.0).abs() < 1e-12);
    }
}
