//! Byte-level wire codecs for the cluster RPC layer.
//!
//! The sharded engine's worker hand-off is already a delta protocol over
//! dense, offset-addressed values (`u32` ids, `f64` distances, flat event
//! slices). This module gives those values an explicit little-endian byte
//! form so they can cross a process boundary: fixed-width primitive
//! put/get helpers, a bounds-checked [`WireReader`], an FNV-1a frame
//! [`checksum`], and the [`WireCodec`] trait the higher layers (core event
//! types, engine protocol messages, cluster frames) implement by hand —
//! no serde, no reflection, near-verbatim dumps of the in-memory layout.
//!
//! Floats travel as their raw IEEE-754 bits ([`f64::to_bits`]), so
//! round-trips are bit-identical — including `INFINITY`, which the
//! monitors use for underfull `kNN_dist` values.

use crate::ids::{EdgeId, NodeId, ObjectId, QueryId};
use crate::netpoint::NetPoint;

/// Why a decode failed. Decoders never panic on hostile bytes: a short
/// buffer is [`WireError::Truncated`], an out-of-range discriminant is
/// [`WireError::Invalid`], and a frame whose checksum does not match its
/// contents is [`WireError::Checksum`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// A discriminant or length field held an impossible value.
    Invalid(&'static str),
    /// The frame checksum did not match the frame contents.
    Checksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire frame truncated"),
            WireError::Invalid(what) => write!(f, "invalid wire value: {what}"),
            WireError::Checksum => write!(f, "wire frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over `bytes`, folded to 32 bits. Cheap, endian-stable, and
/// sensitive to single-byte flips anywhere in the frame — exactly what the
/// per-frame corruption check needs (this is an integrity check against
/// transport bugs and injected faults, not a cryptographic MAC).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash ^ (hash >> 32)) as u32
}

/// Appends a `u8`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw IEEE-754 bits (bit-identical round-trip).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A bounds-checked cursor over a received byte buffer. Every accessor
/// returns [`WireError::Truncated`] instead of panicking when the buffer
/// runs out, so corrupt length fields surface as decode errors.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.bytes(1)?.first().copied().ok_or(WireError::Truncated)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self
            .bytes(2)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self
            .bytes(4)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self
            .bytes(8)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// A value with a hand-rolled byte form. Encoding appends to a caller
/// buffer (one allocation per frame, not per value); decoding reads from a
/// shared [`WireReader`] and must consume exactly what encoding produced.
pub trait WireCodec: Sized {
    /// Appends the wire form of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Parses one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a slice as a `u32` count followed by each element.
pub fn encode_seq<T: WireCodec>(items: &[T], out: &mut Vec<u8>) {
    put_u32(out, items.len() as u32);
    for it in items {
        it.encode(out);
    }
}

/// Decodes a `u32`-counted sequence. The count is sanity-bounded by the
/// bytes remaining so a corrupt length cannot trigger a huge allocation.
pub fn decode_seq<T: WireCodec>(r: &mut WireReader<'_>) -> Result<Vec<T>, WireError> {
    let n = r.u32()? as usize;
    // Every element costs at least one byte on the wire; a count beyond
    // the remaining bytes is corruption, not a large message.
    if n > r.remaining() {
        return Err(WireError::Invalid("sequence count exceeds frame size"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(T::decode(r)?);
    }
    Ok(v)
}

macro_rules! id_codec {
    ($($t:ty),*) => {$(
        impl WireCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                put_u32(out, self.0);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(Self(r.u32()?))
            }
        }
    )*};
}

id_codec!(EdgeId, NodeId, ObjectId, QueryId);

impl WireCodec for NetPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.edge.encode(out);
        put_f64(out, self.frac);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let edge = EdgeId::decode(r)?;
        let frac = r.f64()?;
        if !(0.0..=1.0).contains(&frac) {
            return Err(WireError::Invalid("NetPoint fraction outside [0, 1]"));
        }
        Ok(NetPoint { edge, frac })
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, f64::INFINITY);
        put_f64(&mut buf, -0.0);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let buf = [1u8, 2, 3];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // The failed read consumed nothing usable; u8 still works.
        assert_eq!(r.u8().unwrap(), 3);
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let frame = b"tick-events:shard-3:seq-42".to_vec();
        let base = checksum(&frame);
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn sequences_round_trip_and_reject_corrupt_counts() {
        let ids = vec![EdgeId(0), EdgeId(42), EdgeId(u32::MAX)];
        let mut buf = Vec::new();
        encode_seq(&ids, &mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(decode_seq::<EdgeId>(&mut r).unwrap(), ids);

        // A count claiming more elements than bytes remain is rejected
        // before any allocation happens.
        let mut bad = Vec::new();
        put_u32(&mut bad, u32::MAX);
        let mut r = WireReader::new(&bad);
        assert!(matches!(
            decode_seq::<EdgeId>(&mut r),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn netpoint_rejects_out_of_range_fraction() {
        let mut buf = Vec::new();
        EdgeId(5).encode(&mut buf);
        put_f64(&mut buf, 1.5);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            NetPoint::decode(&mut r),
            Err(WireError::Invalid(_))
        ));
    }
}
