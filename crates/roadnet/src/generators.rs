//! Synthetic road-map generators.
//!
//! The paper evaluates on sub-networks of the San Francisco road map and on
//! the Oldenburg map [2]. Those datasets are not redistributable here, so
//! this module generates synthetic maps with the same structural statistics
//! (see DESIGN.md, substitution #1):
//!
//! * a perturbed **grid city** ([`grid_city`]) — blocks with jittered
//!   intersections, randomly pruned streets (so degrees vary between 1 and
//!   4) and subdivided segments (so long degree-2 chains appear, which is
//!   what makes GMA's sequences non-trivial),
//! * size presets matching the paper's experiments:
//!   [`san_francisco_like`] (sub-networks of 1K–100K edges, Figs. 13–18) and
//!   [`oldenburg_like`] (6105 nodes / 7035 edges, Fig. 19).
//!
//! All generators are fully deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{RoadNetwork, RoadNetworkBuilder};
use crate::ids::NodeId;

/// Configuration for [`grid_city`].
#[derive(Clone, Debug)]
pub struct GridCityConfig {
    /// Grid columns (intersections per row).
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Distance between adjacent intersections.
    pub spacing: f64,
    /// Positional jitter as a fraction of `spacing` (0 = perfect grid).
    pub jitter: f64,
    /// Fraction of grid streets removed (creates dead-ends and detours).
    pub prune: f64,
    /// Each street is split into `1..=max_subdivision` segments (uniformly
    /// chosen), adding degree-2 chain nodes.
    pub max_subdivision: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridCityConfig {
    fn default() -> Self {
        Self {
            nx: 16,
            ny: 16,
            spacing: 100.0,
            jitter: 0.25,
            prune: 0.25,
            max_subdivision: 3,
            seed: 0,
        }
    }
}

/// Generates a perturbed-grid city network. The result is connected (the
/// largest connected component is kept and node ids are re-densified) and
/// edge base weights equal the Euclidean endpoint distances (§6).
pub fn grid_city(cfg: &GridCityConfig) -> RoadNetwork {
    assert!(cfg.nx >= 2 && cfg.ny >= 2, "grid must be at least 2x2");
    assert!((0.0..1.0).contains(&cfg.prune), "prune must be in [0, 1)");
    assert!(cfg.max_subdivision >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Intersection positions with jitter.
    let mut pos = Vec::with_capacity(cfg.nx * cfg.ny);
    for y in 0..cfg.ny {
        for x in 0..cfg.nx {
            let jx = rng.random_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
            let jy = rng.random_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
            pos.push((x as f64 * cfg.spacing + jx, y as f64 * cfg.spacing + jy));
        }
    }
    let idx = |x: usize, y: usize| y * cfg.nx + x;

    // Candidate streets (right and up neighbours), randomly pruned.
    let mut streets: Vec<(usize, usize)> = Vec::new();
    for y in 0..cfg.ny {
        for x in 0..cfg.nx {
            if x + 1 < cfg.nx && rng.random::<f64>() >= cfg.prune {
                streets.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < cfg.ny && rng.random::<f64>() >= cfg.prune {
                streets.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }

    // Largest connected component over the street graph.
    let keep = largest_component(pos.len(), &streets);

    // Build, subdividing kept streets into chains.
    let mut b = RoadNetworkBuilder::new();
    let mut remap: Vec<Option<NodeId>> = vec![None; pos.len()];
    for (i, &(x, y)) in pos.iter().enumerate() {
        if keep[i] {
            remap[i] = Some(b.add_node(x, y));
        }
    }
    for &(u, v) in &streets {
        let (Some(nu), Some(nv)) = (remap[u], remap[v]) else {
            continue;
        };
        let segments = rng.random_range(1..=cfg.max_subdivision);
        let (ux, uy) = pos[u];
        let (vx, vy) = pos[v];
        let mut prev = nu;
        for s in 1..segments {
            let t = s as f64 / segments as f64;
            let n = b.add_node(ux + (vx - ux) * t, uy + (vy - uy) * t);
            b.add_edge_euclidean(prev, n);
            prev = n;
        }
        b.add_edge_euclidean(prev, nv);
    }
    b.build().expect("generator produces valid networks")
}

/// Marks the nodes of the largest connected component.
fn largest_component(n: usize, edges: &[(usize, usize)]) -> Vec<bool> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut comp = vec![usize::MAX; n];
    let mut best = (0usize, 0usize); // (size, component id)
    let mut next_comp = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX || adj[s].is_empty() {
            continue;
        }
        let mut size = 0;
        stack.push(s);
        comp[s] = next_comp;
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in &adj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = next_comp;
                    stack.push(v);
                }
            }
        }
        if size > best.0 {
            best = (size, next_comp);
        }
        next_comp += 1;
    }
    (0..n)
        .map(|i| comp[i] == best.1 && !adj[i].is_empty())
        .collect()
}

/// A San-Francisco-like sub-network with approximately `target_edges` edges
/// (within a few percent), as used in Figs. 13–18 (default 10K edges).
///
/// The paper's sub-networks vary from 1K to 100K edges (Fig. 17b).
pub fn san_francisco_like(target_edges: usize, seed: u64) -> RoadNetwork {
    sized_grid(target_edges, 0.25, 3, seed)
}

/// An Oldenburg-like network (the paper's Fig. 19 map has 6105 nodes and
/// 7035 edges; this generator matches the edge count and node/edge ratio
/// within a few percent).
pub fn oldenburg_like(seed: u64) -> RoadNetwork {
    sized_grid(7035, 0.30, 2, seed)
}

/// Picks grid dimensions so the expected edge count after pruning and
/// subdivision hits `target_edges`, then generates.
fn sized_grid(target_edges: usize, prune: f64, max_subdivision: usize, seed: u64) -> RoadNetwork {
    assert!(target_edges >= 8, "target too small");
    // Expected streets in an n×n grid: 2n(n-1); kept: ×(1-prune);
    // edges after subdivision: ×(1 + max_subdivision)/2.
    let subdiv_factor = (1.0 + max_subdivision as f64) / 2.0;
    let per_cell = 2.0 * (1.0 - prune) * subdiv_factor;
    let cells = target_edges as f64 / per_cell;
    let n = (cells.sqrt().round() as usize).max(2);
    grid_city(&GridCityConfig {
        nx: n,
        ny: n,
        prune,
        max_subdivision,
        seed,
        ..Default::default()
    })
}

/// A simple path network of `n` nodes with the given uniform spacing —
/// handy for unit tests and examples.
pub fn line_network(n: usize, spacing: f64) -> RoadNetwork {
    assert!(n >= 2);
    let mut b = RoadNetworkBuilder::new();
    let mut prev = b.add_node(0.0, 0.0);
    for i in 1..n {
        let cur = b.add_node(i as f64 * spacing, 0.0);
        b.add_edge_euclidean(prev, cur);
        prev = cur;
    }
    b.build().unwrap()
}

/// A ring network of `n` nodes on a circle — handy for tests (every node has
/// degree 2, so the whole ring is one broken-cycle sequence).
pub fn ring_network(n: usize, radius: f64) -> RoadNetwork {
    assert!(n >= 3);
    let mut b = RoadNetworkBuilder::new();
    let nodes: Vec<_> = (0..n)
        .map(|i| {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            b.add_node(radius * a.cos(), radius * a.sin())
        })
        .collect();
    for i in 0..n {
        b.add_edge_euclidean(nodes[i], nodes[(i + 1) % n]);
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_city_is_connected_and_valid() {
        for seed in 0..5 {
            let net = grid_city(&GridCityConfig {
                nx: 10,
                ny: 10,
                seed,
                ..Default::default()
            });
            assert!(net.is_connected(), "seed {seed} disconnected");
            assert!(net.num_edges() > 50);
            // Base weights equal Euclidean lengths.
            for e in net.edge_ids() {
                assert!((net.edge(e).base_weight - net.edge_euclidean_len(e)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GridCityConfig {
            nx: 8,
            ny: 8,
            seed: 42,
            ..Default::default()
        };
        let a = grid_city(&cfg);
        let b = grid_city(&cfg);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.edge(e).start, b.edge(e).start);
            assert_eq!(a.edge(e).end, b.edge(e).end);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = grid_city(&GridCityConfig {
            nx: 8,
            ny: 8,
            seed: 1,
            ..Default::default()
        });
        let b = grid_city(&GridCityConfig {
            nx: 8,
            ny: 8,
            seed: 2,
            ..Default::default()
        });
        assert!(a.num_edges() != b.num_edges() || a.num_nodes() != b.num_nodes());
    }

    #[test]
    fn sf_like_hits_target_edge_count() {
        for &target in &[1_000usize, 5_000, 10_000] {
            let net = san_francisco_like(target, 9);
            let ratio = net.num_edges() as f64 / target as f64;
            assert!(
                (0.85..1.15).contains(&ratio),
                "target {target}: got {} edges (ratio {ratio:.2})",
                net.num_edges()
            );
            assert!(net.is_connected());
        }
    }

    #[test]
    fn oldenburg_like_statistics() {
        let net = oldenburg_like(4);
        let edges = net.num_edges() as f64;
        let nodes = net.num_nodes() as f64;
        assert!(
            (edges / 7035.0 - 1.0).abs() < 0.15,
            "edge count {} too far",
            edges
        );
        // Node/edge ratio of the real Oldenburg map is 6105/7035 ≈ 0.87.
        let ratio = nodes / edges;
        assert!(
            (0.70..1.05).contains(&ratio),
            "node/edge ratio {ratio:.2} unrealistic"
        );
        // Average degree like a real road network (2–3).
        let avg_deg = 2.0 * edges / nodes;
        assert!(
            (1.9..3.2).contains(&avg_deg),
            "avg degree {avg_deg:.2} unrealistic"
        );
    }

    #[test]
    fn degree_distribution_has_chains_and_intersections() {
        let net = grid_city(&GridCityConfig {
            nx: 12,
            ny: 12,
            seed: 5,
            ..Default::default()
        });
        let mut deg2 = 0;
        let mut deg_hi = 0;
        for n in net.node_ids() {
            match net.degree(n) {
                2 => deg2 += 1,
                d if d >= 3 => deg_hi += 1,
                _ => {}
            }
        }
        assert!(deg2 > 0, "no degree-2 chain nodes: GMA sequences trivial");
        assert!(deg_hi > 0, "no intersections");
    }

    #[test]
    fn line_and_ring_helpers() {
        let line = line_network(5, 2.0);
        assert_eq!(line.num_nodes(), 5);
        assert_eq!(line.num_edges(), 4);
        assert!(line.is_connected());

        let ring = ring_network(6, 10.0);
        assert_eq!(ring.num_nodes(), 6);
        assert_eq!(ring.num_edges(), 6);
        for n in ring.node_ids() {
            assert_eq!(ring.degree(n), 2);
        }
    }

    #[test]
    #[should_panic(expected = "grid must be at least 2x2")]
    fn tiny_grid_panics() {
        let _ = grid_city(&GridCityConfig {
            nx: 1,
            ny: 5,
            ..Default::default()
        });
    }
}
