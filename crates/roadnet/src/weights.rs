//! Fluctuating edge weights (§3: "the weights fluctuate, depending on the
//! traffic conditions").
//!
//! Weights are kept in a dense table separate from the immutable topology so
//! that the workload simulator and each monitoring algorithm can hold their
//! own copies and apply the same update stream independently.

use serde::{Deserialize, Serialize};

use crate::graph::RoadNetwork;
use crate::ids::EdgeId;

/// Dense table of current edge weights, indexed by [`EdgeId`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeWeights {
    w: Vec<f64>,
}

impl EdgeWeights {
    /// Initialises weights from the network's base weights (the paper's
    /// setup: initial weight = Euclidean length, §6).
    pub fn from_base(net: &RoadNetwork) -> Self {
        Self {
            w: net.edge_ids().map(|e| net.edge(e).base_weight).collect(),
        }
    }

    /// Initialises every edge to the same weight (useful in tests).
    pub fn uniform(num_edges: usize, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weights must be positive"
        );
        Self {
            w: vec![weight; num_edges],
        }
    }

    /// Current weight of `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn get(&self, e: EdgeId) -> f64 {
        self.w[e.index()]
    }

    /// Overwrites the weight of `e`.
    ///
    /// # Panics
    /// Panics if the new weight is non-positive or non-finite.
    #[inline]
    pub fn set(&mut self, e: EdgeId, weight: f64) {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weights must be positive"
        );
        self.w[e.index()] = weight;
    }

    /// Number of edges covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Sum of all current weights — an upper bound on the network's
    /// weighted **diameter**: a shortest path is simple, so it traverses
    /// each edge at most once and its length never exceeds this total. The
    /// sharded engine uses it to cap "replicate everything" halo radii
    /// (from underfull queries, `kNN_dist = ∞`) at a finite value: a
    /// boundary expansion bounded by this total already reaches every
    /// reachable point, and finite radii keep the shrink logic comparable.
    pub fn total(&self) -> f64 {
        self.w.iter().sum()
    }

    /// Average current weight.
    pub fn average(&self) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        self.w.iter().sum::<f64>() / self.w.len() as f64
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.w.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn line() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(3.0, 0.0);
        let n2 = b.add_node(7.0, 0.0);
        b.add_edge_euclidean(n0, n1);
        b.add_edge_euclidean(n1, n2);
        b.build().unwrap()
    }

    #[test]
    fn from_base_matches_topology() {
        let net = line();
        let w = EdgeWeights::from_base(&net);
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(EdgeId(0)), 3.0);
        assert_eq!(w.get(EdgeId(1)), 4.0);
        assert!((w.average() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn set_and_get() {
        let net = line();
        let mut w = EdgeWeights::from_base(&net);
        w.set(EdgeId(0), 3.3);
        assert_eq!(w.get(EdgeId(0)), 3.3);
        assert_eq!(w.get(EdgeId(1)), 4.0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_zero_weight() {
        let net = line();
        let mut w = EdgeWeights::from_base(&net);
        w.set(EdgeId(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_nan_weight() {
        let net = line();
        let mut w = EdgeWeights::from_base(&net);
        w.set(EdgeId(1), f64::NAN);
    }

    #[test]
    fn total_bounds_every_distance() {
        let net = line();
        let mut w = EdgeWeights::from_base(&net);
        assert!((w.total() - 7.0).abs() < 1e-12);
        w.set(EdgeId(0), 10.0);
        assert!((w.total() - 14.0).abs() < 1e-12);
        // The diameter (longest shortest path) of the line is 14 here.
        let mut eng = crate::dijkstra::DijkstraEngine::new(net.num_nodes());
        let d = eng.dist_between_nodes(&net, &w, crate::ids::NodeId(0), crate::ids::NodeId(2));
        assert!(d <= w.total());
    }

    #[test]
    fn uniform_table() {
        let w = EdgeWeights::uniform(4, 2.0);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.get(EdgeId(3)), 2.0);
        assert_eq!(w.average(), 2.0);
    }
}
