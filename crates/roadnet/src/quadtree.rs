//! **SI** — the PMR quadtree spatial index on network edges (§3, [9]).
//!
//! > "Given the coordinates of an object p, we use SI to identify the edge
//! > where p lies. [...] Each leaf quad contains the ids of the edges
//! > intersecting it. The tree is built by iteratively inserting the network
//! > edges. If the number of edge ids in a leaf quad exceeds a threshold, it
//! > is split into four new ones."
//!
//! The index maps raw `(x, y)` coordinates (as sent by positioning devices)
//! to the containing edge. Because float coordinates never lie *exactly* on
//! a segment, lookup is implemented as best-first nearest-edge search over
//! the quad hierarchy, which is exact and deterministic (min distance, then
//! min edge id).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::geometry::{point_segment_dist, project_onto_segment, Point2, Rect};
use crate::graph::RoadNetwork;
use crate::ids::EdgeId;
use crate::netpoint::NetPoint;

/// PMR-quadtree split policy: a leaf splits when an insertion leaves it with
/// more than `threshold` edges, but each edge is only "re-split" down to
/// `max_depth` to bound degeneracy around shared endpoints (where many edges
/// meet in one point and can never be separated).
#[derive(Clone, Copy, Debug)]
pub struct QuadtreeConfig {
    /// Maximum edges per leaf before a split is attempted.
    pub threshold: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for QuadtreeConfig {
    fn default() -> Self {
        Self {
            threshold: 8,
            max_depth: 16,
        }
    }
}

enum QuadNode {
    /// Leaf quad holding ids of the edges whose segment intersects it.
    Leaf(Vec<EdgeId>),
    /// Internal quad with four children `[SW, SE, NW, NE]` (indices into
    /// the arena).
    Internal([u32; 4]),
}

/// The PMR quadtree over a network's edge segments.
pub struct PmrQuadtree {
    nodes: Vec<QuadNode>,
    bounds: Rect,
    config: QuadtreeConfig,
    /// Cached segment endpoints per edge, so lookups don't chase the graph.
    segments: Vec<(Point2, Point2)>,
}

#[derive(PartialEq)]
struct Candidate {
    dist: f64,
    /// Quad arena index, or edge id (see `is_edge`).
    id: u32,
    depth: u32,
    rect: Rect,
    is_edge: bool,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance; edges before quads at equal distance so ties
        // resolve deterministically; then id.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances must not be NaN")
            .then_with(|| self.is_edge.cmp(&other.is_edge))
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PmrQuadtree {
    /// Builds the index by iteratively inserting every network edge.
    pub fn build(net: &RoadNetwork) -> Self {
        Self::build_with(net, QuadtreeConfig::default())
    }

    /// Builds the index with an explicit split policy.
    pub fn build_with(net: &RoadNetwork, config: QuadtreeConfig) -> Self {
        // Slightly inflate bounds so boundary points are strictly inside.
        let b = net.bounds();
        let pad = (b.width().max(b.height()) * 1e-9).max(1e-9);
        let bounds = Rect::new(
            Point2::new(b.lo.x - pad, b.lo.y - pad),
            Point2::new(b.hi.x + pad, b.hi.y + pad),
        );
        let segments: Vec<(Point2, Point2)> = net
            .edge_ids()
            .map(|e| {
                let edge = net.edge(e);
                (net.node_pos(edge.start), net.node_pos(edge.end))
            })
            .collect();
        let mut tree = Self {
            nodes: vec![QuadNode::Leaf(Vec::new())],
            bounds,
            config,
            segments,
        };
        for e in net.edge_ids() {
            tree.insert(e);
        }
        tree
    }

    fn insert(&mut self, e: EdgeId) {
        self.insert_rec(0, self.bounds, 0, e);
    }

    fn insert_rec(&mut self, node: u32, rect: Rect, depth: usize, e: EdgeId) {
        let (a, b) = self.segments[e.index()];
        if !rect.intersects_segment(a, b) {
            return;
        }
        match &mut self.nodes[node as usize] {
            QuadNode::Leaf(edges) => {
                edges.push(e);
                // PMR split rule: split on overflow, but never re-split
                // beyond max_depth (prevents infinite recursion where many
                // segments share an endpoint).
                if edges.len() > self.config.threshold && depth < self.config.max_depth {
                    let moved = std::mem::take(edges);
                    let base = self.nodes.len() as u32;
                    for _ in 0..4 {
                        self.nodes.push(QuadNode::Leaf(Vec::new()));
                    }
                    self.nodes[node as usize] =
                        QuadNode::Internal([base, base + 1, base + 2, base + 3]);
                    let quads = rect.quadrants();
                    for old in moved {
                        for (i, q) in quads.iter().enumerate() {
                            self.insert_rec(base + i as u32, *q, depth + 1, old);
                        }
                    }
                }
            }
            QuadNode::Internal(children) => {
                let children = *children;
                for (i, q) in rect.quadrants().iter().enumerate() {
                    self.insert_rec(children[i], *q, depth + 1, e);
                }
            }
        }
    }

    /// The edge nearest to point `p`, with the Euclidean distance to it.
    /// Returns `None` only for an empty network.
    ///
    /// Best-first search over quads guarantees exactness even when the
    /// nearest edge lives in a neighbouring leaf.
    pub fn nearest_edge(&self, p: Point2) -> Option<(EdgeId, f64)> {
        let mut heap = BinaryHeap::new();
        heap.push(Candidate {
            dist: self.bounds.dist_to_point(p),
            id: 0,
            depth: 0,
            rect: self.bounds,
            is_edge: false,
        });
        let mut best: Option<(EdgeId, f64)> = None;
        while let Some(c) = heap.pop() {
            if let Some((_, bd)) = best {
                if c.dist > bd {
                    break;
                }
            }
            if c.is_edge {
                let e = EdgeId(c.id);
                match best {
                    Some((be, bd)) => {
                        if c.dist < bd || (c.dist == bd && e < be) {
                            best = Some((e, c.dist));
                        }
                    }
                    None => best = Some((e, c.dist)),
                }
                continue;
            }
            match &self.nodes[c.id as usize] {
                QuadNode::Leaf(edges) => {
                    for &e in edges {
                        let (a, b) = self.segments[e.index()];
                        heap.push(Candidate {
                            dist: point_segment_dist(p, a, b),
                            id: e.0,
                            depth: c.depth + 1,
                            rect: c.rect,
                            is_edge: true,
                        });
                    }
                }
                QuadNode::Internal(children) => {
                    for (i, q) in c.rect.quadrants().iter().enumerate() {
                        heap.push(Candidate {
                            dist: q.dist_to_point(p),
                            id: children[i],
                            depth: c.depth + 1,
                            rect: *q,
                            is_edge: false,
                        });
                    }
                }
            }
        }
        best
    }

    /// Resolves raw coordinates to a network position: the nearest edge and
    /// the projection of `p` onto it. This is the paper's "identify the edge
    /// containing p" operation.
    pub fn locate(&self, net: &RoadNetwork, p: Point2) -> Option<NetPoint> {
        let (e, _) = self.nearest_edge(p)?;
        let edge = net.edge(e);
        let (t, _) = project_onto_segment(p, net.node_pos(edge.start), net.node_pos(edge.end));
        Some(NetPoint::new(e, t))
    }

    /// All edges whose leaf quad contains `p` (the classic PMR point probe).
    /// May contain edges that do not actually pass near `p`; use
    /// [`Self::nearest_edge`] for exact resolution.
    pub fn probe(&self, p: Point2) -> &[EdgeId] {
        if !self.bounds.contains(p) {
            return &[];
        }
        let mut idx = 0u32;
        let mut rect = self.bounds;
        loop {
            match &self.nodes[idx as usize] {
                QuadNode::Leaf(edges) => return edges,
                QuadNode::Internal(children) => {
                    let c = rect.center();
                    let (qi, q) = match (p.x >= c.x, p.y >= c.y) {
                        (false, false) => (0, Rect::new(rect.lo, c)),
                        (true, false) => (
                            1,
                            Rect::new(Point2::new(c.x, rect.lo.y), Point2::new(rect.hi.x, c.y)),
                        ),
                        (false, true) => (
                            2,
                            Rect::new(Point2::new(rect.lo.x, c.y), Point2::new(c.x, rect.hi.y)),
                        ),
                        (true, true) => (3, Rect::new(c, rect.hi)),
                    };
                    idx = children[qi];
                    rect = q;
                }
            }
        }
    }

    /// Number of quads (leaves + internal) in the tree.
    pub fn num_quads(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth reached by any leaf.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[QuadNode], idx: u32, d: usize) -> usize {
            match &nodes[idx as usize] {
                QuadNode::Leaf(_) => d,
                QuadNode::Internal(ch) => {
                    ch.iter().map(|&c| rec(nodes, c, d + 1)).max().unwrap_or(d)
                }
            }
        }
        rec(&self.nodes, 0, 0)
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<QuadNode>()
            + self.segments.capacity() * std::mem::size_of::<(Point2, Point2)>();
        for n in &self.nodes {
            if let QuadNode::Leaf(v) = n {
                total += v.capacity() * std::mem::size_of::<EdgeId>();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_city, GridCityConfig};
    use crate::graph::RoadNetworkBuilder;

    fn sample_net() -> RoadNetwork {
        grid_city(&GridCityConfig {
            nx: 8,
            ny: 8,
            seed: 7,
            ..Default::default()
        })
    }

    /// Brute-force nearest edge for validation.
    fn brute_nearest(net: &RoadNetwork, p: Point2) -> (EdgeId, f64) {
        let mut best = (EdgeId(0), f64::INFINITY);
        for e in net.edge_ids() {
            let edge = net.edge(e);
            let d = point_segment_dist(p, net.node_pos(edge.start), net.node_pos(edge.end));
            if d < best.1 || (d == best.1 && e < best.0) {
                best = (e, d);
            }
        }
        best
    }

    #[test]
    fn nearest_matches_brute_force() {
        let net = sample_net();
        let tree = PmrQuadtree::build(&net);
        let b = net.bounds();
        let mut rng_state = 12345u64;
        let mut next = || {
            // Tiny xorshift so this test has no RNG dependency.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..300 {
            let p = Point2::new(b.lo.x + next() * b.width(), b.lo.y + next() * b.height());
            let (e, d) = tree.nearest_edge(p).unwrap();
            let (be, bd) = brute_nearest(&net, p);
            assert!((d - bd).abs() < 1e-9, "distance mismatch at {p:?}");
            // On exact ties any of the tied edges is acceptable as long as
            // the tie-break is deterministic; with random points ties are
            // measure-zero, so ids must agree.
            assert_eq!(e, be, "edge mismatch at {p:?}");
        }
    }

    #[test]
    fn locate_points_on_edges_roundtrip() {
        let net = sample_net();
        let tree = PmrQuadtree::build(&net);
        for e in net.edge_ids().step_by(3) {
            for t in [0.1, 0.5, 0.9] {
                let p = NetPoint::new(e, t);
                let xy = p.coordinates(&net);
                let found = tree.locate(&net, xy).unwrap();
                // The point must resolve to an edge at distance ~0 and the
                // projected coordinates must coincide (the edge itself, or a
                // geometrically coincident one).
                let fxy = found.coordinates(&net);
                assert!(xy.dist(fxy) < 1e-9, "resolved off-position for {e:?} t={t}");
            }
        }
    }

    #[test]
    fn probe_leaf_contains_nearby_edge() {
        let net = sample_net();
        let tree = PmrQuadtree::build(&net);
        // Probing the midpoint of an edge must return a leaf that includes
        // that edge (the PMR invariant: leaves store all intersecting edges).
        for e in net.edge_ids().step_by(5) {
            let mid = NetPoint::new(e, 0.5).coordinates(&net);
            assert!(tree.probe(mid).contains(&e), "leaf misses its edge {e:?}");
        }
    }

    #[test]
    fn probe_outside_bounds_is_empty() {
        let net = sample_net();
        let tree = PmrQuadtree::build(&net);
        let b = net.bounds();
        assert!(tree
            .probe(Point2::new(b.hi.x + 100.0, b.hi.y + 100.0))
            .is_empty());
    }

    #[test]
    fn splits_happen_on_dense_networks() {
        let net = sample_net();
        let tree = PmrQuadtree::build_with(
            &net,
            QuadtreeConfig {
                threshold: 4,
                max_depth: 12,
            },
        );
        assert!(tree.num_quads() > 1, "tree never split");
        assert!(tree.depth() >= 2);
        assert!(tree.depth() <= 12);
    }

    #[test]
    fn degenerate_shared_endpoint_respects_max_depth() {
        // A star of 20 edges all meeting at one point can never be separated
        // by splitting; max_depth must stop recursion.
        let mut b = RoadNetworkBuilder::new();
        let c = b.add_node(0.0, 0.0);
        for i in 0..20 {
            let ang = i as f64 * 0.314;
            let n = b.add_node(ang.cos(), ang.sin());
            b.add_edge_euclidean(c, n);
        }
        let net = b.build().unwrap();
        let tree = PmrQuadtree::build_with(
            &net,
            QuadtreeConfig {
                threshold: 2,
                max_depth: 6,
            },
        );
        assert!(tree.depth() <= 6);
        // Lookup still works.
        let (e, d) = tree.nearest_edge(Point2::new(0.9, 0.0)).unwrap();
        let (be, bd) = brute_nearest(&net, Point2::new(0.9, 0.0));
        assert_eq!(e, be);
        assert!((d - bd).abs() < 1e-12);
    }

    #[test]
    fn single_edge_network() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        b.add_edge_euclidean(n0, n1);
        let net = b.build().unwrap();
        let tree = PmrQuadtree::build(&net);
        let (e, d) = tree.nearest_edge(Point2::new(0.5, 0.3)).unwrap();
        assert_eq!(e, EdgeId(0));
        assert!((d - 0.3).abs() < 1e-12);
        let loc = tree.locate(&net, Point2::new(0.25, 0.1)).unwrap();
        assert_eq!(loc.edge, EdgeId(0));
        assert!((loc.frac - 0.25).abs() < 1e-12);
    }

    #[test]
    fn memory_accounting_nonzero() {
        let net = sample_net();
        assert!(PmrQuadtree::build(&net).memory_bytes() > 0);
    }
}
