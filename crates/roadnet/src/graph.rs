//! The road-network graph (§3 of the paper).
//!
//! A [`RoadNetwork`] is the *static topology*: nodes with coordinates,
//! bidirectional edges, adjacency, and each edge's **base weight** (the paper
//! initialises weights to the Euclidean endpoint distance, §6). The
//! *fluctuating* weights that traffic updates mutate live in a separate
//! [`crate::weights::EdgeWeights`] table so that several monitoring
//! algorithms can share one immutable topology while maintaining their own
//! dynamic state.

use serde::{Deserialize, Serialize};

use crate::geometry::{Point2, Rect};
use crate::ids::{EdgeId, NodeId};

/// A road segment between two nodes.
///
/// Edges are bidirectional (§3: "for simplicity we consider that the edges
/// are bidirectional"); `start`/`end` merely fix an orientation so that
/// positions along the edge ([`crate::netpoint::NetPoint`]) are well defined.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint.
    pub start: NodeId,
    /// Second endpoint.
    pub end: NodeId,
    /// Initial weight (Euclidean length of the segment by construction in
    /// the generators; arbitrary positive value for hand-built networks).
    pub base_weight: f64,
}

impl Edge {
    /// The endpoint opposite to `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.start {
            self.end
        } else {
            debug_assert_eq!(n, self.end, "node is not an endpoint of this edge");
            self.start
        }
    }

    /// Whether `n` is one of the two endpoints.
    #[inline]
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.start || n == self.end
    }
}

/// Serializable raw form of a network (nodes + edges, no derived state).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkData {
    /// Node coordinates, indexed by [`NodeId`].
    pub nodes: Vec<Point2>,
    /// Edges, indexed by [`EdgeId`].
    pub edges: Vec<Edge>,
}

/// Errors produced while validating a network under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// An edge references a node id that was never added.
    DanglingEdge {
        /// The offending edge.
        edge: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop {
        /// The offending edge.
        edge: usize,
    },
    /// An edge has a non-positive or non-finite base weight.
    BadWeight {
        /// The offending edge.
        edge: usize,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::DanglingEdge { edge } => {
                write!(f, "edge {edge} references a nonexistent node")
            }
            NetworkError::SelfLoop { edge } => write!(f, "edge {edge} is a self-loop"),
            NetworkError::BadWeight { edge } => {
                write!(f, "edge {edge} has a non-positive or non-finite weight")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Incremental builder for [`RoadNetwork`].
#[derive(Default, Clone, Debug)]
pub struct RoadNetworkBuilder {
    nodes: Vec<Point2>,
    edges: Vec<Edge>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node at `(x, y)` and returns its id.
    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Point2::new(x, y));
        id
    }

    /// Adds an edge with an explicit base weight and returns its id.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, base_weight: f64) -> EdgeId {
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Edge {
            start: a,
            end: b,
            base_weight,
        });
        id
    }

    /// Adds an edge whose base weight is the Euclidean distance between its
    /// endpoints (the paper's initialisation, §6).
    ///
    /// # Panics
    /// Panics if either node id is out of range.
    pub fn add_edge_euclidean(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        let w = self.nodes[a.index()].dist(self.nodes[b.index()]);
        self.add_edge(a, b, w)
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validates and freezes the network, building adjacency.
    pub fn build(self) -> Result<RoadNetwork, NetworkError> {
        RoadNetwork::from_data(NetworkData {
            nodes: self.nodes,
            edges: self.edges,
        })
    }
}

/// The immutable road-network topology.
///
/// Adjacency is stored in CSR (compressed sparse row) form: one flat array
/// of `(EdgeId, NodeId)` pairs plus per-node offsets. This keeps iteration
/// over a node's incident edges allocation-free and cache-friendly, which
/// matters because network expansion (§4.1) is the hottest loop in the
/// entire system.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    nodes: Vec<Point2>,
    edges: Vec<Edge>,
    /// CSR offsets: incident edges of node `n` are
    /// `adj_flat[adj_off[n] .. adj_off[n + 1]]`.
    adj_off: Vec<u32>,
    /// Flat adjacency: `(incident edge, opposite endpoint)`.
    adj_flat: Vec<(EdgeId, NodeId)>,
    bounds: Rect,
}

impl RoadNetwork {
    /// Builds a network from raw data, validating it.
    pub fn from_data(data: NetworkData) -> Result<Self, NetworkError> {
        let NetworkData { nodes, edges } = data;
        let n = nodes.len();
        for (i, e) in edges.iter().enumerate() {
            if e.start.index() >= n || e.end.index() >= n {
                return Err(NetworkError::DanglingEdge { edge: i });
            }
            if e.start == e.end {
                return Err(NetworkError::SelfLoop { edge: i });
            }
            if !(e.base_weight.is_finite() && e.base_weight > 0.0) {
                return Err(NetworkError::BadWeight { edge: i });
            }
        }
        // Counting sort into CSR.
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.start.index()] += 1;
            degree[e.end.index()] += 1;
        }
        let mut adj_off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        adj_off.push(0);
        for d in &degree {
            acc += d;
            adj_off.push(acc);
        }
        let mut cursor = adj_off.clone();
        let mut adj_flat = vec![(EdgeId(0), NodeId(0)); edges.len() * 2];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::from_index(i);
            let cs = &mut cursor[e.start.index()];
            adj_flat[*cs as usize] = (id, e.end);
            *cs += 1;
            let ce = &mut cursor[e.end.index()];
            adj_flat[*ce as usize] = (id, e.start);
            *ce += 1;
        }
        let bounds = Rect::bounding(nodes.iter().copied())
            .unwrap_or(Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)));
        Ok(Self {
            nodes,
            edges,
            adj_off,
            adj_flat,
            bounds,
        })
    }

    /// Extracts the serializable raw form.
    pub fn to_data(&self) -> NetworkData {
        NetworkData {
            nodes: self.nodes.clone(),
            edges: self.edges.clone(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Coordinates of node `n`.
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    #[inline]
    pub fn node_pos(&self, n: NodeId) -> Point2 {
        self.nodes[n.index()]
    }

    /// The edge record for `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Incident `(edge, opposite endpoint)` pairs of node `n`.
    #[inline]
    pub fn adjacent(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        let lo = self.adj_off[n.index()] as usize;
        let hi = self.adj_off[n.index() + 1] as usize;
        &self.adj_flat[lo..hi]
    }

    /// Degree of node `n` (number of incident edges).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        (self.adj_off[n.index() + 1] - self.adj_off[n.index()]) as usize
    }

    /// Whether `n` is an intersection or terminal node (degree ≠ 2), i.e. a
    /// sequence endpoint in the sense of §5.
    #[inline]
    pub fn is_sequence_endpoint(&self, n: NodeId) -> bool {
        self.degree(n) != 2
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Bounding box of all node coordinates.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Euclidean length of edge `e` (distance between its endpoints —
    /// distinct from its fluctuating weight).
    #[inline]
    pub fn edge_euclidean_len(&self, e: EdgeId) -> f64 {
        let edge = self.edge(e);
        self.node_pos(edge.start).dist(self.node_pos(edge.end))
    }

    /// Average base weight across all edges.
    pub fn avg_base_weight(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.base_weight).sum::<f64>() / self.edges.len() as f64
    }

    /// Node ids of the connected component containing `start`.
    pub fn component_of(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        seen[start.index()] = true;
        while let Some(n) = stack.pop() {
            out.push(n);
            for &(_, m) in self.adjacent(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m);
                }
            }
        }
        out
    }

    /// Whether the whole network is a single connected component.
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        self.component_of(NodeId(0)).len() == self.num_nodes()
    }

    /// Approximate resident size of the topology in bytes (for the memory
    /// experiments, Fig. 18 — reported separately from per-algorithm state).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Point2>()
            + self.edges.capacity() * std::mem::size_of::<Edge>()
            + self.adj_off.capacity() * std::mem::size_of::<u32>()
            + self.adj_flat.capacity() * std::mem::size_of::<(EdgeId, NodeId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the small running-example-style network used across tests:
    ///
    /// ```text
    ///   0 --(e0)-- 1 --(e1)-- 2
    ///              |          |
    ///             (e2)       (e3)
    ///              |          |
    ///              3 --(e4)-- 4
    /// ```
    fn diamond() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 1.0);
        let n1 = b.add_node(1.0, 1.0);
        let n2 = b.add_node(2.0, 1.0);
        let n3 = b.add_node(1.0, 0.0);
        let n4 = b.add_node(2.0, 0.0);
        b.add_edge_euclidean(n0, n1);
        b.add_edge_euclidean(n1, n2);
        b.add_edge_euclidean(n1, n3);
        b.add_edge_euclidean(n2, n4);
        b.add_edge_euclidean(n3, n4);
        b.build().unwrap()
    }

    #[test]
    fn builder_counts_and_ids() {
        let net = diamond();
        assert_eq!(net.num_nodes(), 5);
        assert_eq!(net.num_edges(), 5);
        assert_eq!(net.node_ids().count(), 5);
        assert_eq!(net.edge_ids().count(), 5);
    }

    #[test]
    fn euclidean_weights() {
        let net = diamond();
        for e in net.edge_ids() {
            assert!((net.edge(e).base_weight - net.edge_euclidean_len(e)).abs() < 1e-12);
        }
        assert!((net.avg_base_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_symmetric_and_complete() {
        let net = diamond();
        let mut total = 0;
        for n in net.node_ids() {
            for &(e, m) in net.adjacent(n) {
                total += 1;
                assert_eq!(net.edge(e).other(n), m);
                // The reverse entry exists.
                assert!(net.adjacent(m).iter().any(|&(e2, n2)| e2 == e && n2 == n));
            }
        }
        assert_eq!(total, net.num_edges() * 2);
    }

    #[test]
    fn degrees() {
        let net = diamond();
        assert_eq!(net.degree(NodeId(0)), 1);
        assert_eq!(net.degree(NodeId(1)), 3);
        assert_eq!(net.degree(NodeId(2)), 2);
        assert!(net.is_sequence_endpoint(NodeId(0)));
        assert!(net.is_sequence_endpoint(NodeId(1)));
        assert!(!net.is_sequence_endpoint(NodeId(2)));
    }

    #[test]
    fn connectivity() {
        let net = diamond();
        assert!(net.is_connected());
        assert_eq!(net.component_of(NodeId(3)).len(), 5);

        // Two disjoint segments.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(5.0, 0.0);
        let e = b.add_node(6.0, 0.0);
        b.add_edge_euclidean(a, c);
        b.add_edge_euclidean(d, e);
        let net2 = b.build().unwrap();
        assert!(!net2.is_connected());
        assert_eq!(net2.component_of(a).len(), 2);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        // Self loop.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0);
        b.add_edge(a, a, 1.0);
        assert_eq!(b.build().unwrap_err(), NetworkError::SelfLoop { edge: 0 });

        // Dangling edge.
        let data = NetworkData {
            nodes: vec![Point2::new(0.0, 0.0)],
            edges: vec![Edge {
                start: NodeId(0),
                end: NodeId(9),
                base_weight: 1.0,
            }],
        };
        assert_eq!(
            RoadNetwork::from_data(data).unwrap_err(),
            NetworkError::DanglingEdge { edge: 0 }
        );

        // Zero weight.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, 0.0);
        assert_eq!(b.build().unwrap_err(), NetworkError::BadWeight { edge: 0 });

        // NaN weight.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, f64::NAN);
        assert_eq!(b.build().unwrap_err(), NetworkError::BadWeight { edge: 0 });
    }

    #[test]
    fn data_roundtrip() {
        let net = diamond();
        let data = net.to_data();
        let net2 = RoadNetwork::from_data(data).unwrap();
        assert_eq!(net2.num_nodes(), net.num_nodes());
        assert_eq!(net2.num_edges(), net.num_edges());
        for n in net.node_ids() {
            assert_eq!(net.adjacent(n), net2.adjacent(n));
        }
    }

    #[test]
    fn bounds_cover_all_nodes() {
        let net = diamond();
        let b = net.bounds();
        for n in net.node_ids() {
            assert!(b.contains(net.node_pos(n)));
        }
    }

    #[test]
    fn edge_other_endpoint() {
        let net = diamond();
        let e = net.edge(EdgeId(0));
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert_eq!(e.other(NodeId(1)), NodeId(0));
        assert!(e.touches(NodeId(0)));
        assert!(!e.touches(NodeId(4)));
    }

    #[test]
    fn memory_accounting_nonzero() {
        assert!(diamond().memory_bytes() > 0);
    }
}
