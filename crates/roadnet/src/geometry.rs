//! Planar geometry primitives used by the spatial index and the generators.
//!
//! The paper's workspace is a city map: nodes carry `(x, y)` coordinates and
//! edges are straight segments between their endpoints (edge weights are
//! *initialised* from the Euclidean endpoint distance, §6, but fluctuate
//! afterwards — geometry and weights are deliberately separate concepts).

use serde::{Deserialize, Serialize};

/// A point in the plane.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the sqrt when only
    /// comparisons are needed).
    #[inline]
    pub fn dist_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// An axis-aligned rectangle, `lo` inclusive / `hi` inclusive.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point2,
    /// Upper-right corner.
    pub hi: Point2,
}

impl Rect {
    /// Creates a rectangle from two corners (re-ordered if necessary).
    pub fn new(a: Point2, b: Point2) -> Self {
        Self {
            lo: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest rectangle covering all `points`. Returns `None` for an
    /// empty iterator.
    pub fn bounding(points: impl IntoIterator<Item = Point2>) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::new(first, first);
        for p in it {
            r.lo.x = r.lo.x.min(p.x);
            r.lo.y = r.lo.y.min(p.y);
            r.hi.x = r.hi.x.max(p.x);
            r.hi.y = r.hi.y.max(p.y);
        }
        Some(r)
    }

    /// Whether the rectangle contains `p` (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// The four equal quadrants of this rectangle, in the order
    /// `[SW, SE, NW, NE]`.
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.lo, c),
            Rect::new(Point2::new(c.x, self.lo.y), Point2::new(self.hi.x, c.y)),
            Rect::new(Point2::new(self.lo.x, c.y), Point2::new(c.x, self.hi.y)),
            Rect::new(c, self.hi),
        ]
    }

    /// Minimum distance from `p` to this rectangle (0 if inside).
    #[inline]
    pub fn dist_to_point(&self, p: Point2) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Whether the segment `a`–`b` intersects this rectangle.
    ///
    /// Uses a separating-axis test specialised for an AABB vs a segment.
    pub fn intersects_segment(&self, a: Point2, b: Point2) -> bool {
        // Quick accept: either endpoint inside.
        if self.contains(a) || self.contains(b) {
            return true;
        }
        // Quick reject: segment bounding box disjoint from rect.
        if a.x.max(b.x) < self.lo.x
            || a.x.min(b.x) > self.hi.x
            || a.y.max(b.y) < self.lo.y
            || a.y.min(b.y) > self.hi.y
        {
            return false;
        }
        // Separating axis: the segment's normal.
        let d = Point2::new(b.x - a.x, b.y - a.y);
        let corners = [
            self.lo,
            Point2::new(self.hi.x, self.lo.y),
            Point2::new(self.lo.x, self.hi.y),
            self.hi,
        ];
        let side = |p: Point2| d.x * (p.y - a.y) - d.y * (p.x - a.x);
        let mut pos = false;
        let mut neg = false;
        for c in corners {
            let s = side(c);
            pos |= s >= 0.0;
            neg |= s <= 0.0;
        }
        pos && neg
    }
}

/// Distance from point `p` to the segment `a`–`b`.
pub fn point_segment_dist(p: Point2, a: Point2, b: Point2) -> f64 {
    project_onto_segment(p, a, b).1
}

/// Projects `p` onto the segment `a`–`b`.
///
/// Returns `(t, dist)` where `t ∈ [0, 1]` is the normalised position of the
/// closest point along the segment and `dist` the Euclidean distance to it.
pub fn project_onto_segment(p: Point2, a: Point2, b: Point2) -> (f64, f64) {
    let ab = Point2::new(b.x - a.x, b.y - a.y);
    let len_sq = ab.x * ab.x + ab.y * ab.y;
    if len_sq <= f64::EPSILON {
        return (0.0, p.dist(a));
    }
    let t = (((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len_sq).clamp(0.0, 1.0);
    let proj = a.lerp(b, t);
    (t, p.dist(proj))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn point_distance() {
        assert!((Point2::new(0.0, 0.0).dist(Point2::new(3.0, 4.0)) - 5.0).abs() < EPS);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(r.contains(Point2::new(1.0, 1.0)));
        assert!(r.contains(Point2::new(0.5, 0.5)));
        assert!(!r.contains(Point2::new(1.0001, 0.5)));
    }

    #[test]
    fn bounding_box_of_points() {
        let r = Rect::bounding([
            Point2::new(1.0, 5.0),
            Point2::new(-2.0, 3.0),
            Point2::new(4.0, -1.0),
        ])
        .unwrap();
        assert_eq!(r.lo, Point2::new(-2.0, -1.0));
        assert_eq!(r.hi, Point2::new(4.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn quadrants_cover_and_tile() {
        let r = Rect::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
        let qs = r.quadrants();
        assert_eq!(
            qs[0],
            Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0))
        );
        assert_eq!(
            qs[3],
            Rect::new(Point2::new(1.0, 1.0), Point2::new(2.0, 2.0))
        );
        // Every quadrant is inside the parent.
        for q in qs {
            assert!(r.contains(q.lo) && r.contains(q.hi));
        }
    }

    #[test]
    fn rect_point_distance() {
        let r = Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        assert_eq!(r.dist_to_point(Point2::new(0.5, 0.5)), 0.0);
        assert!((r.dist_to_point(Point2::new(2.0, 1.0)) - 1.0).abs() < EPS);
        assert!((r.dist_to_point(Point2::new(4.0, 5.0)) - 5.0).abs() < EPS);
    }

    #[test]
    fn segment_rect_intersection() {
        let r = Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        // Crosses through.
        assert!(r.intersects_segment(Point2::new(-1.0, 0.5), Point2::new(2.0, 0.5)));
        // Endpoint inside.
        assert!(r.intersects_segment(Point2::new(0.5, 0.5), Point2::new(5.0, 5.0)));
        // Diagonal that clips the corner region (e.g. passes through
        // (0.75, 0.75)) counts as intersecting.
        assert!(r.intersects_segment(Point2::new(1.5, 0.0), Point2::new(0.0, 1.5)));
        // A clear miss beyond the corner:
        assert!(!r.intersects_segment(Point2::new(3.0, 0.0), Point2::new(0.0, 3.0)));
        // Fully to one side.
        assert!(!r.intersects_segment(Point2::new(2.0, 2.0), Point2::new(3.0, 3.0)));
    }

    #[test]
    fn projection_onto_segment() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 0.0);
        let (t, d) = project_onto_segment(Point2::new(3.0, 4.0), a, b);
        assert!((t - 0.3).abs() < EPS);
        assert!((d - 4.0).abs() < EPS);
        // Beyond the end: clamped.
        let (t, d) = project_onto_segment(Point2::new(12.0, 0.0), a, b);
        assert!((t - 1.0).abs() < EPS);
        assert!((d - 2.0).abs() < EPS);
        // Degenerate segment.
        let (t, d) = project_onto_segment(Point2::new(1.0, 0.0), a, a);
        assert_eq!(t, 0.0);
        assert!((d - 1.0).abs() < EPS);
    }

    #[test]
    fn point_segment_dist_matches_projection() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(0.0, 2.0);
        assert!((point_segment_dist(Point2::new(1.0, 1.0), a, b) - 1.0).abs() < EPS);
    }
}
