//! Sequence decomposition of the network (§5).
//!
//! > "A sequence is a path between two nodes nᵢ and nⱼ, such that (i) the
//! > degrees of nᵢ and nⱼ are not equal to 2 and (ii) all intermediate nodes
//! > in the path have degree 2. [...] every graph is partitioned in a set of
//! > sequences that cover all nodes and whose edges do not overlap."
//!
//! GMA groups the queries that fall inside one sequence and monitors the
//! k-NN sets of its two endpoint intersections instead of each query
//! individually. The [`SequenceTable`] (the paper's **ST**) maps every edge
//! to its unique sequence and its position within it.
//!
//! Isolated cycles in which *every* node has degree 2 have no natural
//! endpoint; we break them at an arbitrary node (the smallest id on the
//! cycle), which yields a sequence whose two endpoints coincide. Such cycles
//! can only occur as whole connected components (a cycle attached to
//! anything else contains a node of degree ≥ 3), so correctness of GMA's
//! Lemma 1 is unaffected.

use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId, SeqId};
use crate::netpoint::NetPoint;
use crate::weights::EdgeWeights;

/// One sequence: an oriented maximal path of edges between two
/// intersection/terminal nodes.
#[derive(Clone, Debug)]
pub struct Sequence {
    /// This sequence's id.
    pub id: SeqId,
    /// Ordered nodes along the path, including both endpoints
    /// (`nodes.len() == edges.len() + 1`). For a broken cycle the first and
    /// last node coincide.
    pub nodes: Vec<NodeId>,
    /// Ordered edges along the path.
    pub edges: Vec<EdgeId>,
    /// `forward[i]` is true when `edges[i]` is traversed from its `start`
    /// to its `end` while walking `nodes[i] → nodes[i+1]`.
    pub forward: Vec<bool>,
}

impl Sequence {
    /// First endpoint (a degree≠2 node, or the cycle breakpoint).
    #[inline]
    pub fn start_node(&self) -> NodeId {
        self.nodes[0]
    }

    /// Second endpoint.
    #[inline]
    pub fn end_node(&self) -> NodeId {
        *self.nodes.last().expect("sequences are non-empty")
    }

    /// Whether this sequence is a broken isolated cycle.
    #[inline]
    pub fn is_cycle(&self) -> bool {
        self.start_node() == self.end_node()
    }

    /// Total current weight of the sequence.
    pub fn total_weight(&self, weights: &EdgeWeights) -> f64 {
        self.edges.iter().map(|&e| weights.get(e)).sum()
    }

    /// Along-sequence weighted distances from a point on this sequence to
    /// `(start_node, end_node)`.
    ///
    /// These are distances along the path itself, which is exactly what GMA
    /// needs: any shortest path from an interior point to the rest of the
    /// network leaves through one of the endpoints (§5).
    ///
    /// # Panics
    /// Panics if `p.edge` is not part of this sequence.
    pub fn dist_to_endpoints(&self, weights: &EdgeWeights, p: NetPoint) -> (f64, f64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| e == p.edge)
            .expect("point does not lie on this sequence");
        let before: f64 = self.edges[..idx].iter().map(|&e| weights.get(e)).sum();
        let w = weights.get(p.edge);
        let along = if self.forward[idx] {
            p.frac * w
        } else {
            (1.0 - p.frac) * w
        };
        let after: f64 = self.edges[idx + 1..].iter().map(|&e| weights.get(e)).sum();
        (before + along, after + (w - along))
    }

    /// The position index of `e` within this sequence, if present.
    pub fn edge_offset(&self, e: EdgeId) -> Option<usize> {
        self.edges.iter().position(|&x| x == e)
    }
}

/// **ST** — the sequence table: the full decomposition plus the edge → sequence
/// mapping kept by the edge table in the paper.
pub struct SequenceTable {
    seqs: Vec<Sequence>,
    edge_seq: Vec<SeqId>,
}

impl SequenceTable {
    /// Decomposes `net` into sequences.
    pub fn build(net: &RoadNetwork) -> Self {
        let mut visited = vec![false; net.num_edges()];
        let mut seqs: Vec<Sequence> = Vec::new();
        let mut edge_seq = vec![SeqId(u32::MAX); net.num_edges()];

        let walk = |start: NodeId,
                    first: EdgeId,
                    visited: &mut Vec<bool>,
                    seqs: &mut Vec<Sequence>,
                    edge_seq: &mut Vec<SeqId>| {
            if visited[first.index()] {
                return;
            }
            let id = SeqId::from_index(seqs.len());
            let mut nodes = vec![start];
            let mut edges = Vec::new();
            let mut forward = Vec::new();
            let mut cur_node = start;
            let mut cur_edge = first;
            loop {
                visited[cur_edge.index()] = true;
                edge_seq[cur_edge.index()] = id;
                let rec = net.edge(cur_edge);
                forward.push(rec.start == cur_node);
                edges.push(cur_edge);
                let next = rec.other(cur_node);
                nodes.push(next);
                if net.degree(next) != 2 || next == start {
                    break;
                }
                // Continue through the degree-2 node via its other edge.
                let (e2, _) = net
                    .adjacent(next)
                    .iter()
                    .copied()
                    .find(|&(e, _)| e != cur_edge)
                    .expect("degree-2 node must have a second incident edge");
                if visited[e2.index()] {
                    break; // closed a cycle back onto the walked path
                }
                cur_node = next;
                cur_edge = e2;
            }
            seqs.push(Sequence {
                id,
                nodes,
                edges,
                forward,
            });
        };

        // Phase 1: walk out of every intersection / terminal node.
        for n in net.node_ids() {
            if net.degree(n) != 2 {
                for &(e, _) in net.adjacent(n) {
                    walk(n, e, &mut visited, &mut seqs, &mut edge_seq);
                }
            }
        }
        // Phase 2: isolated all-degree-2 cycles; break at the smallest
        // remaining node id (the start of the first unvisited edge).
        for e in net.edge_ids() {
            if !visited[e.index()] {
                let start = net.edge(e).start;
                walk(start, e, &mut visited, &mut seqs, &mut edge_seq);
            }
        }
        Self { seqs, edge_seq }
    }

    /// Number of sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the network has no sequences (no edges).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The sequence record.
    #[inline]
    pub fn sequence(&self, id: SeqId) -> &Sequence {
        &self.seqs[id.index()]
    }

    /// The sequence containing edge `e`.
    #[inline]
    pub fn seq_of_edge(&self, e: EdgeId) -> SeqId {
        self.edge_seq[e.index()]
    }

    /// Iterator over all sequences.
    pub fn iter(&self) -> impl Iterator<Item = &Sequence> {
        self.seqs.iter()
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.seqs.capacity() * std::mem::size_of::<Sequence>()
            + self.edge_seq.capacity() * std::mem::size_of::<SeqId>();
        for s in &self.seqs {
            total += s.nodes.capacity() * std::mem::size_of::<NodeId>()
                + s.edges.capacity() * std::mem::size_of::<EdgeId>()
                + s.forward.capacity();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    /// The §5 example (Figure 11): seven sequences.
    ///
    /// ```text
    /// n8   n9
    ///   \ /
    ///    n1 ------- n2 --- n3
    ///    |          |
    ///    n7         |
    ///    |          |
    ///    n6 -- n5 --+
    ///           |
    ///           n4
    /// ```
    fn figure11() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n1 = b.add_node(1.0, 2.0); // 0
        let n2 = b.add_node(3.0, 2.0); // 1
        let n3 = b.add_node(4.0, 2.0); // 2
        let n4 = b.add_node(3.0, 0.0); // 3
        let n5 = b.add_node(3.0, 1.0); // 4
        let n6 = b.add_node(2.0, 1.0); // 5
        let n7 = b.add_node(1.0, 1.0); // 6
        let n8 = b.add_node(0.0, 3.0); // 7
        let n9 = b.add_node(2.0, 3.0); // 8
        b.add_edge_euclidean(n1, n8);
        b.add_edge_euclidean(n1, n9);
        b.add_edge_euclidean(n1, n7);
        b.add_edge_euclidean(n7, n6);
        b.add_edge_euclidean(n6, n5);
        b.add_edge_euclidean(n1, n2);
        b.add_edge_euclidean(n2, n3);
        b.add_edge_euclidean(n2, n5);
        b.add_edge_euclidean(n5, n4);
        b.build().unwrap()
    }

    fn invariants(net: &RoadNetwork, st: &SequenceTable) {
        // Every edge belongs to exactly one sequence, at a consistent offset.
        let mut seen = vec![false; net.num_edges()];
        for s in st.iter() {
            assert_eq!(s.nodes.len(), s.edges.len() + 1);
            for (i, &e) in s.edges.iter().enumerate() {
                assert!(!seen[e.index()], "edge {e:?} in two sequences");
                seen[e.index()] = true;
                assert_eq!(st.seq_of_edge(e), s.id);
                assert_eq!(s.edge_offset(e), Some(i));
                // Orientation consistency.
                let rec = net.edge(e);
                let (a, b) = if s.forward[i] {
                    (rec.start, rec.end)
                } else {
                    (rec.end, rec.start)
                };
                assert_eq!(s.nodes[i], a);
                assert_eq!(s.nodes[i + 1], b);
            }
            // Interior nodes have degree 2; endpoints don't (unless cycle).
            for &n in &s.nodes[1..s.nodes.len() - 1] {
                assert_eq!(net.degree(n), 2, "interior node {n:?} of wrong degree");
            }
            if !s.is_cycle() {
                assert_ne!(net.degree(s.start_node()), 2);
                assert_ne!(net.degree(s.end_node()), 2);
            }
        }
        assert!(seen.iter().all(|&x| x), "some edge not covered");
    }

    #[test]
    fn figure11_has_seven_sequences() {
        let net = figure11();
        let st = SequenceTable::build(&net);
        assert_eq!(st.len(), 7, "paper: seven sequences in Figure 11");
        invariants(&net, &st);
        // The long sequence n1-n7-n6-n5 exists with 3 edges.
        assert!(st.iter().any(|s| s.edges.len() == 3));
    }

    #[test]
    fn single_edge_network_is_one_sequence() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge_euclidean(a, c);
        let net = b.build().unwrap();
        let st = SequenceTable::build(&net);
        assert_eq!(st.len(), 1);
        invariants(&net, &st);
    }

    #[test]
    fn isolated_cycle_breaks_into_one_sequence() {
        let mut b = RoadNetworkBuilder::new();
        let n: Vec<_> = (0..5)
            .map(|i| {
                let a = i as f64 * 1.2566;
                b.add_node(a.cos(), a.sin())
            })
            .collect();
        for i in 0..5 {
            b.add_edge_euclidean(n[i], n[(i + 1) % 5]);
        }
        let net = b.build().unwrap();
        let st = SequenceTable::build(&net);
        assert_eq!(st.len(), 1);
        let s = st.sequence(SeqId(0));
        assert!(s.is_cycle());
        assert_eq!(s.edges.len(), 5);
        invariants(&net, &st);
    }

    #[test]
    fn along_sequence_distances() {
        // Chain 0 -1- 1 -2- 2 -1- 3 (weights 1, 2, 1), intersection only at
        // ends (degrees 1).
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        let n2 = b.add_node(3.0, 0.0);
        let n3 = b.add_node(4.0, 0.0);
        b.add_edge_euclidean(n0, n1);
        b.add_edge_euclidean(n1, n2);
        b.add_edge_euclidean(n2, n3);
        let net = b.build().unwrap();
        let w = EdgeWeights::from_base(&net);
        let st = SequenceTable::build(&net);
        assert_eq!(st.len(), 1);
        let s = st.sequence(SeqId(0));
        assert!((s.total_weight(&w) - 4.0).abs() < 1e-12);

        // Point 25% into the middle edge, in sequence orientation.
        let mid_edge = s.edges[1];
        let fwd = s.forward[1];
        let p = NetPoint::new(mid_edge, if fwd { 0.25 } else { 0.75 });
        let (ds, de) = s.dist_to_endpoints(&w, p);
        // Distances depend on which end the walk started from.
        let (lo, hi) = if ds < de { (ds, de) } else { (de, ds) };
        assert!((lo - 1.5).abs() < 1e-12);
        assert!((hi - 2.5).abs() < 1e-12);
        assert!((ds + de - 4.0).abs() < 1e-12);
    }

    #[test]
    fn distances_track_weight_updates() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        let n2 = b.add_node(2.0, 0.0);
        b.add_edge_euclidean(n0, n1);
        b.add_edge_euclidean(n1, n2);
        let net = b.build().unwrap();
        let mut w = EdgeWeights::from_base(&net);
        let st = SequenceTable::build(&net);
        let s = st.sequence(SeqId(0));
        let p = NetPoint::new(s.edges[1], 0.5);
        let before = s.dist_to_endpoints(&w, p);
        w.set(s.edges[0], 10.0);
        let after = s.dist_to_endpoints(&w, p);
        // One endpoint distance grew by 9, the other is unchanged.
        let grew = (after.0 - before.0).abs().max((after.1 - before.1).abs());
        assert!((grew - 9.0).abs() < 1e-12);
        assert!((after.0 + after.1 - s.total_weight(&w)).abs() < 1e-12);
    }

    #[test]
    fn star_network_sequences() {
        // Star: center with 4 rays, each ray one edge -> 4 sequences.
        let mut b = RoadNetworkBuilder::new();
        let c = b.add_node(0.0, 0.0);
        for i in 0..4 {
            let a = i as f64 * std::f64::consts::FRAC_PI_2;
            let n = b.add_node(a.cos(), a.sin());
            b.add_edge_euclidean(c, n);
        }
        let net = b.build().unwrap();
        let st = SequenceTable::build(&net);
        assert_eq!(st.len(), 4);
        invariants(&net, &st);
    }

    #[test]
    fn generated_network_invariants() {
        let net = crate::generators::grid_city(&crate::generators::GridCityConfig {
            nx: 6,
            ny: 6,
            seed: 3,
            ..Default::default()
        });
        let st = SequenceTable::build(&net);
        invariants(&net, &st);
        // Subdivision must have produced some multi-edge sequences.
        assert!(st.iter().any(|s| s.edges.len() >= 2));
    }
}
