//! Compact integer identifiers for every entity in the system.
//!
//! Per the performance guide, all hot identifiers are `u32` newtypes: they
//! halve the size of the adjacency and table entries compared to `usize`,
//! and they hash in a single multiply with the [`crate::hash`] hasher.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The identifier as a `usize`, for indexing into dense tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a dense-table index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id overflow"))
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

define_id!(
    /// A network node (road intersection or chain vertex).
    NodeId
);
define_id!(
    /// A network edge (road segment between two nodes).
    EdgeId
);
define_id!(
    /// A data object (the entities being monitored, e.g. pedestrians).
    ObjectId
);
define_id!(
    /// A continuous k-NN query (e.g. a vacant cab).
    QueryId
);
define_id!(
    /// A sequence: a maximal path between two degree≠2 nodes (§5).
    SeqId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n, NodeId(42));
        assert_eq!(n.index(), 42);
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", EdgeId(7)), "EdgeId(7)");
        assert_eq!(format!("{}", EdgeId(7)), "7");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        let mut v = vec![QueryId(3), QueryId(1), QueryId(2)];
        v.sort();
        assert_eq!(v, vec![QueryId(1), QueryId(2), QueryId(3)]);
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }
}
