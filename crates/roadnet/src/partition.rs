//! Horizontal partitioning of a road network into connected regions.
//!
//! The sharded monitoring engine (`rnn-engine`) decomposes the network into
//! `S` regions and runs one monitor per region on its own thread. This
//! module provides the decomposition: a **grid-seeded multi-source BFS**
//! partitioner. Seeds are spread over a virtual grid laid across the
//! network's bounding box (so regions are spatially coherent), then all
//! seeds grow simultaneously breadth-first; every node joins the region
//! that reaches it first. Edges follow the endpoint that was reached
//! earlier, which keeps each region's edge set connected: the BFS tree edge
//! into a node always belongs to the node's own region.
//!
//! A [`ShardView`] summarises one region: its edges, its nodes, and its
//! **boundary nodes** — the nodes incident to both an edge of the region
//! and an edge of another region. Every path from a point inside the region
//! to a point outside passes through a boundary node, which is exactly the
//! property the engine's halo-replication correctness argument needs.

use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId};

/// The assignment of every node and edge to one of `S` shards.
#[derive(Clone, Debug)]
pub struct NetworkPartition {
    num_shards: usize,
    node_shard: Vec<u32>,
    edge_shard: Vec<u32>,
    views: Vec<ShardView>,
}

/// One shard's slice of the network.
#[derive(Clone, Debug)]
pub struct ShardView {
    /// The shard this view describes.
    pub shard: u32,
    /// Edges owned by the shard.
    pub edges: Vec<EdgeId>,
    /// Nodes owned by the shard.
    pub nodes: Vec<NodeId>,
    /// Nodes incident to at least one owned edge *and* at least one foreign
    /// edge. Every path leaving the region crosses one of these.
    pub boundary_nodes: Vec<NodeId>,
}

impl NetworkPartition {
    /// Partitions `net` into `num_shards` regions.
    ///
    /// # Panics
    /// Panics if `num_shards` is 0 or exceeds 64 (the engine tracks halo
    /// membership in a 64-bit mask per edge).
    pub fn build(net: &RoadNetwork, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        assert!(num_shards <= 64, "at most 64 shards supported");
        let n = net.num_nodes();

        let seeds = grid_seeds(net, num_shards);

        // Multi-source BFS: FIFO over (node, shard); first arrival wins.
        // Seeding in shard order makes equal-round ties deterministic
        // (lower shard id wins).
        const UNASSIGNED: u32 = u32::MAX;

        fn flood(
            net: &RoadNetwork,
            queue: &mut std::collections::VecDeque<NodeId>,
            node_shard: &mut [u32],
            order: &mut [u32],
            next_order: &mut u32,
        ) {
            while let Some(u) = queue.pop_front() {
                let s = node_shard[u.index()];
                for &(_, v) in net.adjacent(u) {
                    if node_shard[v.index()] == UNASSIGNED {
                        node_shard[v.index()] = s;
                        order[v.index()] = *next_order;
                        *next_order += 1;
                        queue.push_back(v);
                    }
                }
            }
        }

        let mut node_shard = vec![UNASSIGNED; n];
        let mut order = vec![u32::MAX; n];
        let mut next_order: u32 = 0;
        let mut queue = std::collections::VecDeque::new();
        for (s, &seed) in seeds.iter().enumerate() {
            if node_shard[seed.index()] == UNASSIGNED {
                node_shard[seed.index()] = s as u32;
                order[seed.index()] = next_order;
                next_order += 1;
                queue.push_back(seed);
            }
        }
        flood(
            net,
            &mut queue,
            &mut node_shard,
            &mut order,
            &mut next_order,
        );

        // Disconnected leftovers: give each remaining component to the
        // currently smallest shard, whole, so shards stay internally
        // connected per component.
        let mut sizes = vec![0usize; num_shards];
        for &s in &node_shard {
            if s != UNASSIGNED {
                sizes[s as usize] += 1;
            }
        }
        for i in 0..n {
            if node_shard[i] != UNASSIGNED {
                continue;
            }
            let target = sizes
                .iter()
                .enumerate()
                .min_by_key(|&(s, &c)| (c, s))
                .map(|(s, _)| s as u32)
                .expect("at least one shard");
            let start = NodeId::from_index(i);
            node_shard[start.index()] = target;
            order[start.index()] = next_order;
            next_order += 1;
            queue.push_back(start);
            flood(
                net,
                &mut queue,
                &mut node_shard,
                &mut order,
                &mut next_order,
            );
            sizes.fill(0);
            for &s in &node_shard {
                if s != UNASSIGNED {
                    sizes[s as usize] += 1;
                }
            }
        }

        // Edges follow the earlier-reached endpoint: the BFS tree edge into
        // a node then always lands in the node's own shard, keeping each
        // region's edge set connected.
        let mut edge_shard = Vec::with_capacity(net.num_edges());
        for e in net.edge_ids() {
            let rec = net.edge(e);
            let (a, b) = (rec.start, rec.end);
            let s = if order[a.index()] <= order[b.index()] {
                node_shard[a.index()]
            } else {
                node_shard[b.index()]
            };
            edge_shard.push(s);
        }

        let views = build_views(net, num_shards, &node_shard, &edge_shard);
        Self {
            num_shards,
            node_shard,
            edge_shard,
            views,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Owning shard of a node.
    #[inline]
    pub fn shard_of_node(&self, n: NodeId) -> u32 {
        self.node_shard[n.index()]
    }

    /// Owning shard of an edge (and of every object or query on it).
    #[inline]
    pub fn shard_of_edge(&self, e: EdgeId) -> u32 {
        self.edge_shard[e.index()]
    }

    /// The view of shard `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    #[inline]
    pub fn view(&self, s: usize) -> &ShardView {
        &self.views[s]
    }

    /// All shard views, in shard order.
    #[inline]
    pub fn views(&self) -> &[ShardView] {
        &self.views
    }

    /// Moves the ownership of the given **cells** (edges — the atomic unit
    /// of partition ownership, and of everything resident on them) to new
    /// shards, then re-derives node assignments and rebuilds the shard
    /// views.
    ///
    /// This is the mutation primitive of the engine's dynamic load-aware
    /// re-partitioning: the migration planner picks boundary cells of an
    /// overloaded shard and hands them to an underloaded neighbour. Node
    /// ownership follows the edges deterministically — a node keeps its
    /// shard while that shard still owns one of its incident edges, and
    /// otherwise adopts the smallest incident owner. The view/boundary
    /// rebuild is O(V + E) (entity hand-off in the engine stays O(moved
    /// cells)); rebalances are hysteresis-limited, so this never sits on
    /// the per-tick path.
    ///
    /// # Panics
    /// Panics if a target shard is out of range or an edge id is invalid.
    pub fn reassign(&mut self, net: &RoadNetwork, moves: &[(EdgeId, u32)]) {
        for &(e, s) in moves {
            assert!(
                (s as usize) < self.num_shards,
                "target shard {s} out of range (num_shards = {})",
                self.num_shards
            );
            self.edge_shard[e.index()] = s;
        }
        // Re-home the endpoints of moved edges: ownership of a node is only
        // meaningful while its shard owns an incident edge.
        for &(e, _) in moves {
            let rec = net.edge(e);
            for n in [rec.start, rec.end] {
                let cur = self.node_shard[n.index()];
                let mut keep = false;
                let mut min_owner = u32::MAX;
                for &(e2, _) in net.adjacent(n) {
                    let owner = self.edge_shard[e2.index()];
                    keep |= owner == cur;
                    min_owner = min_owner.min(owner);
                }
                if !keep && min_owner != u32::MAX {
                    self.node_shard[n.index()] = min_owner;
                }
            }
        }
        self.views = build_views(net, self.num_shards, &self.node_shard, &self.edge_shard);
    }

    /// The cells shard `from` could hand to shard `to` without tearing a
    /// hole in the middle of its region: edges owned by `from` with an
    /// endpoint that touches an edge owned by `to` (i.e. cells on the
    /// `from`/`to` border). Sorted by edge id for determinism.
    pub fn boundary_cells_between(&self, net: &RoadNetwork, from: u32, to: u32) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = self.views[from as usize]
            .edges
            .iter()
            .copied()
            .filter(|&e| {
                let rec = net.edge(e);
                [rec.start, rec.end].into_iter().any(|n| {
                    net.adjacent(n)
                        .iter()
                        .any(|&(e2, _)| self.edge_shard[e2.index()] == to)
                })
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Checks the structural partition invariants (tests, proptests, and
    /// post-migration debugging): every node and edge is owned by exactly
    /// one in-range shard, the views partition the node and edge sets
    /// exactly, and the boundary-node lists are exactly the nodes incident
    /// to both an owned and a foreign edge.
    pub fn validate(&self, net: &RoadNetwork) -> Result<(), String> {
        if self.node_shard.len() != net.num_nodes() || self.edge_shard.len() != net.num_edges() {
            return Err("assignment tables do not match the network".into());
        }
        for e in net.edge_ids() {
            let s = self.edge_shard[e.index()];
            if s as usize >= self.num_shards {
                return Err(format!("edge {e:?} owned by out-of-range shard {s}"));
            }
            if !self.views[s as usize].edges.contains(&e) {
                return Err(format!("edge {e:?} missing from view of shard {s}"));
            }
        }
        let total_edges: usize = self.views.iter().map(|v| v.edges.len()).sum();
        if total_edges != net.num_edges() {
            return Err(format!(
                "views list {total_edges} edges, network has {} — an edge is owned by \
                 more or fewer than one shard",
                net.num_edges()
            ));
        }
        let total_nodes: usize = self.views.iter().map(|v| v.nodes.len()).sum();
        if total_nodes != net.num_nodes() {
            return Err(format!(
                "views list {total_nodes} nodes, network has {}",
                net.num_nodes()
            ));
        }
        for n in net.node_ids() {
            let s = self.node_shard[n.index()];
            if s as usize >= self.num_shards {
                return Err(format!("node {n:?} owned by out-of-range shard {s}"));
            }
        }
        for v in &self.views {
            for n in net.node_ids() {
                let owned = net
                    .adjacent(n)
                    .iter()
                    .any(|&(e, _)| self.edge_shard[e.index()] == v.shard);
                let foreign = net
                    .adjacent(n)
                    .iter()
                    .any(|&(e, _)| self.edge_shard[e.index()] != v.shard);
                let listed = v.boundary_nodes.contains(&n);
                if listed != (owned && foreign) {
                    return Err(format!(
                        "shard {}: node {n:?} boundary status wrong (listed {listed}, \
                         owned {owned}, foreign {foreign})",
                        v.shard
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of edges whose endpoints live in different shards — the
    /// classic partition-quality metric (smaller is better).
    pub fn edge_cut(&self, net: &RoadNetwork) -> usize {
        net.edge_ids()
            .filter(|&e| {
                let rec = net.edge(e);
                self.node_shard[rec.start.index()] != self.node_shard[rec.end.index()]
            })
            .count()
    }

    /// Whether shard `s`'s edge set is connected when restricted to the
    /// subgraph it induces (per connected component of the full network).
    pub fn shard_is_connected(&self, net: &RoadNetwork, s: usize) -> bool {
        let view = &self.views[s];
        if view.edges.is_empty() {
            return true;
        }
        // Union the endpoints of owned edges, then flood along owned edges
        // only, starting one flood per full-network component.
        let mut member = vec![false; net.num_nodes()];
        for &e in &view.edges {
            let rec = net.edge(e);
            member[rec.start.index()] = true;
            member[rec.end.index()] = true;
        }
        let mut seen = vec![false; net.num_nodes()];
        let mut components = 0usize;
        for &start_edge in &view.edges {
            let start = net.edge(start_edge).start;
            if seen[start.index()] {
                continue;
            }
            // Is this whole flood a separate component of the *network*?
            components += 1;
            let mut stack = vec![start];
            seen[start.index()] = true;
            while let Some(u) = stack.pop() {
                for &(e, v) in net.adjacent(u) {
                    if self.edge_shard[e.index()] == s as u32 && !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
        }
        // Count how many full-network components hold at least one owned
        // edge; a connected shard has exactly one flood per such component.
        let mut net_seen = vec![false; net.num_nodes()];
        let mut net_components_with_edges = 0usize;
        for n in net.node_ids() {
            if net_seen[n.index()] || !member[n.index()] {
                continue;
            }
            net_components_with_edges += 1;
            let mut stack = vec![n];
            net_seen[n.index()] = true;
            while let Some(u) = stack.pop() {
                for &(_, v) in net.adjacent(u) {
                    if !net_seen[v.index()] {
                        net_seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
        }
        components == net_components_with_edges
    }
}

/// Spreads `num_shards` seed nodes over a virtual grid covering the
/// network's bounding box: one seed per grid cell, the node nearest the
/// cell's center. Empty cells fall back to the globally farthest
/// yet-unused node so seed count always equals `num_shards` (capped by the
/// node count).
fn grid_seeds(net: &RoadNetwork, num_shards: usize) -> Vec<NodeId> {
    let n = net.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let shards = num_shards.min(n);
    let bounds = net.bounds();
    let (w, h) = (bounds.width().max(1e-12), bounds.height().max(1e-12));
    // Grid shape follows the aspect ratio so cells stay near-square.
    let mut gx = ((shards as f64 * w / h).sqrt().round() as usize).clamp(1, shards);
    let gy = shards.div_ceil(gx);
    gx = shards.div_ceil(gy);

    let mut seeds: Vec<NodeId> = Vec::with_capacity(shards);
    let mut used = vec![false; n];
    for cell in 0..shards {
        let (cx, cy) = (cell % gx, cell / gx);
        let center_x = bounds.lo.x + (cx as f64 + 0.5) / gx as f64 * w;
        let center_y = bounds.lo.y + (cy as f64 + 0.5) / gy as f64 * h;
        let best = net
            .node_ids()
            .filter(|m| !used[m.index()])
            .min_by(|&a, &b| {
                let da = dist2(net, a, center_x, center_y);
                let db = dist2(net, b, center_x, center_y);
                da.partial_cmp(&db).unwrap().then_with(|| a.cmp(&b))
            })
            .expect("fewer seeds than nodes");
        used[best.index()] = true;
        seeds.push(best);
    }
    seeds
}

#[inline]
fn dist2(net: &RoadNetwork, n: NodeId, x: f64, y: f64) -> f64 {
    let p = net.node_pos(n);
    (p.x - x) * (p.x - x) + (p.y - y) * (p.y - y)
}

fn build_views(
    net: &RoadNetwork,
    num_shards: usize,
    node_shard: &[u32],
    edge_shard: &[u32],
) -> Vec<ShardView> {
    let mut views: Vec<ShardView> = (0..num_shards)
        .map(|s| ShardView {
            shard: s as u32,
            edges: Vec::new(),
            nodes: Vec::new(),
            boundary_nodes: Vec::new(),
        })
        .collect();
    for e in net.edge_ids() {
        views[edge_shard[e.index()] as usize].edges.push(e);
    }
    for node in net.node_ids() {
        views[node_shard[node.index()] as usize].nodes.push(node);
        // Boundary: touches an owned and a foreign edge. A node can be a
        // boundary node of several shards (one per incident edge shard).
        let mut touched: u64 = 0;
        for &(e, _) in net.adjacent(node) {
            touched |= 1 << edge_shard[e.index()];
        }
        if touched.count_ones() >= 2 {
            let mut mask = touched;
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                views[s].boundary_nodes.push(node);
                mask &= mask - 1;
            }
        }
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_city, GridCityConfig};

    fn net(nx: usize, ny: usize, seed: u64) -> RoadNetwork {
        grid_city(&GridCityConfig {
            nx,
            ny,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn every_node_and_edge_assigned() {
        let net = net(8, 8, 1);
        for s in [1, 2, 4, 8] {
            let p = NetworkPartition::build(&net, s);
            assert_eq!(p.num_shards(), s);
            for n in net.node_ids() {
                assert!((p.shard_of_node(n) as usize) < s);
            }
            for e in net.edge_ids() {
                assert!((p.shard_of_edge(e) as usize) < s);
            }
            let total_edges: usize = p.views().iter().map(|v| v.edges.len()).sum();
            assert_eq!(total_edges, net.num_edges());
            let total_nodes: usize = p.views().iter().map(|v| v.nodes.len()).sum();
            assert_eq!(total_nodes, net.num_nodes());
        }
    }

    #[test]
    fn single_shard_owns_everything_with_no_boundary() {
        let net = net(6, 6, 2);
        let p = NetworkPartition::build(&net, 1);
        assert_eq!(p.view(0).edges.len(), net.num_edges());
        assert!(p.view(0).boundary_nodes.is_empty());
        assert_eq!(p.edge_cut(&net), 0);
    }

    #[test]
    fn shards_are_connected() {
        for seed in [1, 2, 3, 7] {
            let net = net(9, 9, seed);
            for s in [2, 3, 4, 8] {
                let p = NetworkPartition::build(&net, s);
                for i in 0..s {
                    assert!(
                        p.shard_is_connected(&net, i),
                        "seed {seed}, {s} shards: shard {i} disconnected"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_nodes_touch_both_sides() {
        let net = net(8, 8, 3);
        let p = NetworkPartition::build(&net, 4);
        let mut any_boundary = false;
        for v in p.views() {
            for &b in &v.boundary_nodes {
                any_boundary = true;
                let mut owned = false;
                let mut foreign = false;
                for &(e, _) in net.adjacent(b) {
                    if p.shard_of_edge(e) == v.shard {
                        owned = true;
                    } else {
                        foreign = true;
                    }
                }
                assert!(
                    owned && foreign,
                    "node {b:?} is not a real boundary of {}",
                    v.shard
                );
            }
        }
        assert!(any_boundary, "a 4-way split of a grid must have boundaries");
    }

    #[test]
    fn every_border_crossing_passes_a_boundary_node() {
        // For each foreign edge incident to an owned node, that node must
        // be listed as a boundary node of the owned shard.
        let net = net(7, 7, 4);
        let p = NetworkPartition::build(&net, 4);
        for v in p.views() {
            let boundary: std::collections::HashSet<_> = v.boundary_nodes.iter().collect();
            for &e in &v.edges {
                let rec = net.edge(e);
                for n in [rec.start, rec.end] {
                    let crosses = net
                        .adjacent(n)
                        .iter()
                        .any(|&(e2, _)| p.shard_of_edge(e2) != v.shard);
                    if crosses {
                        assert!(boundary.contains(&n), "missing boundary node {n:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let net = net(12, 12, 5);
        let p = NetworkPartition::build(&net, 4);
        let sizes: Vec<usize> = p.views().iter().map(|v| v.edges.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(
            *min * 4 >= *max,
            "grid-seeded BFS should not be wildly unbalanced: {sizes:?}"
        );
    }

    #[test]
    fn disconnected_networks_are_fully_assigned() {
        use crate::graph::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        // Two separate segments far apart.
        let a0 = b.add_node(0.0, 0.0);
        let a1 = b.add_node(1.0, 0.0);
        let c0 = b.add_node(100.0, 0.0);
        let c1 = b.add_node(101.0, 0.0);
        b.add_edge_euclidean(a0, a1);
        b.add_edge_euclidean(c0, c1);
        let net = b.build().unwrap();
        let p = NetworkPartition::build(&net, 2);
        for e in net.edge_ids() {
            assert!(p.shard_of_edge(e) < 2);
        }
        for i in 0..2 {
            assert!(p.shard_is_connected(&net, i));
        }
    }

    #[test]
    fn deterministic() {
        let net = net(8, 8, 6);
        let a = NetworkPartition::build(&net, 4);
        let b = NetworkPartition::build(&net, 4);
        for e in net.edge_ids() {
            assert_eq!(a.shard_of_edge(e), b.shard_of_edge(e));
        }
    }

    #[test]
    fn fresh_builds_validate() {
        for s in [1, 2, 4, 8] {
            let net = net(8, 8, 7);
            let p = NetworkPartition::build(&net, s);
            p.validate(&net).unwrap();
        }
    }

    #[test]
    fn reassign_moves_cells_and_keeps_invariants() {
        let net = net(8, 8, 9);
        let mut p = NetworkPartition::build(&net, 4);
        let cells = p.boundary_cells_between(&net, 0, 1);
        assert!(!cells.is_empty(), "adjacent shards share boundary cells");
        let take = cells.len().div_ceil(2);
        let moves: Vec<(EdgeId, u32)> = cells[..take].iter().map(|&e| (e, 1)).collect();
        p.reassign(&net, &moves);
        for &(e, s) in &moves {
            assert_eq!(p.shard_of_edge(e), s);
        }
        p.validate(&net).unwrap();
        // Views reflect the move.
        for &(e, _) in &moves {
            assert!(p.view(1).edges.contains(&e));
            assert!(!p.view(0).edges.contains(&e));
        }
    }

    #[test]
    fn reassign_everything_empties_a_shard() {
        // Degenerate but legal: hand shard 0's whole region away. The
        // emptied shard must survive with no edges and no boundary.
        let net = net(6, 6, 10);
        let mut p = NetworkPartition::build(&net, 2);
        let moves: Vec<(EdgeId, u32)> = p.view(0).edges.iter().map(|&e| (e, 1)).collect();
        p.reassign(&net, &moves);
        p.validate(&net).unwrap();
        assert!(p.view(0).edges.is_empty());
        assert!(p.view(0).boundary_nodes.is_empty());
        assert_eq!(p.view(1).edges.len(), net.num_edges());
        assert_eq!(p.edge_cut(&net), 0);
    }

    #[test]
    fn boundary_cells_touch_the_target_shard() {
        let net = net(8, 8, 11);
        let p = NetworkPartition::build(&net, 4);
        for from in 0..4u32 {
            for to in 0..4u32 {
                if from == to {
                    continue;
                }
                for e in p.boundary_cells_between(&net, from, to) {
                    assert_eq!(p.shard_of_edge(e), from);
                    let rec = net.edge(e);
                    assert!([rec.start, rec.end].into_iter().any(|n| {
                        net.adjacent(n)
                            .iter()
                            .any(|&(e2, _)| p.shard_of_edge(e2) == to)
                    }));
                }
            }
        }
    }
}
