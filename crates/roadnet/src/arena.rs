//! A slab/CSR arena for the per-edge lists on the hot tick path.
//!
//! The monitors keep several *per-edge* tables (resident objects, influence
//! lists, replica buckets). The obvious `Vec<Vec<T>>` layout costs one heap
//! allocation per non-empty edge, scatters the lists across the heap, and
//! re-allocates whenever a list outgrows its capacity — on every tick, in
//! the middle of the expansion loops.
//!
//! [`SpanArena`] flattens all lists of one table into a **single backing
//! buffer**: each slot (edge) owns a contiguous *span* `(offset, len,
//! capacity)`. Spans grow in power-of-two size classes; outgrown spans are
//! recycled through per-class **free lists**, so in steady state a tick
//! performs **zero heap allocation** — growth carves from the buffer's
//! existing capacity or reuses a freed span. The only true allocations are
//! backing-buffer reallocation (amortised doubling, counted in
//! [`SpanArena::alloc_events`]) and the rare free-list bookkeeping growth.
//!
//! The element type must be `Copy`: span growth moves elements with a
//! `memcpy`-style `copy_within`, and carving materialises the span's spare
//! capacity by replicating a witness value (only the first `len` elements
//! of a span are ever observable).

/// One slot's view into the backing buffer.
#[derive(Clone, Copy, Debug, Default)]
struct Span {
    off: u32,
    len: u32,
    cap: u32,
}

/// Smallest span capacity carved for a slot's first element.
const MIN_CAP: u32 = 4;

/// A flat arena of per-slot lists with free-list span reuse.
#[derive(Clone, Debug)]
pub struct SpanArena<T: Copy> {
    buf: Vec<T>,
    spans: Vec<Span>,
    /// Freed spans by power-of-two capacity class: `free[c]` holds offsets
    /// of spans with capacity `MIN_CAP << c`.
    free: Vec<Vec<u32>>,
    /// Times the backing buffer had to reallocate (capacity growth). Zero
    /// across a tick means the tick did no list-driven heap allocation.
    allocs: u64,
}

impl<T: Copy> Default for SpanArena<T> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<T: Copy> SpanArena<T> {
    /// An arena with `num_slots` empty lists.
    ///
    /// Construction pre-reserves one [`MIN_CAP`]-sized span of backing
    /// capacity per slot, so first-touch carves during operation extend the
    /// buffer *within* existing capacity instead of reallocating mid-tick.
    /// This is a one-time construction cost, not an alloc event.
    pub fn new(num_slots: usize) -> Self {
        Self {
            buf: Vec::with_capacity(num_slots.saturating_mul(MIN_CAP as usize)),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            spans: vec![Span::default(); num_slots],
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            free: Vec::new(),
            allocs: 0,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.spans.len()
    }

    /// The elements of `slot`.
    #[inline]
    pub fn get(&self, slot: usize) -> &[T] {
        let s = self.spans[slot];
        &self.buf[s.off as usize..(s.off + s.len) as usize]
    }

    /// The elements of `slot`, mutably.
    #[inline]
    pub fn get_mut(&mut self, slot: usize) -> &mut [T] {
        let s = self.spans[slot];
        &mut self.buf[s.off as usize..(s.off + s.len) as usize]
    }

    /// Number of elements in `slot`.
    #[inline]
    pub fn len_of(&self, slot: usize) -> usize {
        self.spans[slot].len as usize
    }

    /// Free-list class of a span capacity (capacities are `MIN_CAP << c`).
    #[inline]
    fn class_of(cap: u32) -> usize {
        debug_assert!(cap.is_power_of_two() && cap >= MIN_CAP);
        (cap / MIN_CAP).trailing_zeros() as usize
    }

    /// Carves or recycles a span of exactly `cap` (a power of two ≥
    /// [`MIN_CAP`]), materialising fresh buffer space with `witness`.
    ///
    /// When the buffer must grow it reserves ~4× the current capacity:
    /// high-water marks in a stationary workload creep logarithmically
    /// (new per-edge records), so the aggressive factor pushes further
    /// reallocations out beyond any realistic run length — steady-state
    /// ticks stay allocation-free.
    fn acquire(&mut self, cap: u32, witness: T) -> u32 {
        let class = Self::class_of(cap);
        if let Some(off) = self.free.get_mut(class).and_then(Vec::pop) {
            return off;
        }
        let off = self.buf.len();
        let need = off + cap as usize;
        if need > self.buf.capacity() {
            self.allocs += 1;
            let target = need.max(self.buf.capacity().saturating_mul(4));
            self.buf.reserve_exact(target - off);
        }
        self.buf.resize(need, witness);
        u32::try_from(off).expect("arena buffer exceeds u32 offsets")
    }

    /// Appends `value` to `slot`, growing its span as needed. Returns the
    /// element's index within the slot.
    pub fn push(&mut self, slot: usize, value: T) -> usize {
        let s = self.spans[slot];
        if s.len < s.cap {
            self.buf[(s.off + s.len) as usize] = value;
            self.spans[slot].len += 1;
            return s.len as usize;
        }
        // Outgrown: acquire the next size class, move, free the old span.
        let new_cap = (s.cap * 2).max(MIN_CAP);
        let new_off = self.acquire(new_cap, value);
        self.buf
            .copy_within(s.off as usize..(s.off + s.len) as usize, new_off as usize);
        self.buf[(new_off + s.len) as usize] = value;
        if s.cap >= MIN_CAP {
            let class = Self::class_of(s.cap);
            if self.free.len() <= class {
                // lint: allow(hot-path-alloc): amortized capacity growth; counted by alloc_events and pinned by the zero-alloc CI gate
                self.free.resize_with(class + 1, Vec::new);
            }
            self.free[class].push(s.off);
        }
        self.spans[slot] = Span {
            off: new_off,
            len: s.len + 1,
            cap: new_cap,
        };
        s.len as usize
    }

    /// Removes and returns the element at `idx` of `slot`, moving the
    /// slot's last element into its place (`Vec::swap_remove` semantics —
    /// the caller can read the moved element at `idx` afterwards to fix up
    /// positional back-references).
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds for the slot.
    pub fn swap_remove(&mut self, slot: usize, idx: usize) -> T {
        let s = self.spans[slot];
        assert!((idx as u32) < s.len, "swap_remove index out of bounds");
        let last = (s.off + s.len - 1) as usize;
        let at = s.off as usize + idx;
        let out = self.buf[at];
        self.buf[at] = self.buf[last];
        self.spans[slot].len -= 1;
        out
    }

    /// Backing-buffer reallocation count (see the module docs). A tick-path
    /// steady state holds this constant.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Returns the alloc-event count accumulated since the last take and
    /// resets it (monitors fold this into their per-tick counters).
    pub fn take_alloc_events(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// Approximate resident bytes: carved spans (the buffer's used length),
    /// the span table, and the free lists. Deliberately excludes the
    /// untouched part of the construction-time reservation — that is
    /// workload-independent scratch headroom, and including it would let a
    /// fixed constant dominate the state-size comparisons the benchmarks
    /// report.
    pub fn memory_bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<T>()
            + self.spans.capacity() * std::mem::size_of::<Span>()
            + self
                .free
                .iter()
                .map(|f| f.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

/// A slab of fixed-size slots with free-list recycling — the pooled-record
/// sibling of [`SpanArena`]'s pooled lists.
///
/// Callers that keep many small linked structures alive at once (e.g. the
/// monitor-wide pool of expansion-tree nodes) allocate each record as one
/// slot and wire the structures together with `u32` slot indices. Freeing
/// pushes the index onto a free list whose capacity is kept at least as
/// large as the slab, so in steady state both `alloc` and `free` are
/// pointer-free array operations with **zero heap allocation** — the only
/// true allocations are slab capacity growth (amortised doubling, counted
/// in [`SlotPool::take_alloc_events`]).
///
/// Freed slots keep their previous contents until reallocated; a caller
/// tearing down a linked structure may therefore keep *reading* nodes it
/// has already freed for the duration of the walk (nothing allocates in
/// between), which is what makes stackless post-order teardown possible.
#[derive(Clone, Debug)]
pub struct SlotPool<T> {
    slab: Vec<T>,
    /// Indices of freed slots, reused LIFO.
    free: Vec<u32>,
    /// Slab capacity growth events (see the type docs).
    allocs: u64,
    /// Slots served from the free list instead of fresh slab space.
    recycled: u64,
}

impl<T> Default for SlotPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotPool<T> {
    /// An empty pool (allocates nothing until the first [`Self::alloc`]).
    pub fn new() -> Self {
        Self {
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            slab: Vec::new(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            free: Vec::new(),
            allocs: 0,
            recycled: 0,
        }
    }

    /// Total slots ever carved (live + free).
    #[inline]
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Whether the pool has never carved a slot.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Currently live (allocated, not freed) slots.
    #[inline]
    pub fn live(&self) -> usize {
        self.slab.len() - self.free.len()
    }

    /// Allocates a slot holding `value`, recycling a freed slot when one
    /// exists. O(1); allocation-free except on slab capacity growth.
    pub fn alloc(&mut self, value: T) -> u32 {
        if let Some(i) = self.free.pop() {
            self.recycled += 1;
            self.slab[i as usize] = value;
            return i;
        }
        if self.slab.len() == self.slab.capacity() {
            self.allocs += 1;
            // 4x growth, like the span arena: high-water marks creep
            // logarithmically, so the aggressive factor pushes further
            // reallocations out beyond any realistic run length.
            let target = (self.slab.capacity() * 4).max(64);
            self.slab.reserve_exact(target - self.slab.len());
            // The free list can never hold more entries than the slab has
            // slots; growing it in lock-step here means `free` never
            // reallocates on its own.
            if self.free.capacity() < self.slab.capacity() {
                let need = self.slab.capacity() - self.free.len();
                self.free.reserve_exact(need);
            }
        }
        let i = u32::try_from(self.slab.len()).expect("slot pool exceeds u32 indices");
        self.slab.push(value);
        i
    }

    /// Pre-provisions slab (and free-list) capacity for at least
    /// `total_slots` slots **without** counting an alloc event: this is
    /// deliberate warm-up at construction time (e.g. a monitor built with
    /// a tree-pool sizing hint), not adaptive growth on the tick path, so
    /// it must not trip the zero-alloc steady-state accounting.
    pub fn reserve(&mut self, total_slots: usize) {
        if self.slab.capacity() < total_slots {
            self.slab.reserve_exact(total_slots - self.slab.len());
        }
        if self.free.capacity() < self.slab.capacity() {
            let need = self.slab.capacity() - self.free.len();
            self.free.reserve_exact(need);
        }
    }

    /// Returns `slot` to the free list. The slot's contents stay readable
    /// until it is re-allocated. O(1), never allocates.
    ///
    /// # Panics
    /// Panics (debug builds) on an out-of-range or already-free slot.
    pub fn free(&mut self, slot: u32) {
        debug_assert!((slot as usize) < self.slab.len(), "free of uncarved slot");
        debug_assert!(!self.free.contains(&slot), "double free of slot {slot}");
        self.free.push(slot);
    }

    /// Slab capacity growth events since the last take.
    pub fn take_alloc_events(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// Free-list reuses since the last take.
    pub fn take_recycled(&mut self) -> u64 {
        std::mem::take(&mut self.recycled)
    }

    /// Approximate resident bytes (slab + free list).
    pub fn memory_bytes(&self) -> usize {
        self.slab.capacity() * std::mem::size_of::<T>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

impl<T> std::ops::Index<u32> for SlotPool<T> {
    type Output = T;

    #[inline]
    fn index(&self, slot: u32) -> &T {
        &self.slab[slot as usize]
    }
}

impl<T> std::ops::IndexMut<u32> for SlotPool<T> {
    #[inline]
    fn index_mut(&mut self, slot: u32) -> &mut T {
        &mut self.slab[slot as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut a: SpanArena<u32> = SpanArena::new(3);
        assert_eq!(a.num_slots(), 3);
        for i in 0..10 {
            a.push(1, i);
        }
        a.push(0, 99);
        assert_eq!(a.get(1), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(a.get(0), &[99]);
        assert!(a.get(2).is_empty());
        assert_eq!(a.len_of(1), 10);
    }

    #[test]
    fn swap_remove_moves_last() {
        let mut a: SpanArena<u32> = SpanArena::new(1);
        for i in 0..5 {
            a.push(0, i);
        }
        assert_eq!(a.swap_remove(0, 1), 1);
        assert_eq!(a.get(0), &[0, 4, 2, 3]);
        assert_eq!(a.swap_remove(0, 3), 3);
        assert_eq!(a.get(0), &[0, 4, 2]);
    }

    #[test]
    fn freed_spans_are_recycled() {
        let mut a: SpanArena<u64> = SpanArena::new(2);
        // Grow slot 0 through several classes, freeing 4- and 8-spans.
        for i in 0..9 {
            a.push(0, i);
        }
        let bytes_before = a.buf.len();
        // Slot 1 should reuse the freed 4-span (and then the freed 8-span)
        // without extending the buffer.
        for i in 0..8 {
            a.push(1, i);
        }
        assert_eq!(a.buf.len(), bytes_before, "freed spans must be reused");
        assert_eq!(a.get(1), (0..8).collect::<Vec<_>>().as_slice());
        assert_eq!(a.get(0), (0..9).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn alloc_events_go_quiet_in_steady_state() {
        let mut a: SpanArena<u32> = SpanArena::new(8);
        for round in 0..4u32 {
            for s in 0..8 {
                for i in 0..16 {
                    a.push(s, round * 100 + i);
                }
            }
            for s in 0..8 {
                while a.len_of(s) > 0 {
                    a.swap_remove(s, 0);
                }
            }
        }
        a.take_alloc_events();
        // Same churn again: all spans and capacity already exist.
        for s in 0..8 {
            for i in 0..16 {
                a.push(s, i);
            }
        }
        assert_eq!(a.alloc_events(), 0, "steady-state churn must not allocate");
    }

    #[test]
    fn get_mut_allows_in_place_edits() {
        let mut a: SpanArena<i32> = SpanArena::new(1);
        a.push(0, 1);
        a.push(0, 2);
        a.get_mut(0)[1] = 7;
        assert_eq!(a.get(0), &[1, 7]);
    }

    #[test]
    fn memory_is_accounted() {
        let mut a: SpanArena<u64> = SpanArena::new(4);
        a.push(2, 5);
        assert!(a.memory_bytes() > 0);
    }

    #[test]
    fn slot_pool_allocates_and_recycles() {
        let mut p: SlotPool<u64> = SlotPool::new();
        let a = p.alloc(10);
        let b = p.alloc(20);
        assert_eq!(p[a], 10);
        assert_eq!(p[b], 20);
        assert_eq!(p.live(), 2);
        p.free(a);
        assert_eq!(p.live(), 1);
        // Freed contents stay readable until reallocated.
        assert_eq!(p[a], 10);
        let c = p.alloc(30);
        assert_eq!(c, a, "free list is LIFO");
        assert_eq!(p[c], 30);
        assert_eq!(p.take_recycled(), 1);
        p[b] = 21;
        assert_eq!(p[b], 21);
        assert!(p.memory_bytes() > 0);
    }

    #[test]
    fn slot_pool_steady_state_is_allocation_free() {
        let mut p: SlotPool<u32> = SlotPool::new();
        let mut slots = Vec::new();
        for i in 0..100 {
            slots.push(p.alloc(i));
        }
        p.take_alloc_events();
        // Churn entirely within the carved capacity: no further allocs.
        for _ in 0..50 {
            for &s in &slots {
                p.free(s);
            }
            slots.clear();
            for i in 0..100 {
                slots.push(p.alloc(i));
            }
        }
        assert_eq!(
            p.take_alloc_events(),
            0,
            "steady-state slot churn must not grow the slab"
        );
        assert_eq!(p.live(), 100);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn slot_pool_double_free_is_caught() {
        let mut p: SlotPool<u8> = SlotPool::new();
        let a = p.alloc(1);
        p.free(a);
        p.free(a);
    }
}
