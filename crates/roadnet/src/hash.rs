//! A fast, non-cryptographic hasher for integer-keyed tables.
//!
//! The default `SipHash 1-3` hasher of `std::collections::HashMap` is far
//! slower than necessary for `u32` newtype keys (see the Rust Performance
//! Book, "Hashing"). Instead of pulling in `rustc-hash`, we implement the
//! same Fx multiply-and-rotate scheme here — it is a handful of lines and
//! keeps the dependency set to the approved list.
//!
//! HashDoS resistance is irrelevant: every key in this system is generated
//! internally (dense ids), never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// The `FxHash` seed (64-bit golden-ratio constant used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-and-rotate hasher identical in spirit to rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys; processes 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`]. Drop-in replacement for the std map.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`]. Drop-in replacement for the std set.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a cryptographic guarantee, just a sanity check that the mixer
        // is not degenerate for small sequential keys.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<NodeId, f64> = FxHashMap::default();
        m.insert(NodeId(1), 1.5);
        m.insert(NodeId(2), 2.5);
        assert_eq!(m.get(&NodeId(1)), Some(&1.5));
        assert_eq!(m.remove(&NodeId(2)), Some(2.5));
        assert!(!m.contains_key(&NodeId(2)));
    }

    #[test]
    fn byte_stream_matches_word_writes_on_length() {
        // write() must consume all bytes including a ragged tail.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3] {
            s.insert(i);
        }
        assert_eq!(s.len(), 7);
    }
}
