//! Edge → resident-object index.
//!
//! The sharded engine (`rnn-engine`) replicates objects into the *halos* of
//! neighbouring shards and must re-derive replica membership whenever halo
//! edge sets change. Without an index that re-derivation scans every object
//! in the system (O(N) per halo rebuild); with this index it touches only
//! the objects resident on the edges whose membership actually changed —
//! O(changed edges), the shared incremental-maintenance idea of SINA
//! (Mokbel et al., SIGMOD 2004) and SEA-CNN (Xiong et al., ICDE 2005)
//! applied to replica bookkeeping.
//!
//! The index is a dense per-edge bucket table backed by a [`SpanArena`]:
//! all buckets share one flat buffer, so routing object events does no
//! per-bucket heap allocation in steady state. Buckets hold unsorted object
//! ids (removal swap-pops), matching the access pattern: bulk iteration per
//! edge during resync, single insert/remove per routed object event.

use crate::arena::SpanArena;
use crate::ids::{EdgeId, ObjectId};

/// Dense map from each edge to the set of objects currently resident on it.
#[derive(Clone, Debug, Default)]
pub struct EdgeObjectIndex {
    buckets: SpanArena<ObjectId>,
    len: usize,
}

impl EdgeObjectIndex {
    /// Creates an empty index covering `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        Self {
            buckets: SpanArena::new(num_edges),
            len: 0,
        }
    }

    /// Records `id` as resident on `edge`.
    ///
    /// The caller must not insert the same id on the same edge twice
    /// (checked in debug builds).
    pub fn insert(&mut self, edge: EdgeId, id: ObjectId) {
        debug_assert!(
            !self.buckets.get(edge.index()).contains(&id),
            "object {id:?} already indexed on edge {edge:?}"
        );
        self.buckets.push(edge.index(), id);
        self.len += 1;
    }

    /// Removes `id` from `edge`. Returns `true` if it was present.
    pub fn remove(&mut self, edge: EdgeId, id: ObjectId) -> bool {
        let bucket = self.buckets.get(edge.index());
        match bucket.iter().position(|&o| o == id) {
            Some(i) => {
                self.buckets.swap_remove(edge.index(), i);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Moves `id` from `from` to `to` (no-op on the index when the edges
    /// are equal). Returns `true` if `id` was present on `from`.
    pub fn relocate(&mut self, from: EdgeId, to: EdgeId, id: ObjectId) -> bool {
        if from == to {
            return self.buckets.get(from.index()).contains(&id);
        }
        let moved = self.remove(from, id);
        if moved {
            self.insert(to, id);
        }
        moved
    }

    /// The objects currently resident on `edge` (unsorted).
    #[inline]
    pub fn objects_on(&self, edge: EdgeId) -> &[ObjectId] {
        self.buckets.get(edge.index())
    }

    /// Total number of indexed objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of edges covered.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.buckets.num_slots()
    }

    /// Arena alloc events accumulated since the last take (see
    /// [`SpanArena::take_alloc_events`]).
    pub fn take_alloc_events(&mut self) -> u64 {
        self.buckets.take_alloc_events()
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut idx = EdgeObjectIndex::new(4);
        assert!(idx.is_empty());
        idx.insert(EdgeId(1), ObjectId(10));
        idx.insert(EdgeId(1), ObjectId(11));
        idx.insert(EdgeId(3), ObjectId(12));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.objects_on(EdgeId(1)).len(), 2);
        assert!(idx.objects_on(EdgeId(0)).is_empty());
        assert!(idx.remove(EdgeId(1), ObjectId(10)));
        assert!(
            !idx.remove(EdgeId(1), ObjectId(10)),
            "second remove is a no-op"
        );
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.objects_on(EdgeId(1)), &[ObjectId(11)]);
    }

    #[test]
    fn relocate_moves_between_buckets() {
        let mut idx = EdgeObjectIndex::new(3);
        idx.insert(EdgeId(0), ObjectId(7));
        assert!(idx.relocate(EdgeId(0), EdgeId(2), ObjectId(7)));
        assert!(idx.objects_on(EdgeId(0)).is_empty());
        assert_eq!(idx.objects_on(EdgeId(2)), &[ObjectId(7)]);
        assert_eq!(idx.len(), 1);
        // Same-edge relocate keeps everything in place.
        assert!(idx.relocate(EdgeId(2), EdgeId(2), ObjectId(7)));
        assert_eq!(idx.objects_on(EdgeId(2)), &[ObjectId(7)]);
        // Relocating an unknown id reports absence and changes nothing.
        assert!(!idx.relocate(EdgeId(0), EdgeId(1), ObjectId(99)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn memory_is_accounted() {
        let mut idx = EdgeObjectIndex::new(8);
        for i in 0..20u32 {
            idx.insert(EdgeId(i % 8), ObjectId(i));
        }
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.num_edges(), 8);
    }

    #[test]
    fn steady_churn_is_allocation_free() {
        let mut idx = EdgeObjectIndex::new(6);
        for round in 0..3u32 {
            for i in 0..24u32 {
                idx.insert(EdgeId(i % 6), ObjectId(round * 100 + i));
            }
            for i in 0..24u32 {
                assert!(idx.remove(EdgeId(i % 6), ObjectId(round * 100 + i)));
            }
        }
        idx.take_alloc_events();
        for i in 0..24u32 {
            idx.insert(EdgeId(i % 6), ObjectId(i));
        }
        assert_eq!(idx.take_alloc_events(), 0);
    }
}
