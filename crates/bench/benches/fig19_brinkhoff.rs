//! Figure 19: the Brinkhoff-substitute generator on the Oldenburg-like map
//! — CPU time vs Q (a) and vs k (b). Also runs the influence-list ablation.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig19a(c: &mut Criterion) {
    common::bench_figure(c, "fig19a", 0.01);
}

fn fig19b(c: &mut Criterion) {
    common::bench_figure(c, "fig19b", 0.01);
}

fn ablation(c: &mut Criterion) {
    common::bench_figure(c, "ablation-il", 0.01);
}

criterion_group!(benches, fig19a, fig19b, ablation);
criterion_main!(benches);
