//! Engine scaling: steady-state tick latency of the sharded engine as the
//! shard count grows (1/2/4/8), against the single-threaded GMA it wraps.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn engine_scaling(c: &mut Criterion) {
    common::bench_figure(c, "engine", 0.01);
}

criterion_group!(benches, engine_scaling);
criterion_main!(benches);
