//! Shared helper for the per-figure Criterion benches: steady-state tick
//! benchmarking of each algorithm at each point of a figure's sweep.

use criterion::{BenchmarkId, Criterion};
use rnn_bench::figure_by_name;
use rnn_bench::runner::make_monitor;
use rnn_workload::Scenario;

/// Benches every `(point, algorithm)` cell of `figure` at the given scale:
/// the measured unit is *one timestamp* of steady-state maintenance (the
/// paper's y-axis).
pub fn bench_figure(c: &mut Criterion, figure: &str, scale: f64) {
    let fig = figure_by_name(figure).expect("known figure");
    let mut group = c.benchmark_group(figure);
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    for (label, params) in (fig.points)(scale, 42) {
        let net = params.build_network();
        for &algo in fig.algos {
            let mut scenario = Scenario::new(net.clone(), params.scenario_config());
            let mut monitor = make_monitor(algo, net.clone());
            scenario.install_into(monitor.as_mut());
            // A couple of warm-up ticks so trees/lists reach steady state.
            for _ in 0..2 {
                let b = scenario.tick();
                monitor.tick(&b);
            }
            group.bench_with_input(BenchmarkId::new(algo.name(), &label), &(), |b, _| {
                b.iter(|| {
                    let batch = scenario.tick();
                    monitor.tick(&batch)
                })
            });
        }
    }
    group.finish();
}
