//! Figure 14: CPU time vs number of NNs k (a) and edge agility f_edg (b).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig14a(c: &mut Criterion) {
    common::bench_figure(c, "fig14a", 0.01);
}

fn fig14b(c: &mut Criterion) {
    common::bench_figure(c, "fig14b", 0.01);
}

criterion_group!(benches, fig14a, fig14b);
criterion_main!(benches);
