//! Micro-benchmarks of the flattened tick-path machinery: span-arena list
//! churn vs the old `Vec<Vec<…>>` layout, the branchless monotone-bits
//! expansion heap, and the shared multi-k expansion.

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_core::anchor::AnchorSet;
use rnn_core::counters::OpCounters;
use rnn_core::state::NetworkState;
use rnn_core::tree::TreePool;
use rnn_core::types::RootPos;
use rnn_roadnet::{generators, DijkstraEngine, EdgeId, NetPoint, NodeId, ObjectId, SpanArena};
use std::sync::Arc;

fn tickpath(c: &mut Criterion) {
    let net = generators::san_francisco_like(2_000, 7);
    let mut group = c.benchmark_group("tickpath");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));

    // Steady-state list churn: arena spans vs per-edge Vecs.
    let slots = 1_000usize;
    group.bench_function("arena_churn", |b| {
        let mut arena: SpanArena<(ObjectId, f64)> = SpanArena::new(slots);
        let mut i = 0u32;
        b.iter(|| {
            for _ in 0..64 {
                let s = (i as usize * 37) % slots;
                arena.push(s, (ObjectId(i), 0.5));
                if arena.len_of(s) > 4 {
                    arena.swap_remove(s, 0);
                }
                i = i.wrapping_add(1);
            }
            arena.alloc_events()
        })
    });

    group.bench_function("vecvec_churn", |b| {
        let mut lists: Vec<Vec<(ObjectId, f64)>> = vec![Vec::new(); slots];
        let mut i = 0u32;
        b.iter(|| {
            for _ in 0..64 {
                let s = (i as usize * 37) % slots;
                lists[s].push((ObjectId(i), 0.5));
                if lists[s].len() > 4 {
                    lists[s].swap_remove(0);
                }
                i = i.wrapping_add(1);
            }
            lists.len()
        })
    });

    // Tree surgery in the arena-of-trees: cut a deep subtree and re-grow
    // it, all through the pool's free list — the per-tick IMA maintenance
    // pattern — against the pre-pool hash-map-of-Vec layout doing the
    // same cut/re-grow.
    group.bench_function("tree_surgery", |b| {
        let mut pool = TreePool::new();
        let mut tree = pool.new_tree();
        pool.insert(&mut tree, NodeId(0), 0.0, None);
        for i in 1..256u32 {
            pool.insert(
                &mut tree,
                NodeId(i),
                f64::from(i),
                Some((NodeId(i - 1), EdgeId(i - 1))),
            );
        }
        b.iter(|| {
            // Cut the outer half of the path, then re-expand it: every
            // re-insert pops the free list.
            let cut = pool.remove_subtree(&mut tree, NodeId(128));
            for i in 128..256u32 {
                pool.insert(
                    &mut tree,
                    NodeId(i),
                    f64::from(i),
                    Some((NodeId(i - 1), EdgeId(i - 1))),
                );
            }
            cut + tree.len()
        })
    });

    // The same pre-pool layout also serves as the correctness oracle in
    // tests/properties.rs (`tree_pool_model::RefTree`, over std HashMap);
    // this copy deliberately keeps the production FxHashMap so the timing
    // comparison is against what the monitors actually used to run.
    group.bench_function("tree_surgery_hashmap", |b| {
        use rnn_roadnet::FxHashMap;
        struct Rec {
            #[allow(dead_code)]
            parent: Option<(u32, u32)>,
            children: Vec<(u32, u32)>,
        }
        let mut nodes: FxHashMap<u32, Rec> = FxHashMap::default();
        nodes.insert(
            0,
            Rec {
                parent: None,
                children: Vec::new(),
            },
        );
        for i in 1..256u32 {
            nodes.get_mut(&(i - 1)).unwrap().children.push((i, i - 1));
            nodes.insert(
                i,
                Rec {
                    parent: Some((i - 1, i - 1)),
                    children: Vec::new(),
                },
            );
        }
        b.iter(|| {
            // Same cut + re-grow on the old layout: per-node map removals
            // and a fresh `Vec` per re-inserted node.
            let mut stack = vec![128u32];
            if let Some(p) = nodes.get_mut(&127) {
                p.children.retain(|&(c, _)| c != 128);
            }
            let mut cut = 0usize;
            while let Some(cur) = stack.pop() {
                if let Some(rec) = nodes.remove(&cur) {
                    cut += 1;
                    stack.extend(rec.children.iter().map(|&(c, _)| c));
                }
            }
            for i in 128..256u32 {
                nodes.get_mut(&(i - 1)).unwrap().children.push((i, i - 1));
                nodes.insert(
                    i,
                    Rec {
                        parent: Some((i - 1, i - 1)),
                        children: Vec::new(),
                    },
                );
            }
            cut + nodes.len()
        })
    });

    // Branchless heap: one bounded expansion per iteration, reusing the
    // engine (the hot configuration of every monitor).
    let weights = rnn_roadnet::EdgeWeights::from_base(&net);
    group.bench_function("expansion_reuse", |b| {
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let r = 8.0 * net.avg_base_weight();
        let mut s = 0u32;
        b.iter(|| {
            let src = NodeId(s % net.num_nodes() as u32);
            s = s.wrapping_add(17);
            eng.sssp(&net, &weights, src, Some(r)).len()
        })
    });

    // Shared multi-k expansion: five co-rooted anchors re-rooted together.
    group.bench_function("co_rooted_tick", |b| {
        let net = Arc::new(generators::san_francisco_like(500, 3));
        let mut state = NetworkState::new(&net);
        for e in net.edge_ids() {
            state.objects.insert(ObjectId(e.0), NetPoint::new(e, 0.5));
        }
        let mut set = AnchorSet::new(net.clone());
        let mut cnt = OpCounters::default();
        let p = RootPos::Point(NetPoint::new(EdgeId(0), 0.5));
        let keys: Vec<_> = (0..5)
            .map(|i| set.add(&state, p, 1 + i % 4, &mut cnt))
            .collect();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let to = RootPos::Point(NetPoint::new(EdgeId(if flip { 40 } else { 0 }), 0.5));
            let moves: Vec<_> = keys.iter().map(|&k| (k, to)).collect();
            set.tick(&state, &[], &[], &moves)
                .counters
                .shared_expansions
        })
    });

    group.finish();
}

criterion_group!(benches, tickpath);
criterion_main!(benches);
