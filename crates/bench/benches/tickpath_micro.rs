//! Micro-benchmarks of the flattened tick-path machinery: span-arena list
//! churn vs the old `Vec<Vec<…>>` layout, the branchless monotone-bits
//! expansion heap, and the shared multi-k expansion.

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_core::anchor::AnchorSet;
use rnn_core::counters::OpCounters;
use rnn_core::state::NetworkState;
use rnn_core::types::RootPos;
use rnn_roadnet::{generators, DijkstraEngine, EdgeId, NetPoint, NodeId, ObjectId, SpanArena};
use std::sync::Arc;

fn tickpath(c: &mut Criterion) {
    let net = generators::san_francisco_like(2_000, 7);
    let mut group = c.benchmark_group("tickpath");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));

    // Steady-state list churn: arena spans vs per-edge Vecs.
    let slots = 1_000usize;
    group.bench_function("arena_churn", |b| {
        let mut arena: SpanArena<(ObjectId, f64)> = SpanArena::new(slots);
        let mut i = 0u32;
        b.iter(|| {
            for _ in 0..64 {
                let s = (i as usize * 37) % slots;
                arena.push(s, (ObjectId(i), 0.5));
                if arena.len_of(s) > 4 {
                    arena.swap_remove(s, 0);
                }
                i = i.wrapping_add(1);
            }
            arena.alloc_events()
        })
    });

    group.bench_function("vecvec_churn", |b| {
        let mut lists: Vec<Vec<(ObjectId, f64)>> = vec![Vec::new(); slots];
        let mut i = 0u32;
        b.iter(|| {
            for _ in 0..64 {
                let s = (i as usize * 37) % slots;
                lists[s].push((ObjectId(i), 0.5));
                if lists[s].len() > 4 {
                    lists[s].swap_remove(0);
                }
                i = i.wrapping_add(1);
            }
            lists.len()
        })
    });

    // Branchless heap: one bounded expansion per iteration, reusing the
    // engine (the hot configuration of every monitor).
    let weights = rnn_roadnet::EdgeWeights::from_base(&net);
    group.bench_function("expansion_reuse", |b| {
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let r = 8.0 * net.avg_base_weight();
        let mut s = 0u32;
        b.iter(|| {
            let src = NodeId(s % net.num_nodes() as u32);
            s = s.wrapping_add(17);
            eng.sssp(&net, &weights, src, Some(r)).len()
        })
    });

    // Shared multi-k expansion: five co-rooted anchors re-rooted together.
    group.bench_function("co_rooted_tick", |b| {
        let net = Arc::new(generators::san_francisco_like(500, 3));
        let mut state = NetworkState::new(&net);
        for e in net.edge_ids() {
            state.objects.insert(ObjectId(e.0), NetPoint::new(e, 0.5));
        }
        let mut set = AnchorSet::new(net.clone());
        let mut cnt = OpCounters::default();
        let p = RootPos::Point(NetPoint::new(EdgeId(0), 0.5));
        let keys: Vec<_> = (0..5)
            .map(|i| set.add(&state, p, 1 + i % 4, &mut cnt))
            .collect();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let to = RootPos::Point(NetPoint::new(EdgeId(if flip { 40 } else { 0 }), 0.5));
            let moves: Vec<_> = keys.iter().map(|&k| (k, to)).collect();
            set.tick(&state, &[], &[], &moves)
                .counters
                .shared_expansions
        })
    });

    group.finish();
}

criterion_group!(benches, tickpath);
criterion_main!(benches);
