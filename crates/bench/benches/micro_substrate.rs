//! Micro-benchmarks of the substrate primitives that dominate the
//! monitoring algorithms: Dijkstra expansion, PMR-quadtree construction and
//! lookup, sequence decomposition, and the Figure-2 initial k-NN search.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rnn_core::counters::OpCounters;
use rnn_core::search::{knn_search, SearchContext};
use rnn_core::state::ObjectIndex;
use rnn_core::types::RootPos;
use rnn_roadnet::{
    generators, DijkstraEngine, EdgeId, EdgeWeights, NetPoint, NodeId, ObjectId, PmrQuadtree,
    SequenceTable,
};

fn substrate(c: &mut Criterion) {
    let net = generators::san_francisco_like(2_000, 7);
    let weights = EdgeWeights::from_base(&net);
    let mut group = c.benchmark_group("substrate");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));

    group.bench_function("dijkstra_sssp_full", |b| {
        let mut eng = DijkstraEngine::new(net.num_nodes());
        b.iter(|| eng.sssp(&net, &weights, NodeId(0), None).len())
    });

    group.bench_function("dijkstra_sssp_radius", |b| {
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let r = 10.0 * net.avg_base_weight();
        b.iter(|| eng.sssp(&net, &weights, NodeId(0), Some(r)).len())
    });

    group.bench_function("quadtree_build", |b| {
        b.iter(|| PmrQuadtree::build(&net).num_quads())
    });

    let qt = PmrQuadtree::build(&net);
    group.bench_function("quadtree_locate", |b| {
        let probe = NetPoint::new(EdgeId(37), 0.42).coordinates(&net);
        b.iter(|| qt.locate(&net, probe))
    });

    group.bench_function("sequence_decomposition", |b| {
        b.iter(|| SequenceTable::build(&net).len())
    });

    // Figure-2 initial k-NN search at the default density (10 objects/edge).
    let mut objects = ObjectIndex::new(net.num_edges());
    let mut oid = 0u32;
    for e in net.edge_ids() {
        for j in 0..10 {
            objects.insert(ObjectId(oid), NetPoint::new(e, (j as f64 + 0.5) / 10.0));
            oid += 1;
        }
    }
    for k in [1usize, 50, 200] {
        group.bench_function(format!("initial_knn_search_k{k}"), |b| {
            let ctx = SearchContext {
                net: &net,
                weights: &weights,
                objects: &objects,
            };
            let mut eng = DijkstraEngine::new(net.num_nodes());
            let mut best = rnn_core::search::BestK::new(k);
            let mut pool = rnn_core::tree::TreePool::new();
            b.iter_batched(
                || (),
                |_| {
                    let mut c = OpCounters::default();
                    let out = knn_search(
                        &ctx,
                        &mut eng,
                        &mut best,
                        &mut pool,
                        RootPos::Point(NetPoint::new(EdgeId(11), 0.3)),
                        k,
                        None,
                        &[],
                        &mut c,
                    );
                    let n = out.result.len();
                    pool.release(out.tree);
                    n
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, substrate);
criterion_main!(benches);
