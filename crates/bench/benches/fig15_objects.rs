//! Figure 15: CPU time vs object agility f_obj (a) and object speed v_obj (b).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig15a(c: &mut Criterion) {
    common::bench_figure(c, "fig15a", 0.01);
}

fn fig15b(c: &mut Criterion) {
    common::bench_figure(c, "fig15b", 0.01);
}

criterion_group!(benches, fig15a, fig15b);
criterion_main!(benches);
