//! Figure 13: CPU time per timestamp vs object cardinality N (a) and query
//! cardinality Q (b).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig13a(c: &mut Criterion) {
    common::bench_figure(c, "fig13a", 0.01);
}

fn fig13b(c: &mut Criterion) {
    common::bench_figure(c, "fig13b", 0.01);
}

criterion_group!(benches, fig13a, fig13b);
criterion_main!(benches);
