//! Figure 16: CPU time vs query agility f_qry (a) and query speed v_qry (b).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig16a(c: &mut Criterion) {
    common::bench_figure(c, "fig16a", 0.01);
}

fn fig16b(c: &mut Criterion) {
    common::bench_figure(c, "fig16b", 0.01);
}

criterion_group!(benches, fig16a, fig16b);
criterion_main!(benches);
