//! # rnn-bench
//!
//! Experiment harness reproducing **every table and figure** of the VLDB
//! 2006 evaluation (§6). The `experiments` binary prints the same series
//! the paper plots; the Criterion benches under `benches/` regenerate them
//! at a reduced, CI-friendly scale.
//!
//! Layout:
//! * [`params`] — the Table 2 parameter space, with paper defaults and a
//!   uniform scaling knob,
//! * [`runner`] — drives OVH/IMA/GMA (and the influence-list ablation) over
//!   identical update streams, collecting CPU time, operation counters and
//!   memory,
//! * [`figures`] — one entry per experiment (Fig. 13a … Fig. 19b), each
//!   mapping a swept parameter to a list of runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod gate;
pub mod params;
pub mod runner;

pub use figures::{all_figures, figure_by_name, Figure};
pub use params::Params;
pub use runner::{run_series, Algo, RunResult, SeriesPoint};
