//! Command-line experiment runner: regenerates every table and figure of
//! the paper's §6 evaluation.
//!
//! ```text
//! experiments all                          # every figure (reduced scale)
//! experiments fig13a fig14b                # selected figures
//! experiments table2                       # print Table 2
//! experiments all --scale 0.05 --ts 8      # cheaper
//! experiments fig13b --paper-scale         # full Table 2 cardinalities
//! experiments all --parallel               # faster, noisier timings
//! experiments ci-gate                      # counter-regression gate vs
//!                                          # the committed BENCH_*.json
//! experiments ci-gate --update             # regenerate those baselines
//! ```

#![forbid(unsafe_code)]
use std::env;
use std::process::ExitCode;

use rnn_bench::gate::{compare, run_gated_figure, GATE_SPECS, MAX_REGRESSION};
use rnn_bench::runner::{format_series, series_to_json};
use rnn_bench::{all_figures, figure_by_name, run_series, Params};

struct Options {
    figures: Vec<String>,
    scale: f64,
    timestamps: usize,
    warmup: usize,
    seed: u64,
    objects: Option<usize>,
    parallel: bool,
    update_baselines: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        figures: Vec::new(),
        scale: 0.05,
        timestamps: 10,
        warmup: 2,
        seed: 42,
        objects: None,
        parallel: false,
        update_baselines: false,
    };
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--paper-scale" => opts.scale = 1.0,
            "--ts" => {
                opts.timestamps = args
                    .next()
                    .ok_or("--ts needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --ts: {e}"))?;
            }
            "--warmup" => {
                opts.warmup = args
                    .next()
                    .ok_or("--warmup needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --warmup: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--objects" => {
                // Accepts scientific notation ("1e6") so the million-object
                // ingest scenario reads the way the docs spell it.
                let raw = args.next().ok_or("--objects needs a value")?;
                let n = raw
                    .parse::<usize>()
                    .map(|n| n as f64)
                    .or_else(|_| raw.parse::<f64>())
                    .map_err(|e| format!("bad --objects: {e}"))?;
                if !n.is_finite() || n < 1.0 {
                    return Err(format!("bad --objects: {raw}"));
                }
                opts.objects = Some(n.round() as usize);
            }
            "--parallel" => opts.parallel = true,
            "--update" => opts.update_baselines = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()))
            }
            other => opts.figures.push(other.to_string()),
        }
    }
    if opts.figures.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

fn usage() -> String {
    let mut u = String::from(
        "usage: experiments <figure...|all|table2|ci-gate> [--scale F] [--paper-scale] \
         [--ts N] [--warmup N] [--seed S] [--objects N] [--parallel] [--update]\n\n\
         --objects overrides the object cardinality N at every sweep point \
         (accepts 1e6-style scientific notation) — e.g. \
         `experiments ingest --objects 1e6` runs the million-object ingest \
         scenario.\n\
         ci-gate re-runs the gated figures at pinned settings and fails if a \
         deterministic counter regressed >5% vs the committed BENCH_*.json \
         baselines; --update regenerates those baselines instead.\n\nknown figures:\n",
    );
    for f in all_figures() {
        u.push_str(&format!("  {:<12} {}\n", f.name, f.title));
    }
    u
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut names: Vec<String> = Vec::new();
    for f in &opts.figures {
        match f.as_str() {
            "all" => {
                names.push("table2".into());
                names.extend(all_figures().iter().map(|f| f.name.to_string()));
            }
            other => names.push(other.to_string()),
        }
    }

    println!(
        "# Continuous NN monitoring in road networks — experiment run\n\
         # scale={}, timestamps={}, warmup={}, seed={}\n",
        opts.scale, opts.timestamps, opts.warmup, opts.seed
    );

    for name in names {
        if name == "table2" {
            println!("{}", Params::table2());
            continue;
        }
        if name == "ci-gate" {
            if let Err(code) = run_ci_gate(opts.update_baselines) {
                return code;
            }
            continue;
        }
        let Some(fig) = figure_by_name(&name) else {
            eprintln!("unknown figure: {name}\n{}", usage());
            return ExitCode::FAILURE;
        };
        let mut points = (fig.points)(opts.scale, opts.seed);
        if let Some(n) = opts.objects {
            for (_, p) in &mut points {
                p.n_objects = n;
            }
        }
        let series = run_series(
            &points,
            fig.algos,
            opts.timestamps,
            opts.warmup,
            opts.parallel,
        );
        println!("{}", format_series(fig.title, &series, fig.memory));
        // The engine and tickpath figures double as the cross-PR perf
        // tracker: emit a machine-readable artifact next to the
        // human-readable table, and enforce the engine's O(changed-edges)
        // replica-maintenance bound — no single tick may resync more
        // objects than exist. CI runs these figures and fails on a
        // violation.
        if fig.name.starts_with("engine")
            || fig.name == "tickpath"
            || fig.name == "rebalance"
            || fig.name == "cluster"
            || fig.name == "recovery"
            || fig.name == "replication"
            || fig.name == "ingest"
        {
            let path = format!("BENCH_{}.json", fig.name);
            match std::fs::write(&path, series_to_json(fig.name, &series)) {
                Ok(()) => println!("# wrote {path}"),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            for (point, (label, params)) in series.iter().zip(&points) {
                for r in point.results.iter().filter(|r| r.algo.is_sharded()) {
                    if r.max_tick_resync > params.n_objects as u64 {
                        eprintln!(
                            "REPLICA MAINTENANCE REGRESSION: {} at {label} resynced \
                             {} objects in one tick (only {} exist) — halo resync \
                             is no longer incremental",
                            r.algo.name(),
                            r.max_tick_resync,
                            params.n_objects
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        // Tick-path guarantees. Steady-state ticks must be allocation-free
        // on the instrumented structures: the only legitimate alloc events
        // are rare per-edge high-water records (arena capacity growth),
        // which show up as a per-ts rate near zero. A rate at or above 0.5
        // means per-tick churn is allocating again (e.g. a reintroduced
        // per-edge `Vec` build) — fail. And the expansion-sharing machinery
        // must actually fire on the default scenario.
        if fig.name == "tickpath" {
            let mut shared_total = 0.0;
            let mut recycled_total = 0.0;
            for point in &series {
                for r in &point.results {
                    shared_total += r.shared_per_ts;
                    let single = matches!(r.algo, rnn_bench::runner::Algo::Ima)
                        || matches!(r.algo, rnn_bench::runner::Algo::Gma);
                    if single {
                        recycled_total += r.recycled_per_ts;
                    }
                    if single && r.alloc_per_ts >= 0.5 {
                        eprintln!(
                            "TICK-PATH REGRESSION: {} at {} allocated {:.3} times per \
                             steady-state tick — the arena/heap/tree-pool layout no \
                             longer runs allocation-free (tree surgery included)",
                            r.algo.name(),
                            point.label,
                            r.alloc_per_ts
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            if shared_total <= 0.0 {
                eprintln!(
                    "TICK-PATH REGRESSION: shared_expansions stayed 0 across the \
                     tickpath figure — per-tick expansion sharing never fired"
                );
                return ExitCode::FAILURE;
            }
            if recycled_total <= 0.0 {
                eprintln!(
                    "TICK-PATH REGRESSION: tree_nodes_recycled stayed 0 across the \
                     tickpath figure — tree surgery stopped reusing pooled slots \
                     (edge churn must cut and re-grow subtrees through the free list)"
                );
                return ExitCode::FAILURE;
            }
        }
        // Rebalance guarantees: under the skewed drifting-hotspot stream
        // the load-aware engine must actually migrate cells, and its final
        // max/mean shard-load ratio must beat the static partition's at
        // every point. This is the CI rebalance smoke.
        if fig.name == "rebalance" {
            for point in &series {
                let static_eng = point
                    .results
                    .iter()
                    .find(|r| matches!(r.algo, rnn_bench::runner::Algo::Sharded(_)));
                let rebal = point
                    .results
                    .iter()
                    .find(|r| matches!(r.algo, rnn_bench::runner::Algo::ShardedRebal(_)));
                let (Some(st), Some(rb)) = (static_eng, rebal) else {
                    eprintln!("REBALANCE REGRESSION: figure lost its engine pair");
                    return ExitCode::FAILURE;
                };
                if rb.cells_migrated == 0 || rb.rebalances == 0 {
                    eprintln!(
                        "REBALANCE REGRESSION: {} never migrated under the hotspot \
                         at {} (rebalances {}, cells {})",
                        rb.algo.name(),
                        point.label,
                        rb.rebalances,
                        rb.cells_migrated
                    );
                    return ExitCode::FAILURE;
                }
                if rb.load_ratio >= st.load_ratio {
                    eprintln!(
                        "REBALANCE REGRESSION: at {} the load-aware engine's \
                         max/mean shard load ({:.3}) did not beat the static \
                         partition's ({:.3})",
                        point.label, rb.load_ratio, st.load_ratio
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "#   {}: load ratio {:.3} (static) -> {:.3} (rebalanced), \
                     {} cells over {} migrations",
                    point.label, st.load_ratio, rb.load_ratio, rb.cells_migrated, rb.rebalances
                );
            }
        }
        // Cluster smoke: the loopback cluster must actually move frames,
        // its deterministic work counters must equal the in-process
        // engine's at the same shard count (the answer-identity claim,
        // visible in the artifact), and a fault-free transport must stay
        // under the pinned retry bound — more retries means the timeout
        // policy is misfiring or replies are being lost (a retry storm).
        if fig.name == "cluster" {
            const RETRY_STORM_BOUND: u64 = 8;
            for point in &series {
                let inproc = point
                    .results
                    .iter()
                    .find(|r| matches!(r.algo, rnn_bench::runner::Algo::Sharded(4)));
                for r in point
                    .results
                    .iter()
                    .filter(|r| matches!(r.algo, rnn_bench::runner::Algo::Cluster(_)))
                {
                    if r.frames_per_ts <= 0.0 {
                        eprintln!(
                            "CLUSTER REGRESSION: {} at {} moved no RPC frames — the \
                             coordinator is not talking to its shard services",
                            r.algo.name(),
                            point.label
                        );
                        return ExitCode::FAILURE;
                    }
                    if r.retries > RETRY_STORM_BOUND {
                        eprintln!(
                            "CLUSTER REGRESSION: {} at {} retransmitted {} times on a \
                             fault-free loopback transport (bound {RETRY_STORM_BOUND}) — \
                             retry storm",
                            r.algo.name(),
                            point.label,
                            r.retries
                        );
                        return ExitCode::FAILURE;
                    }
                    if matches!(r.algo, rnn_bench::runner::Algo::Cluster(4)) {
                        if let Some(eng) = inproc {
                            if r.work_per_ts != eng.work_per_ts {
                                eprintln!(
                                    "CLUSTER REGRESSION: at {} CLU-4 work {} != ENG-4 \
                                     work {} — the RPC layer is no longer \
                                     answer-identical",
                                    point.label, r.work_per_ts, eng.work_per_ts
                                );
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                println!(
                    "#   {}: cluster frames/bytes per ts: {}",
                    point.label,
                    point
                        .results
                        .iter()
                        .filter(|r| matches!(r.algo, rnn_bench::runner::Algo::Cluster(_)))
                        .map(|r| format!(
                            "{} {:.1}/{:.0}",
                            r.algo.name(),
                            r.frames_per_ts,
                            r.bytes_per_ts
                        ))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
        // Recovery smoke: every durable run crashes its first shard at a
        // pinned delivered-frame budget, so each CLU-n-D row must record
        // at least one recovery and at least one snapshot; each recovery
        // must have replayed only the journal *suffix* behind the latest
        // snapshot (O(snapshot cadence), never O(run length)); and the
        // truncation guarantee must hold — the summed per-shard journals
        // stay under shards x cadence, proving truncate-behind-snapshot
        // fired instead of letting the journal grow with the run.
        if fig.name == "recovery" {
            use rnn_bench::runner::DURABLE_SNAPSHOT_EVERY;
            for point in &series {
                for r in &point.results {
                    let rnn_bench::runner::Algo::ClusterDurable(shards) = r.algo else {
                        continue;
                    };
                    if r.recoveries == 0 || r.snapshots == 0 {
                        eprintln!(
                            "RECOVERY REGRESSION: {} at {} recorded {} recoveries and \
                             {} snapshots — the fault plan stopped crashing shards or \
                             the snapshot cadence stopped firing",
                            r.algo.name(),
                            point.label,
                            r.recoveries,
                            r.snapshots
                        );
                        return ExitCode::FAILURE;
                    }
                    let replay_bound = f64::from(DURABLE_SNAPSHOT_EVERY) + 2.0;
                    if r.replayed_per_recovery > replay_bound {
                        eprintln!(
                            "RECOVERY REGRESSION: {} at {} replayed {:.1} frames per \
                             recovery (bound {:.0}) — respawn is replaying history a \
                             snapshot should have absorbed",
                            r.algo.name(),
                            point.label,
                            r.replayed_per_recovery,
                            replay_bound
                        );
                        return ExitCode::FAILURE;
                    }
                    let journal_bound = u64::from(shards) * u64::from(DURABLE_SNAPSHOT_EVERY);
                    if r.journal_len >= journal_bound {
                        eprintln!(
                            "RECOVERY REGRESSION: {} at {} ended with {} journaled \
                             frames across {} shards (bound {}) — the journal is no \
                             longer truncated behind durable snapshots",
                            r.algo.name(),
                            point.label,
                            r.journal_len,
                            shards,
                            journal_bound
                        );
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "#   {}: {} recovered {}x, {:.1} frames replayed/recovery, \
                         {} snapshots ({:.1} KB), {} journaled frames at end",
                        point.label,
                        r.algo.name(),
                        r.recoveries,
                        r.replayed_per_recovery,
                        r.snapshots,
                        r.snapshot_kb,
                        r.journal_len
                    );
                }
            }
        }
        // Replication smoke: every CLU-n-R shard's leader is killed at a
        // pinned delivered-frame budget with stillborn respawns, so each
        // row must record one follower promotion per shard — a zero
        // means the kill stopped firing or recovery found another path,
        // and the failover machinery went unexercised. Served answers
        // must stay answer-identical through promotion (work counters
        // equal to ENG-n at the same shard count), nothing may be
        // fenced in a healthy run, and the replication plane must have
        // actually shipped bytes to the followers. Divergence is judged
        // on the restore-stable counter columns: resync/evictions per
        // ts must be exact, while `ignored_per_ts` gets a 1% band —
        // snapshot restore recomputes expansion trees, and a recomputed
        // tree's θ-extent can flip a borderline update in or out of an
        // influence region (the CLU-n-D recovery path wobbles the same
        // way). Tree-shape-coupled work counters are not compared.
        if fig.name == "replication" {
            for point in &series {
                for r in point.results.iter() {
                    let rnn_bench::runner::Algo::ClusterReplicated(shards) = r.algo else {
                        continue;
                    };
                    if r.failovers < u64::from(shards) {
                        eprintln!(
                            "REPLICATION REGRESSION: {} at {} promoted {} followers \
                             (expected one per shard, {shards}) — the leader kills \
                             stopped driving failover",
                            r.algo.name(),
                            point.label,
                            r.failovers
                        );
                        return ExitCode::FAILURE;
                    }
                    if r.fenced_appends > 0 {
                        eprintln!(
                            "REPLICATION REGRESSION: {} at {} rejected {} appends as \
                             stale — a healthy run must never fence its own leader",
                            r.algo.name(),
                            point.label,
                            r.fenced_appends
                        );
                        return ExitCode::FAILURE;
                    }
                    if r.replica_bytes == 0 || r.commit_lag_frames <= 0.0 {
                        eprintln!(
                            "REPLICATION REGRESSION: {} at {} shipped {} replica bytes \
                             with commit lag {:.3} — the quorum pipeline never ran",
                            r.algo.name(),
                            point.label,
                            r.replica_bytes,
                            r.commit_lag_frames
                        );
                        return ExitCode::FAILURE;
                    }
                    let oracle = point.results.iter().find(
                        |o| matches!(o.algo, rnn_bench::runner::Algo::Sharded(n) if n == shards),
                    );
                    if let Some(eng) = oracle {
                        let exact = (r.resync_per_ts, r.evictions_per_ts)
                            == (eng.resync_per_ts, eng.evictions_per_ts);
                        let ignored_ok = (r.ignored_per_ts - eng.ignored_per_ts).abs()
                            <= eng.ignored_per_ts * 0.01;
                        if !exact || !ignored_ok {
                            eprintln!(
                                "REPLICATION REGRESSION: at {} {} restore-stable \
                                 counters (ignored {:.3}, resync {:.3}, evictions \
                                 {:.3}) diverged from {} ({:.3}, {:.3}, {:.3}) — \
                                 the cluster no longer matches the in-process \
                                 engine through follower promotion",
                                point.label,
                                r.algo.name(),
                                r.ignored_per_ts,
                                r.resync_per_ts,
                                r.evictions_per_ts,
                                eng.algo.name(),
                                eng.ignored_per_ts,
                                eng.resync_per_ts,
                                eng.evictions_per_ts
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                    println!(
                        "#   {}: {} failed over {}x, commit lag/ts {:.1}, \
                         {} replica bytes, {} fenced",
                        point.label,
                        r.algo.name(),
                        r.failovers,
                        r.commit_lag_frames,
                        r.replica_bytes,
                        r.fenced_appends
                    );
                }
            }
        }
        // Ingest smoke: the lossless ingest-fed engine must actually fold
        // redundant firehose reports (every feed shape oversamples, so a
        // zero means §4.5 coalescing stopped firing), must never shed
        // (blocking admission with lanes sized above the feed rate), and
        // its post-warmup drains must run allocation-free — the swap-and-
        // merge drain's zero-copy guarantee, measured as a window total so
        // a single stray allocation fails. The tight-laned ING-SHED column
        // must demonstrably shed, or the admission-control demonstration
        // is dead weight in the artifact.
        if fig.name == "ingest" {
            for point in &series {
                for r in &point.results {
                    match r.algo {
                        rnn_bench::runner::Algo::Ingest(_) => {
                            if r.coalesced_per_ts <= 0.0 {
                                eprintln!(
                                    "INGEST REGRESSION: {} at {} coalesced nothing — the \
                                     drain stopped folding superseded reports",
                                    r.algo.name(),
                                    point.label
                                );
                                return ExitCode::FAILURE;
                            }
                            if r.shed_events > 0 {
                                eprintln!(
                                    "INGEST REGRESSION: {} at {} shed {} events under \
                                     blocking admission — lossless lanes dropped data",
                                    r.algo.name(),
                                    point.label,
                                    r.shed_events
                                );
                                return ExitCode::FAILURE;
                            }
                            if r.drain_alloc_events > 0 {
                                eprintln!(
                                    "INGEST REGRESSION: {} at {} allocated {} times in \
                                     post-warmup drains — the swap-and-merge drain is no \
                                     longer allocation-free at steady state",
                                    r.algo.name(),
                                    point.label,
                                    r.drain_alloc_events
                                );
                                return ExitCode::FAILURE;
                            }
                        }
                        rnn_bench::runner::Algo::IngestShed(_) if r.shed_events == 0 => {
                            eprintln!(
                                "INGEST REGRESSION: {} at {} never shed — the tight \
                                 ShedOldest lanes stopped exercising admission control",
                                r.algo.name(),
                                point.label
                            );
                            return ExitCode::FAILURE;
                        }
                        _ => {}
                    }
                }
                println!(
                    "#   {}: {}",
                    point.label,
                    point
                        .results
                        .iter()
                        .filter(|r| r.algo.is_ingest())
                        .map(|r| format!(
                            "{} coalesced/ts {:.1}, shed {}, drain allocs {}",
                            r.algo.name(),
                            r.coalesced_per_ts,
                            r.shed_events,
                            r.drain_alloc_events
                        ))
                        .collect::<Vec<_>>()
                        .join("; ")
                );
            }
        }
        // GMA's active-node count, where applicable.
        for p in &series {
            for r in &p.results {
                if let Some(a) = r.active_nodes {
                    println!("#   {}: {} active nodes", p.label, a);
                }
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// Runs the counter-regression gate (or regenerates its baselines).
fn run_ci_gate(update: bool) -> Result<(), ExitCode> {
    let mut failed = false;
    for spec in GATE_SPECS {
        let path = format!("BENCH_{}.json", spec.figure);
        println!(
            "# ci-gate: {} (scale {}, ts {}, warmup {}, seed {})",
            spec.figure, spec.scale, spec.timestamps, spec.warmup, spec.seed
        );
        let fresh = match run_gated_figure(spec) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("ci-gate: {e}");
                return Err(ExitCode::FAILURE);
            }
        };
        if update {
            if let Err(e) = std::fs::write(&path, &fresh) {
                eprintln!("ci-gate: failed to write {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
            println!("# ci-gate: rewrote baseline {path}");
            continue;
        }
        let baseline = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "ci-gate: cannot read committed baseline {path}: {e} \
                     (run `experiments ci-gate --update` and commit the file)"
                );
                return Err(ExitCode::FAILURE);
            }
        };
        match compare(spec.figure, &baseline, &fresh) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "# ci-gate: {} counters within {:.0}% of baseline",
                    spec.figure,
                    MAX_REGRESSION * 100.0
                );
            }
            Ok(regressions) => {
                failed = true;
                for r in &regressions {
                    eprintln!("COUNTER REGRESSION: {r}");
                }
            }
            Err(e) => {
                eprintln!("ci-gate: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    if failed {
        eprintln!(
            "ci-gate: deterministic work counters regressed beyond {:.0}%. If the \
             regression is intentional, regenerate the baselines with \
             `experiments ci-gate --update` and commit the diff.",
            MAX_REGRESSION * 100.0
        );
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}
