//! CI bench-regression gate over the deterministic work counters.
//!
//! PR 3 made the tick path's work counters bit-stable: for a pinned
//! (figure, scale, timestamps, warmup, seed) the per-timestamp
//! `expansion_steps`, `resync_touched` and `alloc_events` are exact
//! machine-independent numbers, not wall-clock noise. That makes them
//! gateable: this module re-runs the gated figures at the pinned settings,
//! compares the fresh counters against the **committed** `BENCH_*.json`
//! baselines, and fails on a regression of more than
//! [`MAX_REGRESSION`] — so neither the rebalancer nor any future PR can
//! silently make the tick path do more work.
//!
//! The baseline files are the same artifacts the smoke steps emit; they
//! are parsed with a purpose-built scanner for the harness's own output
//! format (the vendored serde stub has no deserializer). Regenerate them
//! with `experiments ci-gate --update` after an *intentional* counter
//! change and commit the diff — the PR review then sees exactly which
//! counters moved.

use std::collections::BTreeMap;

use crate::figures::figure_by_name;
use crate::runner::{run_series, series_to_json};

/// Maximum tolerated relative growth of a gated counter (5%).
pub const MAX_REGRESSION: f64 = 0.05;

/// Absolute epsilon for float parse wobble only. Both sides of a
/// comparison are parsed from identically rendered artifacts (the gate
/// renders its fresh run through the same serializer the baseline came
/// from), so no precision slack is needed — and a near-zero counter like
/// `alloc_per_ts` going 0.000 → anything must fail: new allocations on a
/// previously allocation-free path are exactly what the gate exists to
/// catch.
const ABS_SLACK: f64 = 1e-9;

/// One gated figure with its pinned, CI-pinned run settings. The settings
/// are constants here — not CLI flags — so the gate can never drift away
/// from the settings its committed baseline was generated with.
pub struct GateSpec {
    /// Figure name (and `BENCH_<name>.json` baseline file).
    pub figure: &'static str,
    /// Cardinality scale.
    pub scale: f64,
    /// Timestamps driven.
    pub timestamps: usize,
    /// Warmup timestamps excluded from the averages.
    pub warmup: usize,
    /// Workload seed.
    pub seed: u64,
}

/// The gated figures. Matches the CI smoke invocations of the same
/// figures, so the committed artifacts double as the baselines.
pub const GATE_SPECS: &[GateSpec] = &[
    GateSpec {
        figure: "tickpath",
        // The longer warmup lets the tree pool's slab/directory population
        // reach its high-water marks, so the measured window pins the
        // maintenance alloc counter at exactly zero — surgery included.
        scale: 0.02,
        timestamps: 16,
        warmup: 10,
        seed: 42,
    },
    GateSpec {
        figure: "engine_repl",
        scale: 0.01,
        timestamps: 4,
        warmup: 1,
        seed: 42,
    },
    GateSpec {
        // The loopback cluster: frames per tick are deterministic on a
        // fault-free transport (sequence-numbered exactly-once RPC over
        // an in-process channel), so the gate pins the delta protocol's
        // message volume alongside the work counters.
        figure: "cluster",
        scale: 0.01,
        timestamps: 4,
        warmup: 1,
        seed: 42,
    },
    GateSpec {
        // Durable shards with the first shard crashed at a pinned
        // delivered-frame budget: the crash tick, the snapshot a respawn
        // restores from, and the journal suffix it replays are all
        // deterministic, so
        // `replayed_per_recovery` is an exact number the gate can hold to
        // the O(WAL-suffix) bound — a regression means recovery started
        // replaying history a snapshot should have absorbed.
        figure: "recovery",
        scale: 0.01,
        timestamps: 6,
        warmup: 1,
        seed: 42,
    },
    GateSpec {
        // Quorum-replicated shards with every leader killed at a pinned
        // delivered-frame budget (stillborn respawns, so promotion —
        // not replay — restores service): the synchronous append
        // pipeline commits each replicated event with exactly one frame
        // outstanding, making `commit_lag_frames` a deterministic rate
        // the gate pins. Growth means the leader started racing ahead
        // of its quorum — committing events followers have not acked.
        figure: "replication",
        scale: 0.01,
        timestamps: 6,
        warmup: 1,
        seed: 42,
    },
    GateSpec {
        // The ingest front-end over the three firehose shapes: the
        // coalescing fold (`coalesced_per_ts`) is deterministic for a
        // pinned firehose seed, and the baseline pins the ING rows'
        // `drain_alloc_events` window-total at exactly 0 — the two-tick
        // warmup absorbs the lane/merge high-water growth, after which
        // the swap-and-merge drain must run allocation-free.
        figure: "ingest",
        scale: 0.01,
        timestamps: 6,
        warmup: 2,
        seed: 42,
    },
];

/// The deterministic counters the gate enforces (field names as rendered
/// in the JSON artifacts). `alloc_per_ts` covers the tree-surgery alloc
/// guarantee (the tickpath baseline pins it at 0.000, so *any* new
/// allocation on a surgery tick fails), `steps_per_ts` holds expansion
/// work within 5%, and `recycled_per_ts` keeps the surgery volume routed
/// through the pool's free list from silently growing. `frames_per_ts`
/// pins the cluster's RPC message volume (absent from pre-cluster
/// baselines, where it is skipped): a frame regression means the delta
/// protocol started shipping more messages per tick.
/// `replayed_per_recovery` pins crash recovery's replay volume (recovery
/// figure only): it must stay O(WAL suffix) — bounded by the snapshot
/// cadence — never O(full journal), so a regression means a respawn
/// stopped restoring from the latest durable snapshot.
/// `coalesced_per_ts` pins the ingest drain's coalescing volume for the
/// pinned firehose streams (growth means the fold started double-counting;
/// the ingest smoke separately asserts it stays nonzero), and
/// `drain_alloc_events` is a window-total the ingest baseline holds at
/// exactly 0 — any post-warmup allocation on the swap-and-merge drain
/// fails the gate.
/// `commit_lag_frames` pins the replication plane's commit discipline
/// (replication figure only): the synchronous quorum pipeline commits
/// every replicated event frame with exactly one frame outstanding, so
/// growth means the leader started batching uncommitted appends —
/// events the WAL could truncate before any follower held them.
const GATED_METRICS: &[&str] = &[
    "steps_per_ts",
    "resync_per_ts",
    "alloc_per_ts",
    "recycled_per_ts",
    "frames_per_ts",
    "replayed_per_recovery",
    "coalesced_per_ts",
    "drain_alloc_events",
    "commit_lag_frames",
];

/// `(label, algo) → metric → value`, scanned from one artifact.
type FigureTable = BTreeMap<(String, String), BTreeMap<String, f64>>;

/// Extracts the quoted string after `"key":` on `line`, if present.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Parses one `"key": number` pair list out of a result record line.
fn number_fields(line: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = line;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(q2) = rest.find('"') else { break };
        let key = &rest[..q2];
        rest = &rest[q2 + 1..];
        let Some(colon) = rest.find(':') else { break };
        let value_str = rest[colon + 1..]
            .trim_start()
            .split([',', '}'])
            .next()
            .unwrap_or("")
            .trim();
        if let Ok(v) = value_str.parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    out
}

/// Scans one artifact in the harness's own output format into a
/// `(label, algo) → metrics` table.
pub fn parse_artifact(json: &str) -> Result<FigureTable, String> {
    let mut table = FigureTable::new();
    let mut label = String::new();
    for line in json.lines() {
        if let Some(l) = string_field(line, "label") {
            label = l;
            continue;
        }
        if let Some(algo) = string_field(line, "algo") {
            if label.is_empty() {
                return Err("result record before any point label".into());
            }
            table.insert((label.clone(), algo), number_fields(line));
        }
    }
    if table.is_empty() {
        return Err("no result records found — not a harness artifact?".into());
    }
    Ok(table)
}

/// One detected counter regression.
#[derive(Debug)]
pub struct Regression {
    /// Gated figure.
    pub figure: String,
    /// Sweep point label.
    pub label: String,
    /// Algorithm.
    pub algo: String,
    /// Counter name.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}: {} regressed {:.3} -> {:.3} (+{:.1}%)",
            self.figure,
            self.label,
            self.algo,
            self.metric,
            self.baseline,
            self.fresh,
            (self.fresh - self.baseline) / self.baseline.max(1e-12) * 100.0
        )
    }
}

/// Runs one gated figure at its pinned settings and renders the artifact
/// JSON (the exact bytes `--update` would write).
pub fn run_gated_figure(spec: &GateSpec) -> Result<String, String> {
    let fig = figure_by_name(spec.figure)
        .ok_or_else(|| format!("gated figure {} does not exist", spec.figure))?;
    let points = (fig.points)(spec.scale, spec.seed);
    let series = run_series(&points, fig.algos, spec.timestamps, spec.warmup, false);
    Ok(series_to_json(fig.name, &series))
}

/// Compares a fresh artifact against its committed baseline. Missing
/// baseline rows fail (a renamed label/algo needs `--update`); *extra*
/// fresh rows are fine (new algorithms join the figure without a gate
/// exception).
pub fn compare(figure: &str, baseline: &str, fresh: &str) -> Result<Vec<Regression>, String> {
    let base = parse_artifact(baseline).map_err(|e| format!("baseline {figure}: {e}"))?;
    let new = parse_artifact(fresh).map_err(|e| format!("fresh {figure}: {e}"))?;
    let mut regressions = Vec::new();
    for ((label, algo), metrics) in &base {
        let Some(fresh_metrics) = new.get(&(label.clone(), algo.clone())) else {
            return Err(format!(
                "{figure}: baseline row ({label}, {algo}) missing from the fresh run — \
                 regenerate the baselines with `experiments ci-gate --update`"
            ));
        };
        for &metric in GATED_METRICS {
            let (Some(&b), Some(&f)) = (metrics.get(metric), fresh_metrics.get(metric)) else {
                continue; // counter absent from the committed schema
            };
            if f > b * (1.0 + MAX_REGRESSION) + ABS_SLACK {
                regressions.push(Regression {
                    figure: figure.to_string(),
                    label: label.clone(),
                    algo: algo.clone(),
                    metric: metric.to_string(),
                    baseline: b,
                    fresh: f,
                });
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "figure": "tickpath",
  "points": [
    {
      "label": "T2-defaults",
      "results": [
        {"algo": "IMA", "cpu_per_ts": 0.000740215, "alloc_per_ts": 0.000, "steps_per_ts": 42.4, "resync_per_ts": 0.0},
        {"algo": "GMA", "cpu_per_ts": 0.001034350, "alloc_per_ts": 0.125, "steps_per_ts": 3.0, "resync_per_ts": 0.0}
      ]
    }
  ]
}"#;

    #[test]
    fn parses_own_artifact_format() {
        let t = parse_artifact(SAMPLE).unwrap();
        let ima = &t[&("T2-defaults".to_string(), "IMA".to_string())];
        assert_eq!(ima["steps_per_ts"], 42.4);
        assert_eq!(ima["alloc_per_ts"], 0.0);
        let gma = &t[&("T2-defaults".to_string(), "GMA".to_string())];
        assert_eq!(gma["alloc_per_ts"], 0.125);
    }

    #[test]
    fn identical_artifacts_pass() {
        assert!(compare("tickpath", SAMPLE, SAMPLE).unwrap().is_empty());
    }

    #[test]
    fn regression_is_detected_and_improvement_passes() {
        let worse = SAMPLE.replace("\"steps_per_ts\": 42.4", "\"steps_per_ts\": 60.0");
        let regs = compare("tickpath", SAMPLE, &worse).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "steps_per_ts");
        assert_eq!(regs[0].algo, "IMA");
        assert!(regs[0].to_string().contains("regressed"));
        // Improvements and sub-threshold drift pass.
        let better = SAMPLE.replace("\"steps_per_ts\": 42.4", "\"steps_per_ts\": 40.0");
        assert!(compare("tickpath", SAMPLE, &better).unwrap().is_empty());
        let tiny = SAMPLE.replace("\"steps_per_ts\": 42.4", "\"steps_per_ts\": 42.5");
        assert!(compare("tickpath", SAMPLE, &tiny).unwrap().is_empty());
    }

    #[test]
    fn missing_baseline_row_fails_loudly() {
        let renamed = SAMPLE.replace("\"algo\": \"IMA\"", "\"algo\": \"IMA2\"");
        assert!(compare("tickpath", SAMPLE, &renamed).is_err());
        // Extra fresh rows are fine (the reverse direction).
        assert!(compare("tickpath", &renamed.replace("IMA2", "IMA"), SAMPLE)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn gate_specs_name_real_figures() {
        for spec in GATE_SPECS {
            assert!(
                figure_by_name(spec.figure).is_some(),
                "gated figure {} missing",
                spec.figure
            );
        }
    }
}
