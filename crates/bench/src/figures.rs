//! One entry per experiment of the paper's evaluation (§6).
//!
//! Each [`Figure`] sweeps exactly the parameter the paper sweeps, holding
//! everything else at the Table 2 defaults. `scale` uniformly shrinks the
//! cardinalities (see [`Params::scaled`]); `scale = 1.0` reproduces the
//! paper's setup verbatim.

use rnn_workload::{Distribution, FirehosePattern, MovementModel};

use crate::params::Params;
use crate::runner::Algo;

/// A reproducible experiment: a labelled parameter sweep.
pub struct Figure {
    /// Short id (`fig13a`, …) used on the command line.
    pub name: &'static str,
    /// Human title, as in the paper.
    pub title: &'static str,
    /// Algorithms plotted.
    pub algos: &'static [Algo],
    /// Whether the y-axis is memory (Fig. 18) rather than CPU time.
    pub memory: bool,
    /// Builds the sweep at the given scale and seed.
    pub points: fn(scale: f64, seed: u64) -> Vec<(String, Params)>,
}

fn base(scale: f64, seed: u64) -> Params {
    Params {
        seed,
        ..Params::default()
    }
    .scaled(scale)
}

fn fig13a(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [10_000, 50_000, 100_000, 150_000, 200_000]
        .into_iter()
        .map(|n| {
            let p = base(scale, seed);
            let n_scaled = ((n as f64) * scale).round() as usize;
            (
                format!("N={}K", n / 1000),
                Params {
                    n_objects: n_scaled.max(8),
                    ..p
                },
            )
        })
        .collect()
}

fn fig13b(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [1_000, 3_000, 5_000, 7_000, 10_000]
        .into_iter()
        .map(|q| {
            let p = base(scale, seed);
            let q_scaled = (((q as f64) * scale).round() as usize).max(1);
            (
                format!("Q={}K", q / 1000),
                Params {
                    n_queries: q_scaled,
                    ..p
                },
            )
        })
        .collect()
}

fn sweep_k(scale: f64, seed: u64, oldenburg: bool) -> Vec<(String, Params)> {
    [1usize, 25, 50, 100, 200]
        .into_iter()
        .map(|k| {
            let mut p = base(scale, seed);
            if oldenburg {
                p = oldenburg_base(scale, seed);
            }
            // k is *not* scaled: tree sizes relative to the network shrink
            // with scale already; scaling k too would square the effect.
            // At small scales cap k by the object count.
            let k = k.min(p.n_objects / 2).max(1);
            (format!("k={k}"), Params { k, ..p })
        })
        .collect()
}

fn fig14a(scale: f64, seed: u64) -> Vec<(String, Params)> {
    sweep_k(scale, seed, false)
}

fn fig14b(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [0.01, 0.02, 0.04, 0.08, 0.16]
        .into_iter()
        .map(|f| {
            (
                format!("f_edg={}%", (f * 100.0) as u32),
                Params {
                    edge_agility: f,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

fn fig15a(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [0.0, 0.05, 0.10, 0.15, 0.20]
        .into_iter()
        .map(|f| {
            (
                format!("f_obj={}%", (f * 100.0) as u32),
                Params {
                    object_agility: f,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

fn fig15b(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [0.25, 0.5, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|v| {
            (
                format!("v_obj={v}"),
                Params {
                    object_speed: v,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

fn fig16a(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [0.0, 0.05, 0.10, 0.15, 0.20]
        .into_iter()
        .map(|f| {
            (
                format!("f_qry={}%", (f * 100.0) as u32),
                Params {
                    query_agility: f,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

fn fig16b(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [0.25, 0.5, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|v| {
            (
                format!("v_qry={v}"),
                Params {
                    query_speed: v,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

fn fig17a(scale: f64, seed: u64) -> Vec<(String, Params)> {
    let combos: [(&str, Distribution, Distribution); 4] = [
        ("U-obj/U-qry", Distribution::Uniform, Distribution::Uniform),
        (
            "U-obj/G-qry",
            Distribution::Uniform,
            Distribution::gaussian_queries(),
        ),
        (
            "G-obj/U-qry",
            Distribution::gaussian_objects(),
            Distribution::Uniform,
        ),
        (
            "G-obj/G-qry",
            Distribution::gaussian_objects(),
            Distribution::gaussian_queries(),
        ),
    ];
    combos
        .into_iter()
        .map(|(label, od, qd)| {
            (
                label.to_string(),
                Params {
                    object_distribution: od,
                    query_distribution: qd,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

fn fig17b(scale: f64, seed: u64) -> Vec<(String, Params)> {
    // Densities fixed: 10 objects and 0.5 queries per edge.
    [1_000usize, 5_000, 10_000, 50_000, 100_000]
        .into_iter()
        .map(|edges| {
            let e = (((edges as f64) * scale).round() as usize).max(64);
            (
                format!("E={}K", edges / 1000),
                Params {
                    edges: e,
                    n_objects: e * 10,
                    n_queries: (e / 2).max(1),
                    ..Params {
                        seed,
                        ..Params::default()
                    }
                },
            )
        })
        .collect()
}

fn fig18a(scale: f64, seed: u64) -> Vec<(String, Params)> {
    fig13b(scale, seed)
}

fn fig18b(scale: f64, seed: u64) -> Vec<(String, Params)> {
    sweep_k(scale, seed, false)
}

fn oldenburg_base(scale: f64, seed: u64) -> Params {
    // Fig. 19: Oldenburg map (7035 edges), N = 64K, Brinkhoff movement.
    Params {
        edges: 7_035,
        n_objects: 64_000,
        n_queries: 8_000,
        oldenburg: true,
        movement: MovementModel::Brinkhoff,
        seed,
        ..Params::default()
    }
    .scaled(scale)
}

fn fig19a(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000]
        .into_iter()
        .map(|q| {
            let p = oldenburg_base(scale, seed);
            let q_scaled = (((q as f64) * scale).round() as usize).max(1);
            (
                format!("Q={}K", q / 1000),
                Params {
                    n_queries: q_scaled,
                    ..p
                },
            )
        })
        .collect()
}

fn fig19b(scale: f64, seed: u64) -> Vec<(String, Params)> {
    sweep_k(scale, seed, true)
}

/// Engine scaling (not in the paper): the sharded engine at 1/2/4/8 shards
/// against single-threaded GMA, at Table 2 defaults and at doubled object
/// load. The shard count is the algorithm axis (`ENG-1` … `ENG-8`), so one
/// series point yields the whole shards-vs-latency curve.
fn engine_scaling(scale: f64, seed: u64) -> Vec<(String, Params)> {
    let p = base(scale, seed);
    vec![
        ("T2-defaults".to_string(), p.clone()),
        (
            "2x-objects".to_string(),
            Params {
                n_objects: p.n_objects * 2,
                ..p
            },
        ),
    ]
}

/// Replica maintenance (not in the paper): the sharded engine's resync /
/// eviction counters under increasing query churn. Query agility drives
/// halo growth and shrink, which is exactly the replica-lifecycle work the
/// incremental maintenance subsystem bounds.
fn engine_repl(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [0.05, 0.20, 0.50]
        .into_iter()
        .map(|f| {
            (
                format!("f_qry={}%", (f * 100.0) as u32),
                Params {
                    query_agility: f,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

/// Tick-path flatness (not in the paper): the default engine scenario at
/// Table 2 defaults plus an elevated-churn point and an edge-weight-churn
/// point, reporting the arena/heap allocation counter, shared-expansion
/// reuse, raw expansion steps, and the tree-surgery counters (nodes
/// recycled through the tree pool / nodes pruned). The edge-churn point
/// drives constant subtree cuts and re-expansions, so it pins the
/// zero-alloc guarantee on ticks that perform tree *surgery*, not just
/// reads. The experiments binary asserts alloc-free steady-state ticks for
/// the single monitors, `shared_expansions > 0`, and surgery recycling on
/// this figure.
fn tickpath(scale: f64, seed: u64) -> Vec<(String, Params)> {
    let p = base(scale, seed);
    vec![
        ("T2-defaults".to_string(), p.clone()),
        (
            "hi-churn".to_string(),
            Params {
                object_agility: 0.20,
                query_agility: 0.20,
                ..p.clone()
            },
        ),
        (
            "edge-churn".to_string(),
            Params {
                edge_agility: 0.16,
                ..p
            },
        ),
    ]
}

/// Load-aware re-partitioning (not in the paper): a skewed hotspot whose
/// center drifts across the network, run through the statically
/// partitioned engine and the rebalancing one at the same shard count.
/// The static engine pins the hotspot to whichever worker owns it; the
/// rebalancer migrates boundary cells after it, which the max/mean
/// shard-load ratio and the `cells_migrated` counter make visible. One
/// wide point and one tight point (hotspot spread).
fn rebalance(scale: f64, seed: u64) -> Vec<(String, Params)> {
    let p = Params {
        hotspot: true,
        // Half the queries jump to the hotspot each tick — enough skew to
        // dominate the load signal while the rest keep walking normally.
        query_agility: 0.5,
        object_agility: 0.10,
        ..base(scale, seed)
    };
    vec![
        ("hotspot-drift".to_string(), p.clone()),
        (
            "hotspot-hi-churn".to_string(),
            Params {
                query_agility: 0.8,
                object_agility: 0.20,
                ..p
            },
        ),
    ]
}

/// Cluster deployment (not in the paper): the in-process sharded engine
/// against the shard-per-process loopback cluster. Work counters must
/// line up exactly (the RPC layer is answer-identical, which the
/// differential suite proves bit-for-bit); the CPU delta is the
/// framing/serialisation overhead, and the frames/bytes counters size
/// the delta protocol per tick. One defaults point and one
/// elevated-churn point (churn grows the deltas, so it bounds the
/// protocol under load).
fn cluster(scale: f64, seed: u64) -> Vec<(String, Params)> {
    let p = base(scale, seed);
    vec![
        ("T2-defaults".to_string(), p.clone()),
        (
            "hi-churn".to_string(),
            Params {
                object_agility: 0.20,
                query_agility: 0.20,
                ..p
            },
        ),
    ]
}

/// Durability (not in the paper): the fault-free loopback cluster
/// against durable clusters whose first shard is crashed once mid-run
/// (delivered-frame budget) and rebuilt from monitor-state snapshot +
/// journal-suffix replay. The artifact sizes the durability plane
/// (snapshot KB, journal length) and pins the recovery bound: frames
/// replayed per recovery must track the snapshot cadence, not the run
/// length. Same sweep as the cluster figure, so the CLU-2 column
/// doubles as the no-durability control.
fn recovery(scale: f64, seed: u64) -> Vec<(String, Params)> {
    cluster(scale, seed)
}

/// Replication (not in the paper): the in-process engines against
/// quorum-replicated clusters whose every shard leader is killed
/// mid-run with stillborn respawns, forcing a follower promotion per
/// shard. The artifact proves answer-identity *through failover* (the
/// CLU-n-R work columns must equal ENG-n's) and sizes the replication
/// plane: commit lag per tick (pinned by the CI gate — the synchronous
/// quorum pipeline holds it at one outstanding frame per replicated
/// event), replica bytes, and the failover/fencing counters. Same sweep
/// as the cluster figure so the protocol overhead is comparable.
fn replication(scale: f64, seed: u64) -> Vec<(String, Params)> {
    cluster(scale, seed)
}

/// Ingest front-end (not in the paper): the batch-fed engine against
/// the same engine fed the raw oversampled firehose stream through the
/// MPSC ingest stage, one point per feed shape. The lossless ING column
/// shows what coalescing folds away (`coalesced_per_ts`) at zero
/// steady-state drain allocations; the ING-SHED column shows what
/// tight `ShedOldest` admission drops (`shed_events`).
fn ingest(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [
        FirehosePattern::FlashCrowd,
        FirehosePattern::CommuteWave,
        FirehosePattern::IncidentResponse,
    ]
    .into_iter()
    .map(|pattern| {
        (
            pattern.name().to_string(),
            Params {
                firehose: Some(pattern),
                ..base(scale, seed)
            },
        )
    })
    .collect()
}

/// Ablation (not in the paper): IMA with vs without influence lists.
fn ablation_influence(scale: f64, seed: u64) -> Vec<(String, Params)> {
    [0.05, 0.10, 0.20]
        .into_iter()
        .map(|f| {
            (
                format!("f_obj={}%", (f * 100.0) as u32),
                Params {
                    object_agility: f,
                    ..base(scale, seed)
                },
            )
        })
        .collect()
}

/// All experiments, in paper order.
pub fn all_figures() -> Vec<Figure> {
    vec![
        Figure {
            name: "fig13a",
            title: "Figure 13(a): CPU time vs object cardinality N",
            algos: Algo::paper_set(),
            memory: false,
            points: fig13a,
        },
        Figure {
            name: "fig13b",
            title: "Figure 13(b): CPU time vs query cardinality Q",
            algos: Algo::paper_set(),
            memory: false,
            points: fig13b,
        },
        Figure {
            name: "fig14a",
            title: "Figure 14(a): CPU time vs number of NNs k (log scale in the paper)",
            algos: Algo::paper_set(),
            memory: false,
            points: fig14a,
        },
        Figure {
            name: "fig14b",
            title: "Figure 14(b): CPU time vs edge agility f_edg",
            algos: Algo::paper_set(),
            memory: false,
            points: fig14b,
        },
        Figure {
            name: "fig15a",
            title: "Figure 15(a): CPU time vs object agility f_obj",
            algos: Algo::paper_set(),
            memory: false,
            points: fig15a,
        },
        Figure {
            name: "fig15b",
            title: "Figure 15(b): CPU time vs object speed v_obj",
            algos: Algo::paper_set(),
            memory: false,
            points: fig15b,
        },
        Figure {
            name: "fig16a",
            title: "Figure 16(a): CPU time vs query agility f_qry",
            algos: Algo::paper_set(),
            memory: false,
            points: fig16a,
        },
        Figure {
            name: "fig16b",
            title: "Figure 16(b): CPU time vs query speed v_qry",
            algos: Algo::paper_set(),
            memory: false,
            points: fig16b,
        },
        Figure {
            name: "fig17a",
            title: "Figure 17(a): CPU time vs object/query distributions",
            algos: Algo::paper_set(),
            memory: false,
            points: fig17a,
        },
        Figure {
            name: "fig17b",
            title: "Figure 17(b): CPU time vs network size (fixed densities)",
            algos: Algo::paper_set(),
            memory: false,
            points: fig17b,
        },
        Figure {
            name: "fig18a",
            title: "Figure 18(a): memory (KBytes) vs query cardinality Q",
            algos: Algo::memory_set(),
            memory: true,
            points: fig18a,
        },
        Figure {
            name: "fig18b",
            title: "Figure 18(b): memory (KBytes) vs number of NNs k",
            algos: Algo::memory_set(),
            memory: true,
            points: fig18b,
        },
        Figure {
            name: "fig19a",
            title: "Figure 19(a): Brinkhoff generator, Oldenburg map — CPU time vs Q",
            algos: Algo::paper_set(),
            memory: false,
            points: fig19a,
        },
        Figure {
            name: "fig19b",
            title: "Figure 19(b): Brinkhoff generator, Oldenburg map — CPU time vs k",
            algos: Algo::paper_set(),
            memory: false,
            points: fig19b,
        },
        Figure {
            name: "ablation-il",
            title: "Ablation: IMA with vs without influence lists",
            algos: &[Algo::Ima, Algo::ImaNoInfluence],
            memory: false,
            points: ablation_influence,
        },
        Figure {
            name: "engine",
            title: "Engine scaling: sharded engine (1/2/4/8 shards) vs single-threaded GMA",
            algos: Algo::engine_set(),
            memory: false,
            points: engine_scaling,
        },
        Figure {
            name: "engine_repl",
            title: "Replica maintenance: resync/evictions vs query agility (2/4/8 shards)",
            algos: Algo::engine_repl_set(),
            memory: false,
            points: engine_repl,
        },
        Figure {
            name: "tickpath",
            title: "Tick path: arena allocs, shared expansions, heap steps (IMA/GMA/ENG-4)",
            algos: Algo::tickpath_set(),
            memory: false,
            points: tickpath,
        },
        Figure {
            name: "rebalance",
            title:
                "Rebalance: drifting hotspot, static vs load-aware partition (ENG-4 vs ENG-4-RB)",
            algos: Algo::rebalance_set(),
            memory: false,
            points: rebalance,
        },
        Figure {
            name: "cluster",
            title: "Cluster: in-process ENG-4 vs shard-per-process loopback (CLU-2/CLU-4)",
            algos: Algo::cluster_set(),
            memory: false,
            points: cluster,
        },
        Figure {
            name: "recovery",
            title: "Recovery: crash each shard mid-run, rebuild from snapshot + journal suffix",
            algos: Algo::recovery_set(),
            memory: false,
            points: recovery,
        },
        Figure {
            name: "replication",
            title: "Replication: quorum-replicated CLU-n-R with leader kills vs ENG-n",
            algos: Algo::replication_set(),
            memory: false,
            points: replication,
        },
        Figure {
            name: "ingest",
            title: "Ingest: batch-fed ENG-4 vs firehose-fed ING-4 (coalescing) / ING-4-SHED",
            algos: Algo::ingest_set(),
            memory: false,
            points: ingest,
        },
    ]
}

/// Finds a figure by its short name.
pub fn figure_by_name(name: &str) -> Option<Figure> {
    all_figures().into_iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_figures_present() {
        let names: Vec<&str> = all_figures().iter().map(|f| f.name).collect();
        for expected in [
            "fig13a", "fig13b", "fig14a", "fig14b", "fig15a", "fig15b", "fig16a", "fig16b",
            "fig17a", "fig17b", "fig18a", "fig18b", "fig19a", "fig19b",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn sweeps_have_paper_point_counts() {
        let f = figure_by_name("fig13a").unwrap();
        assert_eq!((f.points)(0.01, 1).len(), 5);
        let f = figure_by_name("fig17a").unwrap();
        assert_eq!((f.points)(0.01, 1).len(), 4);
        let f = figure_by_name("fig19a").unwrap();
        assert_eq!((f.points)(0.01, 1).len(), 7);
    }

    #[test]
    fn sweep_varies_only_target_parameter() {
        let f = figure_by_name("fig14b").unwrap();
        let pts = (f.points)(0.02, 3);
        let agilities: Vec<f64> = pts.iter().map(|(_, p)| p.edge_agility).collect();
        assert_eq!(agilities, vec![0.01, 0.02, 0.04, 0.08, 0.16]);
        for (_, p) in &pts {
            assert_eq!(p.k, Params::default().k);
            assert_eq!(p.n_queries, pts[0].1.n_queries);
        }
    }

    #[test]
    fn engine_figure_sweeps_shard_counts() {
        let f = figure_by_name("engine").unwrap();
        let names: Vec<&str> = f.algos.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["GMA", "ENG-1", "ENG-2", "ENG-4", "ENG-8"]);
        assert!(!f.memory);
        assert_eq!((f.points)(0.01, 1).len(), 2);
    }

    #[test]
    fn engine_repl_figure_sweeps_query_agility_over_sharded_engines() {
        let f = figure_by_name("engine_repl").unwrap();
        let names: Vec<&str> = f.algos.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["ENG-2", "ENG-4", "ENG-8"]);
        let pts = (f.points)(0.01, 1);
        let agilities: Vec<f64> = pts.iter().map(|(_, p)| p.query_agility).collect();
        assert_eq!(agilities, vec![0.05, 0.20, 0.50]);
    }

    #[test]
    fn ingest_figure_sweeps_feed_shapes() {
        let f = figure_by_name("ingest").unwrap();
        let names: Vec<&str> = f.algos.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["ENG-4", "ING-4", "ING-4-SHED"]);
        let pts = (f.points)(0.01, 1);
        let labels: Vec<&str> = pts.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["flash-crowd", "commute-wave", "incident-response"]
        );
        for (_, p) in &pts {
            assert!(p.firehose.is_some());
        }
    }

    #[test]
    fn cluster_figure_pairs_engine_and_cluster() {
        let f = figure_by_name("cluster").unwrap();
        let names: Vec<&str> = f.algos.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["ENG-4", "CLU-2", "CLU-4"]);
        assert!(!f.memory);
        assert_eq!((f.points)(0.01, 1).len(), 2);
    }

    #[test]
    fn replication_figure_pairs_engines_with_replicated_clusters() {
        let f = figure_by_name("replication").unwrap();
        let names: Vec<&str> = f.algos.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["ENG-2", "ENG-4", "CLU-2-R", "CLU-4-R"]);
        assert!(!f.memory);
        assert_eq!((f.points)(0.01, 1).len(), 2);
    }

    #[test]
    fn fig19_uses_brinkhoff_and_oldenburg() {
        let f = figure_by_name("fig19a").unwrap();
        for (_, p) in (f.points)(0.05, 1) {
            assert!(p.oldenburg);
            assert_eq!(p.movement, rnn_workload::MovementModel::Brinkhoff);
        }
    }
}
