//! Drives the monitors over identical update streams and collects the
//! measurements the paper reports: CPU time per timestamp (the y-axis of
//! Figs. 13–17 and 19), memory in KBytes (Fig. 18), plus deterministic
//! operation counters (machine-independent shape validation; DESIGN.md
//! substitution #3).

use std::time::Duration;

use rnn_core::{
    ContinuousMonitor, Gma, Ima, MemoryUsage, OpCounters, Ovh, TickReport, TransportStats,
    UpdateBatch, UpdateEvent,
};
use rnn_workload::{Firehose, FirehoseConfig, FirehosePattern, Scenario};

use crate::params::Params;

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The from-scratch baseline (§6).
    Ovh,
    /// Incremental monitoring (§4).
    Ima,
    /// Group monitoring (§5).
    Gma,
    /// Ablation: IMA with influence lists disabled (every update hits
    /// every query). Quantifies the paper's "ignore irrelevant updates"
    /// claim.
    ImaNoInfluence,
    /// The sharded engine (`rnn-engine`) with this many shards, GMA
    /// inside each.
    Sharded(u8),
    /// The sharded engine with dynamic load-aware re-partitioning enabled
    /// (`EngineConfig::with_rebalancing`).
    ShardedRebal(u8),
    /// The shard-per-process cluster (`rnn-cluster`) with this many
    /// shards over fault-free loopback RPC. Work counters are
    /// bit-identical to `Sharded(n)`; the CPU delta is the
    /// framing/serialisation cost of the delta protocol.
    Cluster(u8),
    /// The cluster with the durability plane on and a crash injected:
    /// every shard snapshots its monitor state each
    /// [`DURABLE_SNAPSHOT_EVERY`] journaled event frames, its transport
    /// kills the service after [`DURABLE_CRASH_AFTER_FRAMES`] delivered
    /// frames, and recovery rebuilds from snapshot + journal suffix.
    /// Sizes crash recovery: recoveries, frames replayed per recovery
    /// (the O(WAL-suffix) bound the CI gate pins), snapshot bytes.
    ClusterDurable(u8),
    /// The durable cluster with quorum replication on and a leader kill
    /// injected: every shard streams its event frames to
    /// [`REPLICATION_FACTOR`] follower replicas (majority quorum), its
    /// transport kills the service after
    /// [`REPLICATED_CRASH_AFTER_FRAMES`] delivered frames, and respawns
    /// are stillborn — so the recovery budget burns down and a follower
    /// is *promoted*, serving the back half of the run. Work counters
    /// stay bit-identical to `Sharded(n)` through the failover; the
    /// commit-lag and replica-byte columns size the replication plane.
    ClusterReplicated(u8),
    /// The sharded engine fed through the MPSC ingest stage
    /// (`rnn_engine::ingest`) instead of pre-built batches: the raw
    /// oversampled firehose stream is submitted event-by-event and
    /// coalesced at the tick-boundary drain (blocking admission, lanes
    /// sized so nothing sheds). Requires a [`Params::firehose`] pattern.
    Ingest(u8),
    /// The ingest-fed engine under deliberately tight admission:
    /// per-lane buffers sized well below the firehose rate with
    /// [`rnn_engine::AdmissionPolicy::ShedOldest`], so the shed counter
    /// shows what bounded-queue backpressure drops.
    IngestShed(u8),
}

/// Snapshot cadence of [`Algo::ClusterDurable`], in journaled event
/// frames. Pinned so the recovery artifact is deterministic; the
/// replayed-per-recovery bound asserted by the recovery smoke is this
/// plus the in-flight frame.
pub const DURABLE_SNAPSHOT_EVERY: u32 = 8;

/// Delivered-frame budget after which each [`Algo::ClusterDurable`]
/// shard's transport kills its service, forcing exactly one crash and
/// snapshot+suffix recovery per shard mid-run.
pub const DURABLE_CRASH_AFTER_FRAMES: u32 = 30;

/// Follower replicas per shard for [`Algo::ClusterReplicated`]
/// (majority quorum via `ReplicationConfig::with_replicas`). Two, so
/// the log still has a live follower after one is promoted.
pub const REPLICATION_FACTOR: u32 = 2;

/// Delivered-frame budget after which each [`Algo::ClusterReplicated`]
/// shard's transport kills its service. The fault plan marks respawns
/// stillborn, so snapshot+replay recovery is exhausted and the link
/// must promote a follower — exactly one failover per shard per run.
/// Lower than [`DURABLE_CRASH_AFTER_FRAMES`] so even the smallest
/// gated sweep point kills *every* shard's leader (at 4 shards the
/// install stream splits four ways, and the replication smoke asserts
/// one promotion per shard).
pub const REPLICATED_CRASH_AFTER_FRAMES: u32 = 12;

impl Algo {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Ovh => "OVH",
            Algo::Ima => "IMA",
            Algo::Gma => "GMA",
            Algo::ImaNoInfluence => "IMA-noIL",
            Algo::Sharded(1) => "ENG-1",
            Algo::Sharded(2) => "ENG-2",
            Algo::Sharded(4) => "ENG-4",
            Algo::Sharded(8) => "ENG-8",
            Algo::Sharded(_) => "ENG-n",
            Algo::ShardedRebal(2) => "ENG-2-RB",
            Algo::ShardedRebal(4) => "ENG-4-RB",
            Algo::ShardedRebal(8) => "ENG-8-RB",
            Algo::ShardedRebal(_) => "ENG-n-RB",
            Algo::Cluster(1) => "CLU-1",
            Algo::Cluster(2) => "CLU-2",
            Algo::Cluster(4) => "CLU-4",
            Algo::Cluster(8) => "CLU-8",
            Algo::Cluster(_) => "CLU-n",
            Algo::ClusterDurable(1) => "CLU-1-D",
            Algo::ClusterDurable(2) => "CLU-2-D",
            Algo::ClusterDurable(4) => "CLU-4-D",
            Algo::ClusterDurable(8) => "CLU-8-D",
            Algo::ClusterDurable(_) => "CLU-n-D",
            Algo::ClusterReplicated(2) => "CLU-2-R",
            Algo::ClusterReplicated(4) => "CLU-4-R",
            Algo::ClusterReplicated(8) => "CLU-8-R",
            Algo::ClusterReplicated(_) => "CLU-n-R",
            Algo::Ingest(1) => "ING-1",
            Algo::Ingest(2) => "ING-2",
            Algo::Ingest(4) => "ING-4",
            Algo::Ingest(8) => "ING-8",
            Algo::Ingest(_) => "ING-n",
            Algo::IngestShed(4) => "ING-4-SHED",
            Algo::IngestShed(_) => "ING-n-SHED",
        }
    }

    /// The three paper algorithms.
    pub fn paper_set() -> &'static [Algo] {
        &[Algo::Ovh, Algo::Ima, Algo::Gma]
    }

    /// IMA and GMA only (the memory experiments of Fig. 18).
    pub fn memory_set() -> &'static [Algo] {
        &[Algo::Ima, Algo::Gma]
    }

    /// The engine-scaling set: single-threaded GMA against the sharded
    /// engine at 1, 2, 4 and 8 shards.
    pub fn engine_set() -> &'static [Algo] {
        &[
            Algo::Gma,
            Algo::Sharded(1),
            Algo::Sharded(2),
            Algo::Sharded(4),
            Algo::Sharded(8),
        ]
    }

    /// The replica-maintenance set: multi-shard engines only (a single
    /// shard has no halos, a single monitor no replicas).
    pub fn engine_repl_set() -> &'static [Algo] {
        &[Algo::Sharded(2), Algo::Sharded(4), Algo::Sharded(8)]
    }

    /// The tick-path set (arena/heap/sharing counters): the incremental
    /// monitors and the default sharded engine.
    pub fn tickpath_set() -> &'static [Algo] {
        &[Algo::Ima, Algo::Gma, Algo::Sharded(4)]
    }

    /// The rebalance set: the statically partitioned engine against the
    /// load-aware one, at the same shard count, under the same skewed
    /// drifting-hotspot stream.
    pub fn rebalance_set() -> &'static [Algo] {
        &[Algo::Sharded(4), Algo::ShardedRebal(4)]
    }

    /// The cluster set: the in-process engine against the
    /// shard-per-process loopback cluster, same shard count, plus a
    /// smaller cluster for the frames-vs-shards shape.
    pub fn cluster_set() -> &'static [Algo] {
        &[Algo::Sharded(4), Algo::Cluster(2), Algo::Cluster(4)]
    }

    /// The recovery set: the fault-free loopback cluster against the
    /// durable cluster with a crash injected per shard, so the artifact
    /// shows what durability costs (snapshots, WAL) and what recovery
    /// replays (the O(WAL-suffix) bound).
    pub fn recovery_set() -> &'static [Algo] {
        &[
            Algo::Cluster(2),
            Algo::ClusterDurable(2),
            Algo::ClusterDurable(4),
        ]
    }

    /// The replication set: the in-process engines as the oracle
    /// columns against quorum-replicated clusters at the same shard
    /// counts. Every replicated shard's leader is killed mid-run with
    /// stillborn respawns, so each CLU-n-R answer column is served by a
    /// promoted follower for the back half of the run — and must still
    /// match ENG-n's work counters exactly.
    pub fn replication_set() -> &'static [Algo] {
        &[
            Algo::Sharded(2),
            Algo::Sharded(4),
            Algo::ClusterReplicated(2),
            Algo::ClusterReplicated(4),
        ]
    }

    /// The ingest set: the batch-fed engine as the oracle column, the
    /// ingest-fed engine (lossless, blocking admission), and the
    /// shedding engine (tight buffers), all at the same shard count.
    pub fn ingest_set() -> &'static [Algo] {
        &[Algo::Sharded(4), Algo::Ingest(4), Algo::IngestShed(4)]
    }

    /// Whether this algorithm is the sharded engine (and thus reports
    /// replica/resync counters). The cluster qualifies: it *is* the
    /// sharded engine, routed over RPC; so do the ingest-fed engines.
    pub fn is_sharded(self) -> bool {
        matches!(
            self,
            Algo::Sharded(_)
                | Algo::ShardedRebal(_)
                | Algo::Cluster(_)
                | Algo::ClusterDurable(_)
                | Algo::ClusterReplicated(_)
                | Algo::Ingest(_)
                | Algo::IngestShed(_)
        )
    }

    /// Whether this algorithm consumes the raw firehose stream through
    /// the ingest stage rather than pre-built effective batches.
    pub fn is_ingest(self) -> bool {
        matches!(self, Algo::Ingest(_) | Algo::IngestShed(_))
    }
}

/// Measurements for one `(parameter value, algorithm)` cell.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm.
    pub algo: Algo,
    /// Mean wall-clock processing time per timestamp (seconds).
    pub cpu_per_ts: f64,
    /// Mean deterministic work units per timestamp (see
    /// [`OpCounters::work`]).
    pub work_per_ts: f64,
    /// Resident memory at the end of the run (KBytes, Fig. 18's unit) —
    /// per-algorithm state only (trees, influence lists, tables).
    pub memory_kb: f64,
    /// Active node count (GMA only; the paper reports e.g. "844 active
    /// nodes on average").
    pub active_nodes: Option<usize>,
    /// Mean updates ignored per timestamp.
    pub ignored_per_ts: f64,
    /// Mean query reevaluations per timestamp (NN recomputations forced
    /// by object or edge updates hitting a query's influence region).
    pub reevals_per_ts: f64,
    /// Mean objects touched by replica resync per timestamp (sharded
    /// engine only; 0 for single monitors).
    pub resync_per_ts: f64,
    /// Mean replicas evicted per timestamp (sharded engine only).
    pub evictions_per_ts: f64,
    /// Largest replica-resync cost observed on any single tick (warmup
    /// included). The experiments binary asserts this never exceeds the
    /// object cardinality — the engine's O(changed-edges) guarantee.
    pub max_tick_resync: u64,
    /// Mean tick-path *maintenance* allocation events per measured
    /// timestamp (arena backing-buffer reallocations, Dijkstra heap
    /// growth, tree-pool slab/directory growth). Zero proves the steady
    /// state runs allocation-free — tree surgery included; the experiments
    /// binary asserts this for IMA/GMA on the tickpath figure.
    pub alloc_per_ts: f64,
    /// Mean allocation events per measured timestamp attributable to
    /// installing brand-new monitored entities (query installs, GMA
    /// active-node activations) — expected to be nonzero while the
    /// monitored population is still discovering new anchors, and excluded
    /// from the zero-alloc steady-state guarantee.
    pub install_alloc_per_ts: f64,
    /// Mean expansions served from a shared expansion per timestamp (see
    /// `OpCounters::shared_expansions`).
    pub shared_per_ts: f64,
    /// Mean raw Dijkstra heap pops per timestamp.
    pub steps_per_ts: f64,
    /// Mean expansion-tree nodes recycled through the tree pool's free
    /// list per timestamp — the tree-surgery reuse rate. Together with
    /// `alloc_per_ts` at zero it proves subtree cuts and re-expansion
    /// inserts ran without heap allocation.
    pub recycled_per_ts: f64,
    /// Mean expansion-tree nodes pruned (cuts, θ-prunes, re-roots) per
    /// timestamp — the surgery volume the recycle rate is measured
    /// against.
    pub pruned_per_ts: f64,
    /// Total load-aware rebalances over the measured run (sharded engine
    /// with rebalancing only).
    pub rebalances: u64,
    /// Total partition cells migrated over the measured run.
    pub cells_migrated: u64,
    /// Mean RPC frames moved (sent + received, all shards) per measured
    /// timestamp — 0 for every in-process monitor. Deterministic on a
    /// fault-free loopback transport, so the CI gate pins it: a frame
    /// regression means the delta protocol started shipping more
    /// messages per tick.
    pub frames_per_ts: f64,
    /// Mean RPC payload bytes moved (sent + received) per measured
    /// timestamp — sizes the delta protocol itself.
    pub bytes_per_ts: f64,
    /// Total retransmissions over the whole run, warmup included (retry
    /// storms cluster at startup, so the measured window must not hide
    /// them). Must stay 0 on a fault-free transport.
    pub retries: u64,
    /// Mean max/mean shard-load ratio across the measured ticks (1.0 =
    /// perfectly balanced; 0.0 for monitors that report none). Averaged
    /// rather than sampled at the end: under a drifting hotspot any single
    /// tick catches the rebalancer mid-adaptation, while the mean captures
    /// the sustained balance the migration buys.
    pub load_ratio: f64,
    /// Total crash recoveries over the whole run, warmup included
    /// (injected crashes fire on delivered-frame budgets, often during
    /// installation). 0 for fault-free and in-process monitors.
    pub recoveries: u64,
    /// Mean event frames replayed per crash recovery (0 when nothing
    /// crashed). With snapshots on, this is bounded by the journal
    /// suffix since the last snapshot — the O(WAL-suffix) recovery
    /// bound the CI gate pins; full-history replay would blow it up.
    pub replayed_per_recovery: f64,
    /// Total monitor-state snapshots taken over the run.
    pub snapshots: u64,
    /// Size of the latest durable monitor-state snapshot, KBytes summed
    /// over shards (sizes the snapshot plane against `memory_kb`).
    pub snapshot_kb: f64,
    /// Final coordinator journal length in event frames, summed over
    /// shards. With snapshots every E frames this must stay < E per
    /// shard — the journal-truncation guarantee (it grew without bound
    /// before the durability plane).
    pub journal_len: u64,
    /// Mean frames outstanding-at-commit per measured timestamp on the
    /// replication plane (0 when replication is off). The synchronous
    /// append pipeline commits every replicated event frame with exactly
    /// one frame outstanding, so the rate is a deterministic constant
    /// the CI gate pins: growth means the leader started racing ahead
    /// of its quorum (uncommitted appends piling up behind acks).
    pub commit_lag_frames: f64,
    /// Total follower-to-leader promotions over the whole run, warmup
    /// included (leader kills fire on delivered-frame budgets, often
    /// before the measured window opens).
    pub failovers: u64,
    /// Total replication frames rejected by a replica for carrying a
    /// stale leadership epoch (the fencing path; 0 in a healthy run).
    pub fenced_appends: u64,
    /// Total bytes shipped to follower replicas over the whole run —
    /// append, heartbeat, promote, and snapshot-offer traffic. Sizes
    /// the replication plane against the coordinator's `bytes_per_ts`.
    pub replica_bytes: u64,
    /// Mean superseded submissions folded away by ingest coalescing per
    /// measured timestamp (ingest-fed engines only; 0 elsewhere).
    /// Deterministic for a pinned firehose seed, so the CI gate pins its
    /// ceiling (growth = the fold double-counting) while the ingest
    /// smoke asserts it stays nonzero (a zero = coalescing stopped).
    pub coalesced_per_ts: f64,
    /// Total submissions dropped by `ShedOldest` admission over the
    /// measured window (ingest-fed engines with tight buffers only).
    pub shed_events: u64,
    /// Total ingest-drain allocation events over the measured window —
    /// lane-buffer growth, merge-scratch growth, coalesce-table rehash.
    /// Window-total (not a rate) so the gate holds it at exactly zero:
    /// warmup absorbs the one-off high-water growth, after which the
    /// swap-and-merge drain must run allocation-free.
    pub drain_alloc_events: u64,
}

/// A labelled point of a figure series.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// X-axis label (e.g. `"N=10K"` or `"k=25"`).
    pub label: String,
    /// One result per requested algorithm.
    pub results: Vec<RunResult>,
}

fn algo_memory(m: &MemoryUsage) -> f64 {
    // Fig. 18 compares *algorithm state*: query table, expansion trees and
    // influence lists. The shared edge table and scratch space are common
    // to all methods and excluded, as in the paper's discussion.
    (m.query_table + m.expansion_trees + m.influence_lists) as f64 / 1024.0
}

/// Instantiates a monitor for `algo` over `net`.
pub fn make_monitor(
    algo: Algo,
    net: std::sync::Arc<rnn_roadnet::RoadNetwork>,
) -> Box<dyn ContinuousMonitor> {
    match algo {
        Algo::Ovh => Box::new(Ovh::new(net)),
        Algo::Ima => Box::new(Ima::new(net)),
        Algo::Gma => Box::new(Gma::new(net)),
        Algo::ImaNoInfluence => {
            let mut ima = Ima::new(net);
            ima.set_use_influence_lists(false);
            Box::new(ima)
        }
        Algo::Sharded(shards) => Box::new(rnn_engine::ShardedEngine::new(
            net,
            rnn_engine::EngineConfig::with_shards(usize::from(shards).max(1)),
        )),
        Algo::ShardedRebal(shards) => Box::new(rnn_engine::ShardedEngine::new(
            net,
            rnn_engine::EngineConfig::with_rebalancing(usize::from(shards).max(1)),
        )),
        Algo::Cluster(shards) => Box::new(rnn_cluster::ClusterEngine::loopback(
            net,
            rnn_engine::EngineConfig::with_shards(usize::from(shards).max(1)),
        )),
        // Batch-fed fallback: without the ingest drive loop of
        // `run_point` an ingest algo degenerates to the plain sharded
        // engine (same monitor, nothing submitted out-of-band).
        Algo::Ingest(shards) | Algo::IngestShed(shards) => {
            Box::new(rnn_engine::ShardedEngine::new(
                net,
                rnn_engine::EngineConfig::with_shards(usize::from(shards).max(1)),
            ))
        }
        Algo::ClusterDurable(shards) => Box::new(rnn_cluster::ClusterEngine::loopback_durable(
            net,
            rnn_engine::EngineConfig::with_shards(usize::from(shards).max(1)),
            &[rnn_cluster::FaultPlan {
                crash_after_frames: DURABLE_CRASH_AFTER_FRAMES,
                ..Default::default()
            }],
            rnn_cluster::RetryPolicy::default(),
            rnn_cluster::DurabilityConfig::in_memory(DURABLE_SNAPSHOT_EVERY),
        )),
        Algo::ClusterReplicated(shards) => {
            let cfg = rnn_engine::EngineConfig {
                replication: rnn_engine::ReplicationConfig::with_replicas(REPLICATION_FACTOR),
                ..rnn_engine::EngineConfig::with_shards(usize::from(shards).max(1))
            };
            Box::new(rnn_cluster::ClusterEngine::loopback_durable(
                net,
                cfg,
                &[rnn_cluster::FaultPlan {
                    crash_after_frames: REPLICATED_CRASH_AFTER_FRAMES,
                    respawn_dead: true,
                    ..Default::default()
                }],
                rnn_cluster::RetryPolicy::default(),
                rnn_cluster::DurabilityConfig::in_memory(DURABLE_SNAPSHOT_EVERY),
            ))
        }
    }
}

/// A monitor plus the way its update stream reaches it: pre-built
/// batches straight into `tick`, or raw submissions through the MPSC
/// ingest stage drained at tick boundaries.
enum Driven {
    /// Ticked with the effective one-event-per-entity batch.
    Plain(Box<dyn ContinuousMonitor>),
    /// Fed the raw firehose stream through an [`rnn_engine::IngestHandle`]
    /// and ticked with `tick_ingest` (drain + coalesce + tick).
    Ingest {
        engine: Box<rnn_engine::ShardedEngine>,
        handle: rnn_engine::IngestHandle,
    },
}

impl Driven {
    fn monitor(&self) -> &dyn ContinuousMonitor {
        match self {
            Driven::Plain(m) => m.as_ref(),
            Driven::Ingest { engine, .. } => engine.as_ref(),
        }
    }

    fn monitor_mut(&mut self) -> &mut dyn ContinuousMonitor {
        match self {
            Driven::Plain(m) => m.as_mut(),
            Driven::Ingest { engine, .. } => engine.as_mut(),
        }
    }

    fn tick(&mut self, raw: &[UpdateEvent], effective: &UpdateBatch) -> TickReport {
        match self {
            Driven::Plain(m) => m.tick(effective),
            Driven::Ingest { engine, handle } => {
                for &ev in raw {
                    // Block never errors (the bench sizes lanes above the
                    // firehose rate) and ShedOldest absorbs overflow; only
                    // Reject returns Err, and the bench never uses it.
                    handle.submit(ev).expect("bench ingest submission");
                }
                engine.tick_ingest()
            }
        }
    }
}

/// Instantiates the drive path for `algo`: ingest-fed engines get their
/// admission config sized from the workload cardinality (lossless lanes
/// for [`Algo::Ingest`], deliberately tight shedding lanes for
/// [`Algo::IngestShed`]); everything else goes through [`make_monitor`].
fn make_driven(algo: Algo, net: std::sync::Arc<rnn_roadnet::RoadNetwork>, p: &Params) -> Driven {
    let build = |shards: u8, capacity: usize, policy: rnn_engine::AdmissionPolicy| {
        let cfg = rnn_engine::EngineConfig::builder()
            .shards(usize::from(shards).max(1))
            .ingest_capacity(capacity)
            .admission(policy)
            .build()
            .expect("bench ingest config");
        let engine = Box::new(rnn_engine::ShardedEngine::new(net.clone(), cfg));
        let handle = engine.ingest_handle();
        Driven::Ingest { engine, handle }
    };
    match algo {
        // Lossless: per-lane capacity far above the per-tick firehose
        // rate, so blocking admission never actually parks the producer.
        Algo::Ingest(shards) => build(
            shards,
            p.n_objects.max(4096),
            rnn_engine::AdmissionPolicy::Block,
        ),
        // Lossy: per-lane capacity well below the firehose rate, so the
        // drain window overflows every tick and ShedOldest drops the
        // stalest fixes — the shed_events column is the point.
        Algo::IngestShed(shards) => build(
            shards,
            (p.n_objects / 32).max(16),
            rnn_engine::AdmissionPolicy::ShedOldest,
        ),
        _ => Driven::Plain(make_monitor(algo, net)),
    }
}

/// The update feed of one run: the plain per-tick scenario, or the
/// firehose oversampler around it when the point (or an ingest-fed
/// algorithm) asks for raw submissions.
enum Feed {
    Plain(Box<Scenario>, UpdateBatch),
    Fire(Box<Firehose>),
}

impl Feed {
    fn new(net: std::sync::Arc<rnn_roadnet::RoadNetwork>, params: &Params, ingest: bool) -> Self {
        match (params.firehose, ingest) {
            (Some(pattern), _) => Feed::Fire(Box::new(Firehose::new(
                net,
                FirehoseConfig::new(pattern, params.scenario_config()),
            ))),
            // Ingest algos on a non-firehose point still need a raw
            // stream; the commute wave is the least exotic default.
            (None, true) => Feed::Fire(Box::new(Firehose::new(
                net,
                FirehoseConfig::new(FirehosePattern::CommuteWave, params.scenario_config()),
            ))),
            (None, false) => Feed::Plain(
                Box::new(Scenario::new(net, params.scenario_config())),
                UpdateBatch::default(),
            ),
        }
    }

    fn install_into(&self, monitor: &mut dyn ContinuousMonitor) {
        match self {
            Feed::Plain(s, _) => s.install_into(monitor),
            Feed::Fire(f) => f.install_into(monitor),
        }
    }

    /// Advances one timestamp; returns `(raw, effective)`. The raw view
    /// is empty for plain feeds (no ingest consumer asked for one).
    fn tick(&mut self) -> (&[UpdateEvent], &UpdateBatch) {
        match self {
            Feed::Plain(s, slot) => {
                *slot = s.tick();
                (&[], slot)
            }
            Feed::Fire(f) => {
                let t = f.tick();
                (t.raw, t.effective)
            }
        }
    }
}

/// Renders a series as a machine-readable JSON document (hand-rolled — the
/// vendored serde stub has no serializer) so downstream tooling can track
/// the perf trajectory across PRs.
pub fn series_to_json(figure: &str, series: &[SeriesPoint]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"figure\": \"{}\",\n", esc(figure)));
    out.push_str("  \"points\": [\n");
    for (i, p) in series.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": \"{}\",\n", esc(&p.label)));
        out.push_str("      \"results\": [\n");
        for (j, r) in p.results.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"algo\": \"{}\", \"cpu_per_ts\": {:.9}, \"work_per_ts\": {:.1}, \
                 \"memory_kb\": {:.1}, \"ignored_per_ts\": {:.1}, \
                 \"reevals_per_ts\": {:.1}, \"resync_per_ts\": {:.1}, \
                 \"evictions_per_ts\": {:.1}, \"max_tick_resync\": {}, \
                 \"alloc_per_ts\": {:.3}, \"install_alloc_per_ts\": {:.3}, \
                 \"shared_per_ts\": {:.3}, \
                 \"steps_per_ts\": {:.1}, \"recycled_per_ts\": {:.1}, \
                 \"pruned_per_ts\": {:.1}, \"frames_per_ts\": {:.1}, \
                 \"bytes_per_ts\": {:.1}, \"retries\": {}, \"rebalances\": {}, \
                 \"cells_migrated\": {}, \"load_ratio\": {:.3}, \
                 \"recoveries\": {}, \"replayed_per_recovery\": {:.1}, \
                 \"snapshots\": {}, \"snapshot_kb\": {:.1}, \
                 \"journal_len\": {}, \"commit_lag_frames\": {:.3}, \
                 \"failovers\": {}, \"fenced_appends\": {}, \
                 \"replica_bytes\": {}, \"coalesced_per_ts\": {:.3}, \
                 \"shed_events\": {}, \"drain_alloc_events\": {}}}{}\n",
                esc(r.algo.name()),
                r.cpu_per_ts,
                r.work_per_ts,
                r.memory_kb,
                r.ignored_per_ts,
                r.reevals_per_ts,
                r.resync_per_ts,
                r.evictions_per_ts,
                r.max_tick_resync,
                r.alloc_per_ts,
                r.install_alloc_per_ts,
                r.shared_per_ts,
                r.steps_per_ts,
                r.recycled_per_ts,
                r.pruned_per_ts,
                r.frames_per_ts,
                r.bytes_per_ts,
                r.retries,
                r.rebalances,
                r.cells_migrated,
                r.load_ratio,
                r.recoveries,
                r.replayed_per_recovery,
                r.snapshots,
                r.snapshot_kb,
                r.journal_len,
                r.commit_lag_frames,
                r.failovers,
                r.fenced_appends,
                r.replica_bytes,
                r.coalesced_per_ts,
                r.shed_events,
                r.drain_alloc_events,
                if j + 1 < p.results.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs one parameter point for the given algorithms.
///
/// All monitors consume the **same** update stream. Each is timed on its
/// own `tick` calls only; `warmup` leading timestamps are excluded from the
/// averages (the first ticks pay one-off allocation costs).
pub fn run_point(
    params: &Params,
    algos: &[Algo],
    timestamps: usize,
    warmup: usize,
) -> Vec<RunResult> {
    let net = params.build_network();
    let any_ingest = algos.iter().any(|a| a.is_ingest());
    let mut feed = Feed::new(net.clone(), params, any_ingest);

    let mut monitors: Vec<(Algo, Driven)> = algos
        .iter()
        .map(|&a| (a, make_driven(a, net.clone(), params)))
        .collect();
    for (_, m) in &mut monitors {
        feed.install_into(m.monitor_mut());
    }

    let mut elapsed = vec![Duration::ZERO; monitors.len()];
    let mut counters = vec![OpCounters::default(); monitors.len()];
    // Whole-run totals (warmup included): rebalances cluster in the first
    // ticks of a skewed run, so the migration counters must not lose them.
    let mut total_counters = vec![OpCounters::default(); monitors.len()];
    let mut max_tick_resync = vec![0u64; monitors.len()];
    let mut ratio_sum = vec![0.0f64; monitors.len()];
    let mut ratio_count = vec![0u32; monitors.len()];
    // Transport counters at the start of the measured window: the
    // install phase and the warmup ticks ship frames too, and the
    // per-timestamp rates must exclude them (like the timings do).
    let mut net_base: Vec<TransportStats> = monitors
        .iter()
        .map(|(_, m)| m.monitor().transport_stats().unwrap_or_default())
        .collect();
    let measured = timestamps.saturating_sub(warmup).max(1);
    for t in 0..timestamps {
        let (raw, effective) = feed.tick();
        for (i, (_, m)) in monitors.iter_mut().enumerate() {
            let rep = m.tick(raw, effective);
            max_tick_resync[i] = max_tick_resync[i].max(rep.counters.resync_touched);
            total_counters[i].merge(&rep.counters);
            if t + 1 == warmup {
                if let Some(s) = m.monitor().transport_stats() {
                    net_base[i] = s;
                }
            }
            if t >= warmup {
                elapsed[i] += rep.elapsed;
                counters[i].merge(&rep.counters);
                if let Some(r) = m.monitor().shard_load_ratio() {
                    ratio_sum[i] += r;
                    ratio_count[i] += 1;
                }
            }
        }
    }

    monitors
        .iter()
        .enumerate()
        .map(|(i, (a, m))| {
            let m = m.monitor();
            // Capture the transport delta before `memory()`, which ships
            // its own request/reply pair per shard.
            let final_stats = m.transport_stats();
            let (frames, bytes, retries) = match &final_stats {
                Some(s) => (
                    (s.frames_sent + s.frames_received)
                        .saturating_sub(net_base[i].frames_sent + net_base[i].frames_received),
                    (s.bytes_sent + s.bytes_received)
                        .saturating_sub(net_base[i].bytes_sent + net_base[i].bytes_received),
                    s.retries,
                ),
                None => (0, 0, 0),
            };
            // Durability totals are whole-run (crashes fire on delivered-
            // frame budgets, usually before the measured window opens).
            let dur = final_stats.unwrap_or_default();
            let mem = m.memory();
            let active = m.active_groups();
            RunResult {
                algo: *a,
                cpu_per_ts: elapsed[i].as_secs_f64() / measured as f64,
                work_per_ts: counters[i].work() as f64 / measured as f64,
                memory_kb: algo_memory(&mem),
                active_nodes: active,
                ignored_per_ts: counters[i].updates_ignored as f64 / measured as f64,
                reevals_per_ts: counters[i].reevaluations as f64 / measured as f64,
                resync_per_ts: counters[i].resync_touched as f64 / measured as f64,
                evictions_per_ts: counters[i].replica_evictions as f64 / measured as f64,
                max_tick_resync: max_tick_resync[i],
                alloc_per_ts: counters[i].alloc_events as f64 / measured as f64,
                install_alloc_per_ts: counters[i].install_alloc_events as f64 / measured as f64,
                shared_per_ts: counters[i].shared_expansions as f64 / measured as f64,
                steps_per_ts: counters[i].expansion_steps as f64 / measured as f64,
                recycled_per_ts: counters[i].tree_nodes_recycled as f64 / measured as f64,
                pruned_per_ts: counters[i].tree_nodes_pruned as f64 / measured as f64,
                frames_per_ts: frames as f64 / measured as f64,
                bytes_per_ts: bytes as f64 / measured as f64,
                retries,
                rebalances: total_counters[i].rebalance_events,
                cells_migrated: total_counters[i].cells_migrated,
                load_ratio: if ratio_count[i] > 0 {
                    ratio_sum[i] / f64::from(ratio_count[i])
                } else {
                    0.0
                },
                recoveries: dur.crash_recoveries,
                replayed_per_recovery: if dur.crash_recoveries > 0 {
                    dur.frames_replayed as f64 / dur.crash_recoveries as f64
                } else {
                    0.0
                },
                snapshots: dur.snapshots,
                snapshot_kb: dur.snapshot_bytes as f64 / 1024.0,
                journal_len: dur.journal_len,
                commit_lag_frames: dur
                    .commit_lag_frames
                    .saturating_sub(net_base[i].commit_lag_frames)
                    as f64
                    / measured as f64,
                failovers: dur.failovers,
                fenced_appends: dur.fenced_appends,
                replica_bytes: dur.replica_bytes,
                coalesced_per_ts: counters[i].coalesced_superseded as f64 / measured as f64,
                shed_events: counters[i].shed_events,
                drain_alloc_events: counters[i].drain_alloc_events,
            }
        })
        .collect()
}

/// Runs a whole series (one figure): `points` are `(label, Params)` pairs.
/// With `parallel`, independent points run on worker threads (faster, but
/// wall-clock timings become noisier — intended for shape checks, not for
/// reporting).
pub fn run_series(
    points: &[(String, Params)],
    algos: &[Algo],
    timestamps: usize,
    warmup: usize,
    parallel: bool,
) -> Vec<SeriesPoint> {
    if parallel {
        let mut out: Vec<Option<SeriesPoint>> = vec![None; points.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, (label, p)) in points.iter().enumerate() {
                handles.push((
                    i,
                    scope.spawn(move || SeriesPoint {
                        label: label.clone(),
                        results: run_point(p, algos, timestamps, warmup),
                    }),
                ));
            }
            for (i, h) in handles {
                out[i] = Some(h.join().expect("experiment thread panicked"));
            }
        });
        out.into_iter()
            .map(|o| o.expect("all points filled"))
            .collect()
    } else {
        points
            .iter()
            .map(|(label, p)| SeriesPoint {
                label: label.clone(),
                results: run_point(p, algos, timestamps, warmup),
            })
            .collect()
    }
}

/// Formats a series as an aligned text table (one row per point, one column
/// group per algorithm).
pub fn format_series(title: &str, series: &[SeriesPoint], show_memory: bool) -> String {
    let mut out = format!("## {title}\n");
    if series.is_empty() {
        return out;
    }
    let algos: Vec<Algo> = series[0].results.iter().map(|r| r.algo).collect();
    out.push_str(&format!("{:<16}", "param"));
    for a in &algos {
        if show_memory {
            out.push_str(&format!("{:>14}", format!("{} KB", a.name())));
        } else {
            out.push_str(&format!("{:>14}", format!("{} s/ts", a.name())));
            out.push_str(&format!("{:>14}", format!("{} work", a.name())));
        }
    }
    out.push('\n');
    for p in series {
        out.push_str(&format!("{:<16}", p.label));
        for r in &p.results {
            if show_memory {
                out.push_str(&format!("{:>14.1}", r.memory_kb));
            } else {
                out.push_str(&format!("{:>14.6}", r.cpu_per_ts));
                out.push_str(&format!("{:>14.0}", r.work_per_ts));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            edges: 150,
            n_objects: 300,
            n_queries: 15,
            k: 4,
            ..Params::default()
        }
    }

    #[test]
    fn run_point_produces_results_for_all_algos() {
        let rs = run_point(&tiny(), Algo::paper_set(), 4, 1);
        assert_eq!(rs.len(), 3);
        for r in &rs {
            assert!(r.cpu_per_ts >= 0.0);
            assert!(r.work_per_ts > 0.0, "{:?} did no work", r.algo);
            assert!(r.memory_kb > 0.0);
        }
    }

    #[test]
    fn incremental_beats_overhaul_on_work() {
        // The headline claim: IMA and GMA do less deterministic work per
        // timestamp than recomputing everything from scratch.
        let rs = run_point(&tiny(), Algo::paper_set(), 6, 2);
        let by = |a: Algo| rs.iter().find(|r| r.algo == a).unwrap().work_per_ts;
        assert!(
            by(Algo::Ima) < by(Algo::Ovh),
            "IMA {} !< OVH {}",
            by(Algo::Ima),
            by(Algo::Ovh)
        );
        assert!(
            by(Algo::Gma) < by(Algo::Ovh),
            "GMA {} !< OVH {}",
            by(Algo::Gma),
            by(Algo::Ovh)
        );
    }

    #[test]
    fn influence_list_ablation_ignores_nothing() {
        let rs = run_point(&tiny(), &[Algo::Ima, Algo::ImaNoInfluence], 4, 1);
        let ima = &rs[0];
        let abl = &rs[1];
        assert!(ima.ignored_per_ts > 0.0, "IMA should ignore some updates");
        assert_eq!(abl.ignored_per_ts, 0.0, "the ablation processes everything");
        assert!(abl.work_per_ts >= ima.work_per_ts);
    }

    #[test]
    fn series_runs_and_formats() {
        let pts = vec![
            ("a".to_string(), tiny()),
            (
                "b".to_string(),
                Params {
                    n_objects: 600,
                    ..tiny()
                },
            ),
        ];
        let series = run_series(&pts, &[Algo::Ima], 3, 1, false);
        let txt = format_series("Test", &series, false);
        assert!(txt.contains("IMA s/ts"));
        assert!(txt.lines().count() >= 4);
    }

    #[test]
    fn parallel_series_matches_labels() {
        let pts = vec![("x".to_string(), tiny()), ("y".to_string(), tiny())];
        let series = run_series(&pts, &[Algo::Gma], 2, 0, true);
        assert_eq!(series[0].label, "x");
        assert_eq!(series[1].label, "y");
    }

    #[test]
    fn sharded_engine_runs_as_an_algo() {
        let rs = run_point(&tiny(), &[Algo::Gma, Algo::Sharded(2)], 3, 1);
        assert_eq!(rs.len(), 2);
        let eng = &rs[1];
        assert_eq!(eng.algo.name(), "ENG-2");
        assert!(eng.work_per_ts > 0.0, "engine did no work");
        assert!(eng.memory_kb > 0.0);
    }

    #[test]
    fn replica_counters_only_from_sharded_engine() {
        let p = Params {
            query_agility: 0.3,
            ..tiny()
        };
        let rs = run_point(&p, &[Algo::Gma, Algo::Sharded(2)], 5, 1);
        let gma = &rs[0];
        assert_eq!(gma.resync_per_ts, 0.0, "single monitors never resync");
        assert_eq!(gma.evictions_per_ts, 0.0);
        assert_eq!(gma.max_tick_resync, 0);
        let eng = &rs[1];
        assert!(
            eng.max_tick_resync <= p.n_objects as u64,
            "a tick resynced {} of {} objects",
            eng.max_tick_resync,
            p.n_objects
        );
    }

    #[test]
    fn cluster_matches_in_process_work_and_moves_frames() {
        let rs = run_point(&tiny(), &[Algo::Sharded(2), Algo::Cluster(2)], 4, 1);
        let eng = &rs[0];
        let clu = &rs[1];
        assert_eq!(clu.algo.name(), "CLU-2");
        assert_eq!(
            clu.work_per_ts, eng.work_per_ts,
            "the RPC layer changed the deterministic work"
        );
        assert_eq!(clu.resync_per_ts, eng.resync_per_ts);
        assert!(clu.frames_per_ts > 0.0, "the cluster moved no frames");
        assert!(clu.bytes_per_ts > 0.0);
        assert_eq!(clu.retries, 0, "fault-free loopback must not retry");
        assert_eq!(
            eng.frames_per_ts, 0.0,
            "in-process engines have no transport"
        );
    }

    #[test]
    fn replicated_cluster_fails_over_and_matches_engine_work() {
        // Enough timestamps that every shard's delivered-frame budget
        // ([`REPLICATED_CRASH_AFTER_FRAMES`]) is exhausted mid-run, so
        // each CLU-2-R shard is served by a promoted follower at the
        // end — and the event-coupled counter columns still match the
        // in-process engine. Tree-shape-coupled work counters may
        // legitimately differ after a snapshot restore, and
        // `updates_ignored` inherits a borderline-θ wobble from the
        // recomputed expansion trees (same as the CLU-n-D recovery
        // path), so it gets a 1% band while resync/evictions are exact.
        let rs = run_point(
            &tiny(),
            &[Algo::Sharded(2), Algo::ClusterReplicated(2)],
            40,
            2,
        );
        let eng = &rs[0];
        let clu = &rs[1];
        assert_eq!(clu.algo.name(), "CLU-2-R");
        assert_eq!(
            (clu.resync_per_ts, clu.evictions_per_ts),
            (eng.resync_per_ts, eng.evictions_per_ts),
            "failover changed a restore-stable counter"
        );
        assert!(
            (clu.ignored_per_ts - eng.ignored_per_ts).abs() <= eng.ignored_per_ts * 0.01,
            "ignored drifted past the borderline-θ band: {} vs {}",
            clu.ignored_per_ts,
            eng.ignored_per_ts
        );
        assert!(clu.failovers >= 1, "no leader kill fired: {clu:?}");
        assert_eq!(clu.fenced_appends, 0, "healthy run must not fence");
        assert!(clu.replica_bytes > 0, "no bytes reached the followers");
        assert!(clu.commit_lag_frames > 0.0, "no append ever committed");
        assert_eq!(eng.failovers, 0);
        assert_eq!(eng.replica_bytes, 0);
    }

    #[test]
    fn ingest_fed_engine_coalesces_and_sheds() {
        let p = Params {
            firehose: Some(FirehosePattern::FlashCrowd),
            // Enough movers that the tight ING-4-SHED lanes overflow
            // every tick regardless of how the id hash splits them.
            object_agility: 0.5,
            ..tiny()
        };
        let rs = run_point(&p, Algo::ingest_set(), 5, 2);
        let by = |name: &str| rs.iter().find(|r| r.algo.name() == name).unwrap();
        let eng = by("ENG-4");
        let ing = by("ING-4");
        let shed = by("ING-4-SHED");
        assert_eq!(
            eng.coalesced_per_ts, 0.0,
            "batch-fed engines never coalesce"
        );
        assert_eq!(eng.shed_events, 0);
        assert!(
            ing.coalesced_per_ts > 0.0,
            "the flash crowd's redundant fixes must be folded at the drain"
        );
        assert_eq!(ing.shed_events, 0, "lossless lanes must not shed");
        assert!(
            shed.shed_events > 0,
            "tight ShedOldest lanes must drop submissions"
        );
        assert!(ing.work_per_ts > 0.0);
    }

    #[test]
    fn json_series_is_well_formed() {
        let pts = vec![("p\"1".to_string(), tiny())];
        let series = run_series(&pts, &[Algo::Gma, Algo::Sharded(1)], 2, 0, false);
        let json = series_to_json("engine", &series);
        assert!(json.contains("\"figure\": \"engine\""));
        assert!(json.contains("\"algo\": \"ENG-1\""));
        assert!(json.contains("p\\\"1"), "labels must be escaped");
        // Structural sanity: balanced braces/brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
