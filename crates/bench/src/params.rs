//! The Table 2 parameter space.
//!
//! | Parameter | Default | Range |
//! |---|---|---|
//! | Number of objects (N) | 100K | 10, 50, 100, 150, 200 (K) |
//! | Number of queries (Q) | 5K | 1, 3, 5, 7, 10 (K) |
//! | Object distribution | Uniform | Gaussian, Uniform |
//! | Query distribution | Gaussian | Gaussian, Uniform |
//! | Number of NNs (k) | 50 | 1, 25, 50, 100, 200 |
//! | Edge agility (f_edg) | 4% | 1, 2, 4, 8, 16 (%) |
//! | Object speed (v_obj) | 1 edge/ts | 0.25, 0.5, 1, 2, 4 |
//! | Object agility (f_obj) | 10% | 0, 5, 10, 15, 20 (%) |
//! | Query speed (v_qry) | 1 edge/ts | 0.25, 0.5, 1, 2, 4 |
//! | Query agility (f_qry) | 10% | 0, 5, 10, 15, 20 (%) |
//!
//! Plus the network itself: sub-networks of 1K–100K edges (10K default).
//! [`Params::scaled`] shrinks N, Q and the edge count uniformly so the full
//! figure grid completes in CI time while preserving the densities that
//! drive every reported effect (objects per edge, queries per sequence).

use std::sync::Arc;

use rnn_roadnet::{generators, RoadNetwork};
use rnn_workload::{Distribution, FirehosePattern, HotspotConfig, MovementModel, ScenarioConfig};

/// One experiment configuration (Table 2 + the network).
#[derive(Clone, Debug)]
pub struct Params {
    /// Approximate network size in edges.
    pub edges: usize,
    /// Object cardinality N.
    pub n_objects: usize,
    /// Query cardinality Q.
    pub n_queries: usize,
    /// NNs per query.
    pub k: usize,
    /// Object placement.
    pub object_distribution: Distribution,
    /// Query placement.
    pub query_distribution: Distribution,
    /// Edge agility (fraction per timestamp).
    pub edge_agility: f64,
    /// Object agility.
    pub object_agility: f64,
    /// Query agility.
    pub query_agility: f64,
    /// Object speed (× average edge length).
    pub object_speed: f64,
    /// Query speed.
    pub query_speed: f64,
    /// Movement model.
    pub movement: MovementModel,
    /// Use the Oldenburg-like map (Fig. 19) instead of the SF-like one.
    pub oldenburg: bool,
    /// Layer a drifting load hotspot over the movement stream (the
    /// rebalance figure's skewed workload; not in the paper).
    pub hotspot: bool,
    /// Oversample the update stream through a
    /// [`rnn_workload::Firehose`] with this feed shape (the ingest
    /// figure's workload; not in the paper). Ingest-driven algorithms
    /// consume the raw oversampled stream; everything else consumes the
    /// effective one-event-per-entity batch.
    pub firehose: Option<FirehosePattern>,
    /// RNG seed (drives both map generation and the update stream).
    pub seed: u64,
}

impl Default for Params {
    /// The paper's defaults (Table 2).
    fn default() -> Self {
        Self {
            edges: 10_000,
            n_objects: 100_000,
            n_queries: 5_000,
            k: 50,
            object_distribution: Distribution::Uniform,
            query_distribution: Distribution::gaussian_queries(),
            edge_agility: 0.04,
            object_agility: 0.10,
            query_agility: 0.10,
            object_speed: 1.0,
            query_speed: 1.0,
            movement: MovementModel::RandomWalk,
            oldenburg: false,
            hotspot: false,
            firehose: None,
            seed: 42,
        }
    }
}

impl Params {
    /// Uniformly scales the cardinalities (N, Q, edges) by `scale`,
    /// preserving densities. `scale = 1.0` is the paper's setup.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(8);
        self.edges = s(self.edges);
        self.n_objects = s(self.n_objects);
        self.n_queries = s(self.n_queries).max(1);
        self
    }

    /// Builds the network for these parameters.
    pub fn build_network(&self) -> Arc<RoadNetwork> {
        if self.oldenburg {
            // Fig. 19 uses the fixed Oldenburg map; honour `edges` anyway so
            // scaled runs stay cheap.
            if self.edges >= 7_035 {
                Arc::new(generators::oldenburg_like(self.seed))
            } else {
                Arc::new(generators::san_francisco_like(self.edges, self.seed))
            }
        } else {
            Arc::new(generators::san_francisco_like(self.edges, self.seed))
        }
    }

    /// The scenario configuration for these parameters.
    pub fn scenario_config(&self) -> ScenarioConfig {
        ScenarioConfig {
            num_objects: self.n_objects,
            num_queries: self.n_queries,
            k: self.k,
            object_distribution: self.object_distribution,
            query_distribution: self.query_distribution,
            edge_agility: self.edge_agility,
            object_agility: self.object_agility,
            query_agility: self.query_agility,
            object_speed: self.object_speed,
            query_speed: self.query_speed,
            movement: self.movement,
            hotspot: self.hotspot.then(HotspotConfig::default),
            seed: self.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1),
        }
    }

    /// Renders Table 2 (defaults and ranges) as plain text.
    pub fn table2() -> String {
        let rows = [
            ("Number of objects (N)", "100K", "10, 50, 100, 150, 200 (K)"),
            ("Number of queries (Q)", "5K", "1, 3, 5, 7, 10 (K)"),
            ("Object distribution", "Uniform", "Gaussian, Uniform"),
            ("Query distribution", "Gaussian", "Gaussian, Uniform"),
            ("Number of NNs (k)", "50", "1, 25, 50, 100, 200"),
            ("Edge agility (f_edg)", "4%", "1, 2, 4, 8, 16 (%)"),
            ("Object speed (v_obj)", "1 edge/ts", "0.25, 0.5, 1, 2, 4"),
            ("Object agility (f_obj)", "10%", "0, 5, 10, 15, 20 (%)"),
            ("Query speed (v_qry)", "1 edge/ts", "0.25, 0.5, 1, 2, 4"),
            ("Query agility (f_qry)", "10%", "0, 5, 10, 15, 20 (%)"),
        ];
        let mut out = String::from("Table 2: System parameters\n");
        out.push_str(&format!(
            "{:<26} {:<11} {}\n",
            "Parameter", "Default", "Range"
        ));
        for (p, d, r) in rows {
            out.push_str(&format!("{p:<26} {d:<11} {r}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = Params::default();
        assert_eq!(p.edges, 10_000);
        assert_eq!(p.n_objects, 100_000);
        assert_eq!(p.n_queries, 5_000);
        assert_eq!(p.k, 50);
        assert_eq!(p.edge_agility, 0.04);
        assert_eq!(p.object_agility, 0.10);
    }

    #[test]
    fn scaling_preserves_density() {
        let p = Params::default().scaled(0.1);
        assert_eq!(p.edges, 1_000);
        assert_eq!(p.n_objects, 10_000);
        assert_eq!(p.n_queries, 500);
        // Densities: 10 objects and 0.5 queries per edge.
        assert!((p.n_objects as f64 / p.edges as f64 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn network_size_tracks_edges() {
        let p = Params {
            edges: 500,
            ..Params::default()
        };
        let net = p.build_network();
        let ratio = net.num_edges() as f64 / 500.0;
        assert!((0.8..1.2).contains(&ratio), "got {} edges", net.num_edges());
    }

    #[test]
    fn table2_renders() {
        let t = Params::table2();
        assert!(t.contains("Edge agility"));
        assert!(t.contains("100K"));
    }
}
