//! **IMA** — the incremental monitoring algorithm (§4).
//!
//! Each user query is an anchor of an [`AnchorSet`]: it carries an
//! expansion tree and registers influencing intervals on the edges it can
//! see. A timestamp is processed by the complete IMA schedule of Figure 10
//! (implemented in [`AnchorSet::tick`]): updates that fall outside every
//! influence region are discarded unprocessed, and affected queries are
//! refreshed by re-expanding from the surviving part of their trees.

use std::sync::Arc;
use std::time::Instant;

use rnn_roadnet::{FxHashMap, QueryId, RoadNetwork};

use crate::anchor::{AnchorKey, AnchorSet};
use crate::counters::{MemoryUsage, OpCounters, TickReport};
use crate::monitor::ContinuousMonitor;
use crate::state::NetworkState;
use crate::tree::TreePool;
use crate::types::{Neighbor, ObjectEvent, QueryEvent, RootPos, UpdateBatch, UpdateEvent};

/// The incremental monitoring algorithm.
pub struct Ima {
    state: NetworkState,
    anchors: AnchorSet,
    by_query: FxHashMap<QueryId, AnchorKey>,
    /// Reverse of `by_query`, so anchor-keyed lookups (influence-list
    /// covering hits) map back to queries in O(hits) instead of a linear
    /// scan over the query table.
    by_anchor: FxHashMap<AnchorKey, QueryId>,
}

impl Ima {
    /// Creates an IMA server over `net` with base weights and no objects.
    pub fn new(net: Arc<RoadNetwork>) -> Self {
        let state = NetworkState::new(&net);
        Self {
            state,
            anchors: AnchorSet::new(net),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            by_query: FxHashMap::default(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            by_anchor: FxHashMap::default(),
        }
    }

    /// Like [`Self::new`], with the expansion-tree pool pre-provisioned
    /// for about `hint` concurrent trees (one per expected query) of
    /// [`crate::tree::TreePool::PREWARM_NODES_PER_TREE`] nodes each. A
    /// hint of 0 is exactly `new` (the pool then adapts during the first
    /// ticks via one-time counted allocations).
    pub fn with_tree_pool_hint(net: Arc<RoadNetwork>, hint: usize) -> Self {
        let mut m = Self::new(net);
        m.anchors
            .prewarm_trees(hint, TreePool::PREWARM_NODES_PER_TREE);
        m
    }

    /// Disables influence lists (ablation): every update is delivered to
    /// every query. Results are unchanged; only the work differs.
    pub fn set_use_influence_lists(&mut self, on: bool) {
        self.anchors.use_influence_lists = on;
    }

    /// The dynamic network state (for inspection in tests/examples).
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Validates all internal invariants (expansion trees, result
    /// distances) against independent shortest-path computations.
    /// Intended for tests; cost is one bounded Dijkstra per query.
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    pub fn validate_invariants(&mut self) {
        self.anchors.validate(&self.state);
    }

    /// The queries whose influencing intervals cover `(edge, frac)`
    /// (tests/debugging). O(hits): each covering anchor resolves to its
    /// query through the maintained reverse map — no scan of the query
    /// table.
    pub fn covering_queries(&self, edge: rnn_roadnet::EdgeId, frac: f64) -> Vec<QueryId> {
        self.anchors
            .covering(edge, frac)
            .into_iter()
            .filter_map(|k| self.by_anchor.get(&k).copied())
            // lint: allow(hot-path-alloc): covering_queries materializes only for root-move handling (slow path); charged to alloc_events under the runtime gate
            .collect()
    }

    /// Direct access to a query's anchor record (tests/debugging).
    pub fn anchor_of(&self, id: QueryId) -> Option<&crate::anchor::AnchorRec> {
        self.anchors.get(*self.by_query.get(&id)?)
    }
}

impl ContinuousMonitor for Ima {
    fn name(&self) -> &'static str {
        "IMA"
    }

    fn apply(&mut self, event: UpdateEvent) -> TickReport {
        match event {
            UpdateEvent::Object(ObjectEvent::Insert { id, at }) => {
                self.state.objects.insert(id, at);
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Install { id, k, at }) => {
                assert!(
                    !self.by_query.contains_key(&id),
                    "query {id:?} already installed"
                );
                self.state.queries.insert(id, (k, at));
                let mut c = OpCounters::default();
                let key = self.anchors.add(&self.state, RootPos::Point(at), k, &mut c);
                self.by_query.insert(id, key);
                self.by_anchor.insert(key, id);
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Remove { id }) => {
                if let Some(key) = self.by_query.remove(&id) {
                    self.anchors.remove(key);
                    self.by_anchor.remove(&key);
                    self.state.queries.remove(&id);
                }
                TickReport::default()
            }
            other => {
                let mut batch = UpdateBatch::default();
                batch.push(other);
                self.tick(&batch)
            }
        }
    }

    fn tick(&mut self, batch: &UpdateBatch) -> TickReport {
        let start = Instant::now();
        let mut counters = OpCounters::default();
        self.anchors.clear_cell_charges();
        let deltas = self.state.apply_batch(batch);

        // Terminated queries leave before any other processing (§4.5: "we
        // perform these tasks before processing any update, to avoid
        // redundant computations for terminated queries").
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut root_moves = Vec::new();
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut installs = Vec::new();
        for d in &deltas.queries {
            match (d.old, d.new) {
                (Some(_), None) => {
                    if let Some(key) = self.by_query.remove(&d.id) {
                        self.anchors.remove(key);
                        self.by_anchor.remove(&key);
                    }
                }
                (Some((k_old, _)), Some((k_new, at))) => {
                    let key = self.by_query[&d.id];
                    if k_old != k_new {
                        self.anchors.set_k(&self.state, key, k_new, &mut counters);
                    }
                    root_moves.push((key, RootPos::Point(at)));
                }
                (None, Some((k, at))) => installs.push((d.id, k, at)),
                (None, None) => {}
            }
        }

        let out = self
            .anchors
            .tick(&self.state, &deltas.objects, &deltas.edges, &root_moves);
        counters.merge(&out.counters);
        let mut results_changed = out.changed.len();

        // Newly installed queries compute their initial result after all
        // updates took place (§4.5: "after line 19 in Figure 10").
        for (id, k, at) in installs {
            let key = self
                .anchors
                .add(&self.state, RootPos::Point(at), k, &mut counters);
            self.by_query.insert(id, key);
            self.by_anchor.insert(key, id);
            results_changed += 1;
        }

        // Allocation/step accounting for the whole tick: the anchor set's
        // engine + influence arena (install work included) and the object
        // index's span arena.
        self.anchors.harvest_scratch_counters(&mut counters);
        counters.alloc_events += self.state.objects.take_alloc_events();

        TickReport {
            elapsed: start.elapsed(),
            results_changed,
            counters,
        }
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        let key = self.by_query.get(&id)?;
        Some(&self.anchors.get(*key)?.result)
    }

    fn knn_dist(&self, id: QueryId) -> Option<f64> {
        let key = self.by_query.get(&id)?;
        Some(self.anchors.get(*key)?.knn_dist)
    }

    fn query_ids(&self) -> Vec<QueryId> {
        // lint: allow(hot-path-alloc): introspection helper for tests and benches, not called from the tick path
        self.by_query.keys().copied().collect()
    }

    fn memory(&self) -> MemoryUsage {
        let (query_table, expansion_trees, influence_lists) = self.anchors.memory_breakdown();
        MemoryUsage {
            edge_table: self.state.memory_bytes(),
            query_table: query_table
                + (self.by_query.capacity() + self.by_anchor.capacity())
                    * (std::mem::size_of::<QueryId>() + std::mem::size_of::<AnchorKey>()),
            expansion_trees,
            influence_lists,
            auxiliary: self.anchors.scratch_bytes(),
        }
    }

    fn drain_cell_charges(&mut self, into: &mut Vec<(rnn_roadnet::EdgeId, u64)>) {
        self.anchors.drain_cell_charges(into);
    }

    fn snapshot_state(&self) -> Option<crate::snapshot::MonitorState> {
        let net = self.anchors.network().clone();
        Some(crate::snapshot::MonitorState::capture(
            &net,
            &self.state,
            |q| {
                let key = self.by_query.get(&q).and_then(|k| self.anchors.get(*k));
                match key {
                    Some(rec) => (rec.knn_dist, rec.result.clone()),
                    // lint: allow(hot-path-alloc): snapshot capture is maintenance-path, not a steady-state tick
                    None => (f64::INFINITY, Vec::new()),
                }
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{EdgeWeightUpdate, ObjectEvent, QueryEvent};
    use rnn_roadnet::{generators, EdgeId, NetPoint, ObjectId};

    fn setup() -> Ima {
        let net = Arc::new(generators::line_network(6, 1.0));
        let mut ima = Ima::new(net.clone());
        for e in net.edge_ids() {
            ima.apply(UpdateEvent::insert_object(
                ObjectId(e.0),
                NetPoint::new(e, 0.5),
            ));
        }
        ima
    }

    #[test]
    fn lifecycle() {
        let mut ima = setup();
        ima.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        assert_eq!(ima.result(QueryId(1)).unwrap().len(), 2);
        assert_eq!(ima.query_ids(), vec![QueryId(1)]);
        ima.apply(UpdateEvent::remove_query(QueryId(1)));
        assert!(ima.result(QueryId(1)).is_none());
        assert!(ima.query_ids().is_empty());
    }

    #[test]
    fn empty_tick_is_cheap_and_stable() {
        let mut ima = setup();
        ima.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        let before = ima.result(QueryId(1)).unwrap().to_vec();
        let rep = ima.tick(&UpdateBatch::default());
        assert_eq!(rep.results_changed, 0);
        assert_eq!(
            rep.counters.reevaluations, 0,
            "nothing should be recomputed"
        );
        assert_eq!(ima.result(QueryId(1)).unwrap(), before.as_slice());
    }

    #[test]
    fn query_install_and_move_via_batch() {
        let mut ima = setup();
        ima.tick(&UpdateBatch {
            queries: vec![QueryEvent::Install {
                id: QueryId(3),
                k: 1,
                at: NetPoint::new(EdgeId(0), 0.5),
            }],
            ..Default::default()
        });
        assert_eq!(ima.result(QueryId(3)).unwrap()[0].object, ObjectId(0));
        ima.tick(&UpdateBatch {
            queries: vec![QueryEvent::Move {
                id: QueryId(3),
                to: NetPoint::new(EdgeId(4), 0.5),
            }],
            ..Default::default()
        });
        assert_eq!(ima.result(QueryId(3)).unwrap()[0].object, ObjectId(4));
        ima.tick(&UpdateBatch {
            queries: vec![QueryEvent::Remove { id: QueryId(3) }],
            ..Default::default()
        });
        assert!(ima.result(QueryId(3)).is_none());
    }

    #[test]
    fn mixed_updates_in_one_tick() {
        let mut ima = setup();
        ima.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(1), 0.5),
        ));
        // Simultaneously: weight change near the query, an object leaves,
        // another arrives.
        let rep = ima.tick(&UpdateBatch {
            objects: vec![
                ObjectEvent::Delete { id: ObjectId(1) },
                ObjectEvent::Move {
                    id: ObjectId(4),
                    to: NetPoint::new(EdgeId(1), 0.75),
                },
            ],
            edges: vec![EdgeWeightUpdate {
                edge: EdgeId(0),
                new_weight: 1.5,
            }],
            ..Default::default()
        });
        assert_eq!(rep.results_changed, 1);
        let r = ima.result(QueryId(1)).unwrap();
        // From x=1.5: o4 now at 0.25, o0 at 0.5 + ... edge0 weight 1.5 ->
        // o0 at frac 0.5 of edge0: dist = 0.5 (to node1) + 0.75 = 1.25;
        // o2 at 1.0.
        assert_eq!(r[0].object, ObjectId(4));
        assert!((r[0].dist - 0.25).abs() < 1e-12);
        assert_eq!(r[1].object, ObjectId(2));
        assert!((r[1].dist - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covering_queries_resolves_through_reverse_map() {
        let mut ima = setup();
        ima.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        ima.apply(UpdateEvent::install_query(
            QueryId(2),
            1,
            NetPoint::new(EdgeId(4), 0.5),
        ));
        // Each query's own position is covered by exactly that query.
        assert_eq!(ima.covering_queries(EdgeId(0), 0.5), vec![QueryId(1)]);
        assert_eq!(ima.covering_queries(EdgeId(4), 0.5), vec![QueryId(2)]);
        // Removal (including via a batch) keeps the reverse map in sync.
        ima.apply(UpdateEvent::remove_query(QueryId(1)));
        assert!(ima.covering_queries(EdgeId(0), 0.5).is_empty());
        ima.tick(&UpdateBatch {
            queries: vec![QueryEvent::Remove { id: QueryId(2) }],
            ..Default::default()
        });
        assert!(ima.covering_queries(EdgeId(4), 0.5).is_empty());
    }

    #[test]
    fn cell_charges_name_the_root_cell() {
        let mut ima = setup();
        ima.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        let mut charges = Vec::new();
        ima.drain_cell_charges(&mut charges);
        assert!(
            charges.iter().any(|&(e, s)| e == EdgeId(2) && s > 0),
            "install expansion must be charged to the query's cell, got {charges:?}"
        );
        // A tick that recomputes the query charges its (new) root cell.
        ima.tick(&UpdateBatch {
            queries: vec![QueryEvent::Move {
                id: QueryId(1),
                to: NetPoint::new(EdgeId(4), 0.25),
            }],
            ..Default::default()
        });
        charges.clear();
        ima.drain_cell_charges(&mut charges);
        assert!(
            charges.iter().any(|&(e, s)| e == EdgeId(4) && s > 0),
            "tick expansion must be charged to the moved root's cell, got {charges:?}"
        );
        charges.clear();
        ima.drain_cell_charges(&mut charges);
        assert!(charges.is_empty(), "drain must empty the buffer");
    }

    #[test]
    fn memory_reports_trees_and_influence() {
        let mut ima = setup();
        ima.apply(UpdateEvent::install_query(
            QueryId(1),
            3,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        let m = ima.memory();
        assert!(m.expansion_trees > 0, "IMA stores expansion trees");
        assert!(m.influence_lists > 0, "IMA stores influence lists");
    }

    #[test]
    fn k_change_via_reinstall() {
        let mut ima = setup();
        ima.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        // Install event for an existing query with different k acts as a
        // k-change.
        ima.tick(&UpdateBatch {
            queries: vec![QueryEvent::Install {
                id: QueryId(1),
                k: 4,
                at: NetPoint::new(EdgeId(2), 0.5),
            }],
            ..Default::default()
        });
        assert_eq!(ima.result(QueryId(1)).unwrap().len(), 4);
    }
}
