//! **GMA** — the group monitoring algorithm (§5).
//!
//! GMA decomposes the network into *sequences* (maximal paths between
//! degree≠2 nodes, [`rnn_roadnet::SequenceTable`]) and exploits Lemma 1:
//!
//! > "The k-NN set of any query q falling in a sequence s is contained in
//! > the union of (i) the objects in s, (ii) the k-NN sets of the
//! > intersection nodes (endpoints) of s."
//!
//! The endpoints of sequences that currently contain queries are **active
//! nodes**; their `n.k`-NN sets (`n.k = max q.k over the adjacent queries`)
//! are maintained with the IMA machinery ([`crate::anchor::AnchorSet`],
//! node-rooted and static). A user query is answered by a cheap
//! within-sequence walk that merges (a) the objects it passes and (b) the
//! monitored NN sets of the endpoints it reaches.
//!
//! Maintenance (Figure 12) re-evaluates a query from scratch only when one
//! of the four invalidating events touches it: (i) its own movement,
//! (ii) a change in a reachable endpoint's NN set, (iii) an object update
//! inside its influencing intervals, (iv) a weight change of an influencing
//! edge. Events are detected with per-sequence influence lists plus the
//! cached along-sequence endpoint distances.
//!
//! Special cases handled exactly as the paper prescribes: terminal
//! (degree-1) endpoints are never activated (nothing lies beyond them), and
//! isolated all-degree-2 cycles need no active nodes at all (the
//! bidirectional walk covers the entire component).

use std::sync::Arc;
use std::time::Instant;

use rnn_roadnet::{
    EdgeId, FxHashMap, FxHashSet, NetPoint, NodeId, QueryId, RoadNetwork, SeqId, Sequence,
    SequenceTable,
};

use crate::anchor::{AnchorKey, AnchorSet};
use crate::counters::{MemoryUsage, OpCounters, TickReport};
use crate::influence::{InfluenceTable, IntervalSet};
use crate::monitor::ContinuousMonitor;
use crate::search::BestK;
use crate::state::NetworkState;
use crate::tree::TreePool;
use crate::types::{Neighbor, ObjectEvent, QueryEvent, RootPos, UpdateBatch, UpdateEvent};

struct GmaQuery {
    k: usize,
    pos: NetPoint,
    seq: SeqId,
    result: Vec<Neighbor>,
    knn_dist: f64,
    /// Along-sequence distances to `(start_node, end_node)` at last
    /// evaluation (used to filter endpoint-NN-change events).
    d_ends: (f64, f64),
    /// Edges of the sequence currently carrying this query's influence
    /// intervals.
    influenced: Vec<EdgeId>,
}

/// The group monitoring algorithm.
pub struct Gma {
    net: Arc<RoadNetwork>,
    seqs: SequenceTable,
    state: NetworkState,
    /// IMA module monitoring the active nodes (**NT**).
    nodes: AnchorSet,
    node_anchor: FxHashMap<NodeId, AnchorKey>,
    anchor_node: FxHashMap<AnchorKey, NodeId>,
    /// Multiset of k values demanded at each potential active node
    /// (`n.k = max`).
    node_ks: FxHashMap<NodeId, Vec<usize>>,
    /// Sequences incident to each intersection node (`n.S`).
    node_seqs: FxHashMap<NodeId, Vec<SeqId>>,
    queries: FxHashMap<QueryId, GmaQuery>,
    /// Queries per sequence (`n.Q` is derived: queries of the sequences in
    /// `n.S`).
    seq_queries: FxHashMap<SeqId, FxHashSet<QueryId>>,
    /// Query influence lists, restricted to within-sequence edges.
    qil: InfluenceTable<QueryId>,
    /// Candidate scratch for within-sequence evaluations (flat
    /// epoch-stamped dedup table; taken/restored around each evaluation so
    /// steady-state query walks never allocate).
    best: BestK,
    /// Per-tick scratch: how many re-evaluated queries were served from
    /// each active node's monitored expansion this tick. Every use beyond
    /// the first is one network expansion that did not run — GMA's
    /// expansion sharing (Lemma 1), surfaced through
    /// [`OpCounters::shared_expansions`].
    tick_served: FxHashMap<NodeId, u32>,
}

impl Gma {
    /// Creates a GMA server over `net` with base weights and no objects.
    pub fn new(net: Arc<RoadNetwork>) -> Self {
        let seqs = SequenceTable::build(&net);
        // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
        let mut node_seqs: FxHashMap<NodeId, Vec<SeqId>> = FxHashMap::default();
        for s in seqs.iter() {
            for n in [s.start_node(), s.end_node()] {
                // Terminal nodes are never activated (§5: "in sequence
                // {n5n4}, terminal node n4 is inactive"), and neither are
                // the breakpoints of *isolated* cycles (degree 2 — there is
                // nothing beyond them). A cycle sequence attached to the
                // graph through an intersection ("lollipop") keeps that
                // intersection as its single exit point.
                if net.degree(n) < 3 {
                    continue;
                }
                let list = node_seqs.entry(n).or_default();
                if !list.contains(&s.id) {
                    list.push(s.id);
                }
            }
        }
        let state = NetworkState::new(&net);
        let nodes = AnchorSet::new(net.clone());
        Self {
            net,
            seqs,
            state,
            nodes,
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            node_anchor: FxHashMap::default(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            anchor_node: FxHashMap::default(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            node_ks: FxHashMap::default(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            node_seqs: FxHashMap::default(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            queries: FxHashMap::default(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            seq_queries: FxHashMap::default(),
            qil: InfluenceTable::new(0),
            best: BestK::default(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            tick_served: FxHashMap::default(),
        }
        .finish_init(node_seqs)
    }

    fn finish_init(mut self, node_seqs: FxHashMap<NodeId, Vec<SeqId>>) -> Self {
        self.node_seqs = node_seqs;
        self.qil = InfluenceTable::new(self.net.num_edges());
        self
    }

    /// Like [`Self::new`], with the active-node expansion-tree pool
    /// pre-provisioned for about `hint` concurrent trees (GMA keeps one
    /// tree per active intersection node, which is bounded by the query
    /// count) of [`TreePool::PREWARM_NODES_PER_TREE`] nodes each. A hint
    /// of 0 is exactly `new`.
    pub fn with_tree_pool_hint(net: Arc<RoadNetwork>, hint: usize) -> Self {
        let mut m = Self::new(net);
        m.nodes
            .prewarm_trees(hint, TreePool::PREWARM_NODES_PER_TREE);
        m
    }

    /// The sequence table (exposed for tests and examples).
    pub fn sequences(&self) -> &SequenceTable {
        &self.seqs
    }

    /// Number of currently active nodes (reported in the paper's
    /// experiments, e.g. "GMA monitors only 844 active nodes on average").
    pub fn active_node_count(&self) -> usize {
        self.node_anchor.len()
    }

    /// Nodes whose k demand must be (de)registered for a query in sequence
    /// `seq` — its endpoints with degree ≥ 3 (terminals have nothing beyond
    /// them; an isolated cycle's degree-2 breakpoint likewise).
    fn endpoints_for(&self, seq: SeqId) -> Vec<NodeId> {
        let s = self.seqs.sequence(seq);
        let mut v = Vec::with_capacity(2);
        for n in [s.start_node(), s.end_node()] {
            if self.net.degree(n) >= 3 && !v.contains(&n) {
                v.push(n);
            }
        }
        v
    }

    fn register_query_demand(&mut self, seq: SeqId, qid: QueryId, k: usize) -> Vec<NodeId> {
        self.seq_queries.entry(seq).or_default().insert(qid);
        let eps = self.endpoints_for(seq);
        for &n in &eps {
            self.node_ks.entry(n).or_default().push(k);
        }
        eps
    }

    fn unregister_query_demand(&mut self, seq: SeqId, qid: QueryId, k: usize) -> Vec<NodeId> {
        if let Some(set) = self.seq_queries.get_mut(&seq) {
            set.remove(&qid);
            if set.is_empty() {
                self.seq_queries.remove(&seq);
            }
        }
        let eps = self.endpoints_for(seq);
        for &n in &eps {
            if let Some(ks) = self.node_ks.get_mut(&n) {
                if let Some(i) = ks.iter().position(|&x| x == k) {
                    ks.swap_remove(i);
                }
                if ks.is_empty() {
                    self.node_ks.remove(&n);
                }
            }
        }
        eps
    }

    /// The k demanded at node `n` (`n.k = max` over the adjacent queries'
    /// demands), or `None` when no query demands it — the node must then
    /// be inactive. The single source of truth for both [`Self::sync_node`]
    /// and the tick's deactivate-before-activate pass split.
    fn desired_k(&self, n: NodeId) -> Option<usize> {
        self.node_ks.get(&n).and_then(|v| v.iter().max()).copied()
    }

    /// Reconciles a node's anchor with the current k demand: activates,
    /// deactivates, or resizes its monitored NN set.
    fn sync_node(&mut self, n: NodeId, counters: &mut OpCounters) {
        let desired = self.desired_k(n);
        match (self.node_anchor.get(&n).copied(), desired) {
            (None, Some(k)) => {
                let key = self.nodes.add(&self.state, RootPos::Node(n), k, counters);
                self.node_anchor.insert(n, key);
                self.anchor_node.insert(key, n);
            }
            (Some(key), None) => {
                self.nodes.remove(key);
                self.node_anchor.remove(&n);
                self.anchor_node.remove(&key);
            }
            (Some(key), Some(k)) => {
                if self.nodes.get(key).map(|r| r.k) != Some(k) {
                    self.nodes.set_k(&self.state, key, k, counters);
                }
            }
            (None, None) => {}
        }
    }

    /// Within-sequence evaluation (§5): walk both directions from the query
    /// merging in-sequence objects and the endpoint NN sets, then rebuild
    /// the query's influence intervals.
    fn eval_query(&mut self, qid: QueryId, counters: &mut OpCounters) -> bool {
        counters.reevaluations += 1;
        let q = self.queries.get(&qid).expect("query registered");
        let (k, pos, seq) = (q.k, q.pos, q.seq);
        let s = self.seqs.sequence(seq);
        let i0 = s.edge_offset(pos.edge).expect("query edge in its sequence");
        let w0 = self.state.weights.get(pos.edge);

        let mut best = std::mem::take(&mut self.best);
        best.reset(k);
        counters.edges_scanned += 1;
        for &(o, f) in self.state.objects.on_edge(pos.edge) {
            counters.objects_considered += 1;
            best.offer(o, (f - pos.frac).abs() * w0);
        }

        // Distances from q to the sequence endpoints along the sequence.
        let (d_start, d_end) = s.dist_to_endpoints(&self.state.weights, pos);

        // Walk toward the start (scanning edges i0-1 .. 0) and toward the
        // end (edges i0+1 ..), advancing each until the frontier passes the
        // current k-th candidate.
        self.walk_direction(s, i0, pos, true, &mut best, counters);
        self.walk_direction(s, i0, pos, false, &mut best, counters);

        // Merge reachable endpoint NN sets. Terminals and isolated-cycle
        // breakpoints (degree < 3) have nothing beyond them; a lollipop
        // cycle merges its single intersection once, at the shorter of the
        // two ways around.
        let merge_points: Vec<(NodeId, f64)> = if s.is_cycle() {
            // lint: allow(hot-path-alloc): two-entry evaluation scratch built only when a query is (re)evaluated; charged to alloc_events under the runtime gate
            vec![(s.start_node(), d_start.min(d_end))]
        } else {
            // lint: allow(hot-path-alloc): two-entry evaluation scratch built only when a query is (re)evaluated; charged to alloc_events under the runtime gate
            vec![(s.start_node(), d_start), (s.end_node(), d_end)]
        };
        let mut served_nodes: [Option<NodeId>; 2] = [None, None];
        for (i, (n, base)) in merge_points.into_iter().enumerate() {
            if self.net.degree(n) < 3 || base >= best.kth() {
                continue;
            }
            let key = self
                .node_anchor
                .get(&n)
                .expect("endpoint of a query sequence is active");
            let rec = self.nodes.get(*key).expect("anchor exists");
            debug_assert!(rec.k >= k, "active node monitors too few NNs");
            served_nodes[i] = Some(n);
            for nb in &rec.result {
                counters.objects_considered += 1;
                best.offer(nb.object, base + nb.dist);
            }
        }
        for n in served_nodes.into_iter().flatten() {
            *self.tick_served.entry(n).or_default() += 1;
        }

        let result = best.clone_result();
        self.best = best;
        let knn_dist = if result.len() == k {
            result[k - 1].dist
        } else {
            f64::INFINITY
        };

        let q = self.queries.get_mut(&qid).expect("query registered");
        let changed = q.result != result;
        q.result = result;
        q.knn_dist = knn_dist;
        q.d_ends = (d_start, d_end);
        self.rebuild_query_influence(qid);
        changed
    }

    /// The edges one directional walk visits, in order, with the boundary
    /// node each is approached from. For cycle sequences the walk wraps all
    /// the way around (including a final re-scan of the query's own edge
    /// from the far side, so wrap-around paths are measured).
    fn walk_steps(
        s: &Sequence,
        i0: usize,
        toward_start: bool,
    ) -> impl Iterator<Item = (usize, usize)> + '_ {
        let m = s.edges.len();
        let count = if s.is_cycle() {
            m
        } else if toward_start {
            i0
        } else {
            m - 1 - i0
        };
        (0..count).map(move |step| {
            let edge_idx = if toward_start {
                (i0 + m - 1 - step) % m
            } else {
                (i0 + 1 + step) % m
            };
            let boundary = if toward_start { edge_idx + 1 } else { edge_idx };
            (edge_idx, boundary)
        })
    }

    /// Distance from the query to the first boundary node of a directional
    /// walk.
    fn walk_start_dist(&self, s: &Sequence, i0: usize, pos: NetPoint, toward_start: bool) -> f64 {
        let w0 = self.state.weights.get(pos.edge);
        if s.forward[i0] == toward_start {
            pos.frac * w0
        } else {
            (1.0 - pos.frac) * w0
        }
    }

    /// Scans the objects of one direction of the sequence walk.
    fn walk_direction(
        &self,
        s: &Sequence,
        i0: usize,
        pos: NetPoint,
        toward_start: bool,
        best: &mut BestK,
        counters: &mut OpCounters,
    ) {
        let mut acc = self.walk_start_dist(s, i0, pos, toward_start);
        for (edge_idx, boundary) in Self::walk_steps(s, i0, toward_start) {
            if acc >= best.kth() {
                break;
            }
            let e = s.edges[edge_idx];
            let w = self.state.weights.get(e);
            let b = s.nodes[boundary];
            let from_start = self.net.edge(e).start == b;
            counters.edges_scanned += 1;
            for &(o, f) in self.state.objects.on_edge(e) {
                counters.objects_considered += 1;
                let along = if from_start { f * w } else { (1.0 - f) * w };
                best.offer(o, acc + along);
            }
            acc += w;
        }
    }

    /// Rebuilds the within-sequence influence intervals of a query from its
    /// current `knn_dist`.
    fn rebuild_query_influence(&mut self, qid: QueryId) {
        let (pos, seq, knn, old_influenced) = {
            let q = self.queries.get_mut(&qid).expect("query registered");
            (q.pos, q.seq, q.knn_dist, std::mem::take(&mut q.influenced))
        };
        for e in old_influenced {
            self.qil.remove(e, qid);
        }
        let s = self.seqs.sequence(seq);
        let i0 = s.edge_offset(pos.edge).expect("query edge in sequence");
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut per_edge: Vec<(EdgeId, IntervalSet)> = Vec::new();

        // Widen by the standard slack so boundary entities (the k-th NN
        // itself) never escape detection through float rounding.
        let slack = crate::anchor::interval_slack(knn);
        let knn = knn + slack;

        // Own edge.
        let w0 = self.state.weights.get(pos.edge);
        let r0 = knn / w0;
        per_edge.push((pos.edge, IntervalSet::single(pos.frac - r0, pos.frac + r0)));

        // Both directions (wrapping around for cycle sequences).
        for toward_start in [true, false] {
            let mut acc = self.walk_start_dist(s, i0, pos, toward_start);
            for (edge_idx, boundary) in Self::walk_steps(s, i0, toward_start) {
                if acc >= knn {
                    break;
                }
                let e = s.edges[edge_idx];
                let w = self.state.weights.get(e);
                let b = s.nodes[boundary];
                let f = ((knn - acc) / w).min(1.0);
                let ivs = if self.net.edge(e).start == b {
                    IntervalSet::single(0.0, f)
                } else {
                    IntervalSet::single(1.0 - f, 1.0)
                };
                per_edge.push((e, ivs));
                acc += w;
            }
        }

        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut influenced = Vec::new();
        for (e, ivs) in per_edge {
            if ivs.is_empty() {
                continue;
            }
            // Merge with a possibly existing entry for the same edge (a
            // cycle walk can reach an edge from both directions).
            let merged = match self.qil.on_edge(e).iter().find(|(k, _)| *k == qid) {
                Some((_, prev)) => {
                    let mut m = *prev;
                    for &(lo, hi) in ivs.intervals() {
                        m.add(lo, hi);
                    }
                    m
                }
                None => ivs,
            };
            self.qil.insert(e, qid, merged);
            if !influenced.contains(&e) {
                influenced.push(e);
            }
        }
        self.queries
            .get_mut(&qid)
            .expect("query registered")
            .influenced = influenced;
    }
}

impl ContinuousMonitor for Gma {
    fn name(&self) -> &'static str {
        "GMA"
    }

    fn apply(&mut self, event: UpdateEvent) -> TickReport {
        match event {
            UpdateEvent::Object(ObjectEvent::Insert { id, at }) => {
                self.state.objects.insert(id, at);
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Install { id, k, at }) => {
                assert!(
                    !self.queries.contains_key(&id),
                    "query {id:?} already installed"
                );
                self.state.queries.insert(id, (k, at));
                let seq = self.seqs.seq_of_edge(at.edge);
                self.queries.insert(
                    id,
                    GmaQuery {
                        k,
                        pos: at,
                        seq,
                        // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
                        result: Vec::new(),
                        knn_dist: f64::INFINITY,
                        d_ends: (f64::INFINITY, f64::INFINITY),
                        // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
                        influenced: Vec::new(),
                    },
                );
                let mut c = OpCounters::default();
                let touched = self.register_query_demand(seq, id, k);
                for n in touched {
                    self.sync_node(n, &mut c);
                }
                self.eval_query(id, &mut c);
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Remove { id }) => {
                let Some(mut q) = self.queries.remove(&id) else {
                    return TickReport::default();
                };
                self.state.queries.remove(&id);
                for e in q.influenced.drain(..) {
                    self.qil.remove(e, id);
                }
                let mut c = OpCounters::default();
                let touched = self.unregister_query_demand(q.seq, id, q.k);
                for n in touched {
                    self.sync_node(n, &mut c);
                }
                TickReport::default()
            }
            other => {
                let mut batch = UpdateBatch::default();
                batch.push(other);
                self.tick(&batch)
            }
        }
    }

    fn tick(&mut self, batch: &UpdateBatch) -> TickReport {
        let start = Instant::now();
        let mut counters = OpCounters::default();
        self.tick_served.clear();
        self.nodes.clear_cell_charges();
        let deltas = self.state.apply_batch(batch);

        // ---- Figure 12, lines 1-4: query arrivals/departures/moves update
        // the sequence registry and the active-node demands.
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut needs_eval: FxHashSet<QueryId> = FxHashSet::default();
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut touched_nodes: FxHashSet<NodeId> = FxHashSet::default();
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut removed_queries: Vec<QueryId> = Vec::new();
        for d in &deltas.queries {
            match (d.old, d.new) {
                (Some(_), None) => {
                    if let Some(mut q) = self.queries.remove(&d.id) {
                        for e in q.influenced.drain(..) {
                            self.qil.remove(e, d.id);
                        }
                        touched_nodes.extend(self.unregister_query_demand(q.seq, d.id, q.k));
                        removed_queries.push(d.id);
                    }
                }
                (old, Some((k, at))) => {
                    let new_seq = self.seqs.seq_of_edge(at.edge);
                    match old {
                        Some(_) => {
                            // Move (possibly with a k change): deregister the
                            // old placement, register the new one.
                            let (old_seq, old_k) = {
                                let q = self.queries.get(&d.id).expect("known query");
                                (q.seq, q.k)
                            };
                            touched_nodes
                                .extend(self.unregister_query_demand(old_seq, d.id, old_k));
                            {
                                let q = self.queries.get_mut(&d.id).expect("known query");
                                for e in q.influenced.drain(..) {
                                    self.qil.remove(e, d.id);
                                }
                                q.k = k;
                                q.pos = at;
                                q.seq = new_seq;
                            }
                        }
                        None => {
                            self.queries.insert(
                                d.id,
                                GmaQuery {
                                    k,
                                    pos: at,
                                    seq: new_seq,
                                    // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
                                    result: Vec::new(),
                                    knn_dist: f64::INFINITY,
                                    d_ends: (f64::INFINITY, f64::INFINITY),
                                    // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
                                    influenced: Vec::new(),
                                },
                            );
                        }
                    }
                    touched_nodes.extend(self.register_query_demand(new_seq, d.id, k));
                    needs_eval.insert(d.id);
                }
                (None, None) => {}
            }
        }
        // lint: allow(hot-path-alloc): runs only on the update/resync slow path, never on the per-tick serve path; charged to alloc_events under the runtime zero-alloc gate
        let mut nodes_sorted: Vec<NodeId> = touched_nodes.into_iter().collect();
        nodes_sorted.sort();
        // Deactivations run before activations: a node whose demand just
        // vanished returns its expansion tree to the pool first, so a node
        // activating in the same tick re-expands into those recycled slots
        // instead of growing the pool — activation churn stays
        // allocation-free in steady state.
        for pass_active in [false, true] {
            for &n in &nodes_sorted {
                if self.desired_k(n).is_some() == pass_active {
                    self.sync_node(n, &mut counters);
                }
            }
        }

        // ---- Line 5: IMA maintenance of the active nodes.
        let out = self
            .nodes
            .tick(&self.state, &deltas.objects, &deltas.edges, &[]);
        counters.merge(&out.counters);

        // ---- Lines 6-15: determine the affected user queries.
        // (i) endpoint NN-set changes within reach.
        for key in &out.changed {
            let Some(&n) = self.anchor_node.get(key) else {
                continue;
            };
            let Some(seq_ids) = self.node_seqs.get(&n) else {
                continue;
            };
            for &sid in seq_ids {
                let Some(qs) = self.seq_queries.get(&sid) else {
                    continue;
                };
                let s = self.seqs.sequence(sid);
                for &qid in qs {
                    let q = &self.queries[&qid];
                    let d_n = if s.is_cycle() {
                        q.d_ends.0.min(q.d_ends.1)
                    } else if s.start_node() == n {
                        q.d_ends.0
                    } else {
                        q.d_ends.1
                    };
                    if d_n <= q.knn_dist + crate::anchor::interval_slack(q.knn_dist) {
                        needs_eval.insert(qid);
                    }
                }
            }
        }
        // (ii) object updates inside influencing intervals.
        for d in &deltas.objects {
            let mut any = false;
            for p in [d.old, d.new].into_iter().flatten() {
                for qid in self.qil.covering(p.edge, p.frac) {
                    needs_eval.insert(qid);
                    any = true;
                }
            }
            if !any {
                counters.updates_ignored += 1;
            }
        }
        // (iii) edge updates on influencing edges.
        for d in &deltas.edges {
            let entries = self.qil.on_edge(d.edge);
            if entries.is_empty() {
                counters.updates_ignored += 1;
            } else {
                needs_eval.extend(entries.iter().map(|&(q, _)| q));
            }
        }

        // ---- Lines 16-17: recompute the affected queries from scratch
        // (within their sequences, sharing the active-node NN sets).
        // lint: allow(hot-path-alloc): runs only on the update/resync slow path, never on the per-tick serve path; charged to alloc_events under the runtime zero-alloc gate
        let mut ids: Vec<QueryId> = needs_eval.into_iter().collect();
        ids.sort();
        let mut results_changed = removed_queries.len();
        for qid in ids {
            if self.queries.contains_key(&qid) && self.eval_query(qid, &mut counters) {
                results_changed += 1;
            }
        }

        // Expansion sharing: every query beyond the first served from the
        // same active-node expansion this tick reused it instead of
        // expanding on its own.
        counters.shared_expansions += self
            .tick_served
            .values()
            .map(|&c| u64::from(c.saturating_sub(1)))
            .sum::<u64>();
        // Allocation/step accounting: node-anchor engine + influence
        // arenas, the query influence arena, and the object index arena.
        self.nodes.harvest_scratch_counters(&mut counters);
        counters.alloc_events += self.qil.take_alloc_events()
            + self.state.objects.take_alloc_events()
            + self.best.take_alloc_events();

        TickReport {
            elapsed: start.elapsed(),
            results_changed,
            counters,
        }
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|q| q.result.as_slice())
    }

    fn knn_dist(&self, id: QueryId) -> Option<f64> {
        self.queries.get(&id).map(|q| q.knn_dist)
    }

    fn query_ids(&self) -> Vec<QueryId> {
        // lint: allow(hot-path-alloc): introspection helper for tests and benches, not called from the tick path
        self.queries.keys().copied().collect()
    }

    fn active_groups(&self) -> Option<usize> {
        Some(self.active_node_count())
    }

    fn drain_cell_charges(&mut self, into: &mut Vec<(EdgeId, u64)>) {
        self.nodes.drain_cell_charges(into);
    }

    fn memory(&self) -> MemoryUsage {
        let (node_table, trees, node_il) = self.nodes.memory_breakdown();
        let query_table: usize = self
            .queries
            .values()
            .map(|q| {
                std::mem::size_of::<GmaQuery>()
                    + q.result.capacity() * std::mem::size_of::<Neighbor>()
                    + q.influenced.capacity() * std::mem::size_of::<EdgeId>()
            })
            .sum();
        let bookkeeping = self.seqs.memory_bytes()
            + self
                .node_ks
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<usize>())
                .sum::<usize>()
            + self
                .seq_queries
                .values()
                .map(|s| s.capacity() * std::mem::size_of::<QueryId>())
                .sum::<usize>();
        MemoryUsage {
            edge_table: self.state.memory_bytes(),
            query_table: query_table + node_table,
            expansion_trees: trees,
            influence_lists: node_il + self.qil.memory_bytes(),
            auxiliary: bookkeeping + self.nodes.scratch_bytes(),
        }
    }

    fn snapshot_state(&self) -> Option<crate::snapshot::MonitorState> {
        Some(crate::snapshot::MonitorState::capture(
            &self.net,
            &self.state,
            |q| match self.queries.get(&q) {
                Some(rec) => (rec.knn_dist, rec.result.clone()),
                // lint: allow(hot-path-alloc): snapshot capture is maintenance-path, not a steady-state tick
                None => (f64::INFINITY, Vec::new()),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{EdgeWeightUpdate, ObjectEvent, QueryEvent};
    use rnn_roadnet::{generators, ObjectId};

    /// Line of 6 nodes: one sequence, endpoints degree 1 → no active nodes.
    fn line_setup() -> Gma {
        let net = Arc::new(generators::line_network(6, 1.0));
        let mut gma = Gma::new(net.clone());
        for e in net.edge_ids() {
            gma.apply(UpdateEvent::insert_object(
                ObjectId(e.0),
                NetPoint::new(e, 0.5),
            ));
        }
        gma
    }

    /// A cross: center node 0 of degree 4, rays subdivided so sequences
    /// have length 2.
    ///
    /// ```text
    ///            4
    ///            |
    ///            3
    ///            |
    /// 8--7--0--1--2   (plus a south ray 5-6)
    /// ```
    fn cross_setup() -> (Arc<RoadNetwork>, Gma) {
        let mut b = rnn_roadnet::RoadNetworkBuilder::new();
        let c = b.add_node(0.0, 0.0); // 0
        let e1 = b.add_node(1.0, 0.0); // 1
        let e2 = b.add_node(2.0, 0.0); // 2
        let n1 = b.add_node(0.0, 1.0); // 3
        let n2 = b.add_node(0.0, 2.0); // 4
        let s1 = b.add_node(0.0, -1.0); // 5
        let s2 = b.add_node(0.0, -2.0); // 6
        let w1 = b.add_node(-1.0, 0.0); // 7
        let w2 = b.add_node(-2.0, 0.0); // 8
        b.add_edge_euclidean(c, e1); // e0
        b.add_edge_euclidean(e1, e2); // e1
        b.add_edge_euclidean(c, n1); // e2
        b.add_edge_euclidean(n1, n2); // e3
        b.add_edge_euclidean(c, s1); // e4
        b.add_edge_euclidean(s1, s2); // e5
        b.add_edge_euclidean(c, w1); // e6
        b.add_edge_euclidean(w1, w2); // e7
        let net = Arc::new(b.build().unwrap());
        let gma = Gma::new(net.clone());
        (net, gma)
    }

    #[test]
    fn line_has_no_active_nodes() {
        let mut gma = line_setup();
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        assert_eq!(
            gma.active_node_count(),
            0,
            "degree-1 endpoints never activate"
        );
        let r = gma.result(QueryId(1)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].object, ObjectId(2));
        assert_eq!(r[0].dist, 0.0);
        assert_eq!(r[1].dist, 1.0);
    }

    #[test]
    fn cross_activates_center() {
        let (_, mut gma) = cross_setup();
        // One object per ray tip edge.
        gma.apply(UpdateEvent::insert_object(
            ObjectId(0),
            NetPoint::new(EdgeId(1), 0.5),
        )); // east, x=1.5
        gma.apply(UpdateEvent::insert_object(
            ObjectId(1),
            NetPoint::new(EdgeId(3), 0.5),
        )); // north
        gma.apply(UpdateEvent::insert_object(
            ObjectId(2),
            NetPoint::new(EdgeId(5), 0.5),
        )); // south
        gma.apply(UpdateEvent::insert_object(
            ObjectId(3),
            NetPoint::new(EdgeId(7), 0.5),
        )); // west
            // Query on the east ray at x=0.5 (edge e0 frac 0.5).
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        // Only the center (node 0) can be active; the east sequence runs
        // from node 0 to terminal node 2.
        assert_eq!(gma.active_node_count(), 1);
        let r = gma.result(QueryId(1)).unwrap();
        // o0 at |1.5-0.5| = 1.0 along the ray; the others at 0.5 + 1.5 = 2.0.
        assert_eq!(r[0].object, ObjectId(0));
        assert!((r[0].dist - 1.0).abs() < 1e-12);
        assert!((r[1].dist - 2.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_change_propagates_to_query() {
        let (_, mut gma) = cross_setup();
        gma.apply(UpdateEvent::insert_object(
            ObjectId(0),
            NetPoint::new(EdgeId(1), 0.9),
        )); // east far
        gma.apply(UpdateEvent::insert_object(
            ObjectId(1),
            NetPoint::new(EdgeId(3), 0.5),
        )); // north
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        // NN is o0 at 1.4.
        assert_eq!(gma.result(QueryId(1)).unwrap()[0].object, ObjectId(0));
        // o1 moves close to the center on the north ray: d(q, o1) becomes
        // 0.5 + 0.1 = 0.6 < 1.4. The change reaches q via node 0's NN set.
        let rep = gma.tick(&UpdateBatch {
            objects: vec![ObjectEvent::Move {
                id: ObjectId(1),
                to: NetPoint::new(EdgeId(2), 0.1),
            }],
            ..Default::default()
        });
        assert_eq!(rep.results_changed, 1);
        let r = gma.result(QueryId(1)).unwrap();
        assert_eq!(r[0].object, ObjectId(1));
        assert!((r[0].dist - 0.6).abs() < 1e-12);
    }

    #[test]
    fn irrelevant_updates_ignored() {
        let (_, mut gma) = cross_setup();
        gma.apply(UpdateEvent::insert_object(
            ObjectId(0),
            NetPoint::new(EdgeId(0), 0.6),
        ));
        gma.apply(UpdateEvent::insert_object(
            ObjectId(9),
            NetPoint::new(EdgeId(7), 0.9),
        ));
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        let before = gma.result(QueryId(1)).unwrap().to_vec();
        // Far-west object wiggles far outside everything.
        let rep = gma.tick(&UpdateBatch {
            objects: vec![ObjectEvent::Move {
                id: ObjectId(9),
                to: NetPoint::new(EdgeId(7), 0.95),
            }],
            ..Default::default()
        });
        assert_eq!(rep.results_changed, 0);
        assert_eq!(gma.result(QueryId(1)).unwrap(), before.as_slice());
    }

    #[test]
    fn query_move_across_sequences() {
        let (_, mut gma) = cross_setup();
        gma.apply(UpdateEvent::insert_object(
            ObjectId(0),
            NetPoint::new(EdgeId(1), 0.5),
        ));
        gma.apply(UpdateEvent::insert_object(
            ObjectId(1),
            NetPoint::new(EdgeId(3), 0.5),
        ));
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        assert_eq!(gma.result(QueryId(1)).unwrap()[0].object, ObjectId(0));
        // Move to the north ray.
        gma.tick(&UpdateBatch {
            queries: vec![QueryEvent::Move {
                id: QueryId(1),
                to: NetPoint::new(EdgeId(2), 0.5),
            }],
            ..Default::default()
        });
        assert_eq!(gma.result(QueryId(1)).unwrap()[0].object, ObjectId(1));
        // Remove the query: center deactivates.
        gma.apply(UpdateEvent::remove_query(QueryId(1)));
        assert_eq!(gma.active_node_count(), 0);
    }

    #[test]
    fn edge_update_within_sequence() {
        let mut gma = line_setup();
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        let rep = gma.tick(&UpdateBatch {
            edges: vec![EdgeWeightUpdate {
                edge: EdgeId(1),
                new_weight: 0.2,
            }],
            ..Default::default()
        });
        assert_eq!(rep.results_changed, 1);
        let r = gma.result(QueryId(1)).unwrap();
        // o1 (midpoint of shrunk edge 1) now at 0.5 + 0.1 = 0.6.
        assert_eq!(r[1].object, ObjectId(1));
        assert!((r[1].dist - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ring_network_cycle_sequence() {
        // Isolated ring: one cycle sequence, no active nodes ever.
        let net = Arc::new(generators::ring_network(8, 4.0));
        let mut gma = Gma::new(net.clone());
        for e in net.edge_ids() {
            gma.apply(UpdateEvent::insert_object(
                ObjectId(e.0),
                NetPoint::new(e, 0.5),
            ));
        }
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            3,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        assert_eq!(gma.active_node_count(), 0);
        let r = gma.result(QueryId(1)).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].object, ObjectId(0));
        assert_eq!(r[0].dist, 0.0);
        // Both ring neighbours are equidistant.
        assert!((r[1].dist - r[2].dist).abs() < 1e-9);
    }

    #[test]
    fn max_k_demand_drives_node_k() {
        let (_, mut gma) = cross_setup();
        for i in 0..8u32 {
            gma.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId(i % 8), 0.4),
            ));
        }
        gma.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        gma.apply(UpdateEvent::install_query(
            QueryId(2),
            5,
            NetPoint::new(EdgeId(1), 0.5),
        ));
        // Center node must monitor max(1, 5) = 5 NNs.
        let key = gma.node_anchor[&NodeId(0)];
        assert_eq!(gma.nodes.get(key).unwrap().k, 5);
        // The 5-NN query's result is complete.
        assert_eq!(gma.result(QueryId(2)).unwrap().len(), 5);
        // Removing the 5-NN query shrinks the node demand.
        gma.apply(UpdateEvent::remove_query(QueryId(2)));
        let key = gma.node_anchor[&NodeId(0)];
        assert_eq!(gma.nodes.get(key).unwrap().k, 1);
    }

    #[test]
    fn memory_reports_sequences() {
        let gma = line_setup();
        assert!(gma.memory().auxiliary > 0, "GMA carries the sequence table");
    }
}
