//! The k-NN network expansion — Figure 2 of the paper, generalised.
//!
//! [`knn_search`] retrieves the k nearest objects of a root position by
//! expanding the network around it (Dijkstra), interleaving object scanning
//! with node settlement, and building the expansion tree as it goes.
//!
//! The same routine implements every (re-)computation in the system:
//!
//! * **initial result computation** (§4.1): `kept = None`;
//! * **IMA re-expansion after updates** (§4.2–4.5): `kept` carries the
//!   still-valid part of the expansion tree; its nodes are pre-settled (the
//!   paper's "consider all nodes in the current q.tree as verified") and
//!   expansion resumes from the frontier marks;
//! * **OVH** (§6): `kept = None` every timestamp;
//! * **GMA active-node monitoring** (§5): a [`RootPos::Node`] root.
//!
//! Termination follows the paper (line 7): expansion stops when the next
//! heap key is no smaller than the distance of the current k-th candidate.

use rnn_roadnet::{DijkstraEngine, EdgeWeights, FxHashSet, NodeId, ObjectId, RoadNetwork};

use crate::counters::OpCounters;
use crate::state::ObjectIndex;
use crate::tree::{ExpansionTree, TreePool};
use crate::types::{sort_neighbors, Neighbor, RootPos};

/// Immutable context for a search.
pub struct SearchContext<'a> {
    /// Network topology.
    pub net: &'a RoadNetwork,
    /// Current edge weights.
    pub weights: &'a EdgeWeights,
    /// Current object placement.
    pub objects: &'a ObjectIndex,
}

/// The still-valid part of an expansion tree handed to a re-expansion.
pub struct KeptTree<'a> {
    /// The surviving tree (distances must be valid under the *current*
    /// weights, and the handle must belong to the pool passed to the
    /// search). Consumed and extended into the outcome tree.
    pub tree: ExpansionTree,
    /// When set to `(old_knn, changed_edges)`, kept-region edges that are
    /// *strictly fully covered* within `old_knn` from one of their kept
    /// endpoints — and whose weight is not in `changed_edges` — are **not**
    /// re-scanned for objects. Every object on such an edge had distance
    /// strictly below `old_knn`, hence was in the previous result, so the
    /// caller must pass the previous result (with re-derived distances) via
    /// `extra_candidates`. This turns the kept-region re-scan from
    /// O(region) into O(frontier ring + changed edges).
    pub selective: Option<(f64, &'a FxHashSet<rnn_roadnet::EdgeId>)>,
}

impl KeptTree<'_> {
    /// Full re-scan of the kept region (always correct, no preconditions).
    pub fn full(tree: ExpansionTree) -> Self {
        KeptTree {
            tree,
            selective: None,
        }
    }
}

/// Result of a [`knn_search`].
#[derive(Debug)]
pub struct SearchOutcome {
    /// The k best objects, sorted by `(dist, id)`. May contain fewer than
    /// `k` entries when the network holds fewer reachable objects.
    pub result: Vec<Neighbor>,
    /// Distance of the k-th neighbor (`q.kNN_dist`), or `∞` when fewer than
    /// `k` objects were found.
    pub knn_dist: f64,
    /// The expansion tree, pruned to `knn_dist` — a handle into the pool
    /// the search ran against; callers that discard it must release it
    /// back to that pool.
    pub tree: ExpansionTree,
}

/// One slot of the flat open-addressing dedup table inside [`BestK`].
#[derive(Clone, Copy)]
struct DedupSlot {
    /// Epoch the slot was last written in (0 = never; epochs start at 1).
    stamp: u32,
    object: ObjectId,
    dist: f64,
}

const EMPTY_SLOT: DedupSlot = DedupSlot {
    stamp: 0,
    object: ObjectId(0),
    dist: f64::INFINITY,
};

/// Bounded best-k candidate accumulator with object de-duplication.
///
/// Objects may be offered several times with different distances (an edge is
/// scanned from both endpoints; Figure 3(b)) — the minimum wins, exactly as
/// the paper's "keep only the instance with the smallest distance".
///
/// Deduplication runs on a **flat open-addressing scratch table** that is
/// invalidated in O(1) between searches via epoch stamping — the same trick
/// as the [`DijkstraEngine`] node arrays. One long-lived `BestK` per monitor
/// serves every search allocation-free in steady state: the only
/// allocations are high-water-mark table/top-list growth, counted in
/// [`BestK::take_alloc_events`] and surfaced through
/// `OpCounters::alloc_events`.
///
/// Public because GMA's within-sequence evaluation (§5) accumulates
/// candidates the same way.
pub struct BestK {
    k: usize,
    /// Open-addressing dedup table (best known distance per object),
    /// power-of-two sized, linear probing, epoch-stamped slots.
    slots: Vec<DedupSlot>,
    /// Current epoch; slots with an older stamp read as empty.
    epoch: u32,
    /// Slots occupied in the current epoch (drives load-factor growth).
    live: usize,
    /// The current k smallest, sorted ascending by `(dist, id)`.
    top: Vec<Neighbor>,
    /// Table/top-list capacity growth events since the last take.
    allocs: u64,
}

impl Default for BestK {
    /// A completely empty accumulator that has **allocated nothing** —
    /// cheap enough to create as a `mem::take` placeholder on the hot
    /// path. Immediately usable as a 1-best accumulator; callers normally
    /// [`Self::reset`] it to their `k` first. The epoch starts at 1:
    /// epoch 0 is reserved as the never-written slot stamp, so fresh
    /// table slots always read as empty.
    fn default() -> Self {
        Self {
            k: 1,
            // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
            slots: Vec::new(),
            epoch: 1,
            live: 0,
            // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
            top: Vec::new(),
            allocs: 0,
        }
    }
}

impl BestK {
    /// An accumulator for the `k` best candidates, ready for its first
    /// search. Reuse it across searches with [`Self::reset`].
    pub fn new(k: usize) -> Self {
        let mut b = Self::default();
        b.reset(k);
        b.allocs = 0; // construction is not a steady-state alloc event
        b
    }

    /// Restarts the accumulator for a new `k`-best search **without
    /// releasing any capacity**: the top list is cleared and the dedup
    /// table is invalidated in O(1) by bumping the epoch stamp.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.live = 0;
        self.top.clear();
        if self.top.capacity() < k + 1 {
            self.allocs += 1;
            self.top.reserve(k + 1 - self.top.len());
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: physically clear the stamps once every 2^32
                // searches so stale slots can never alias.
                self.slots.fill(EMPTY_SLOT);
                1
            }
        };
    }

    /// Table/top-list capacity growth events since the last take. Zero
    /// across a tick proves the tick's searches deduplicated entirely in
    /// reused capacity.
    pub fn take_alloc_events(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// Slot index to probe first for `object` (Fibonacci hashing).
    #[inline]
    fn home(&self, object: ObjectId) -> usize {
        debug_assert!(self.slots.len().is_power_of_two());
        let h = (object.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    /// Doubles the dedup table, re-inserting only current-epoch entries.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(64);
        // lint: allow(hot-path-alloc): amortized capacity growth; counted by alloc_events and pinned by the zero-alloc CI gate
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        self.allocs += 1;
        let mask = new_cap - 1;
        for s in old {
            if s.stamp != self.epoch {
                continue;
            }
            let mut i = self.home(s.object);
            while self.slots[i].stamp == self.epoch {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }

    /// Distance of the k-th candidate, `∞` while fewer than k are known.
    #[inline]
    pub fn kth(&self) -> f64 {
        if self.top.len() == self.k {
            self.top[self.k - 1].dist
        } else {
            f64::INFINITY
        }
    }

    /// Offers a candidate; keeps the minimum distance per object.
    pub fn offer(&mut self, object: ObjectId, dist: f64) {
        // Keep the table at most half full so linear probes stay short.
        if (self.live + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(object);
        loop {
            let slot = &mut self.slots[i];
            if slot.stamp != self.epoch {
                // First sighting of this object in the current search.
                *slot = DedupSlot {
                    stamp: self.epoch,
                    object,
                    dist,
                };
                self.live += 1;
                break;
            }
            if slot.object == object {
                if slot.dist <= dist {
                    return; // not an improvement
                }
                slot.dist = dist;
                // Remove the previous (worse) entry of the same object from
                // the top list before re-inserting in order.
                if let Some(p) = self.top.iter().position(|n| n.object == object) {
                    self.top.remove(p);
                }
                break;
            }
            i = (i + 1) & mask;
        }
        if self.top.len() == self.k && dist >= self.kth() {
            return; // not better than the current k-th: top list unchanged
        }
        let key = (dist, object);
        let at = self.top.partition_point(|n| (n.dist, n.object) < key);
        self.top.insert(at, Neighbor { object, dist });
        self.top.truncate(self.k);
    }

    /// The accumulated k best, sorted ascending by `(dist, id)`, as an
    /// owned copy; the accumulator is untouched (the scratch keeps its
    /// state and capacity for the next search).
    pub fn clone_result(&self) -> Vec<Neighbor> {
        self.top.clone()
    }

    /// The accumulated k best, consuming the accumulator (kept for tests
    /// and one-shot callers; long-lived scratches use [`Self::clone_result`]).
    pub fn into_result(self) -> Vec<Neighbor> {
        self.top
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<DedupSlot>()
            + self.top.capacity() * std::mem::size_of::<Neighbor>()
    }
}

/// Scans the objects of edge `e` as seen from endpoint `n` settled at
/// distance `d`, offering each to the candidate set.
#[inline]
fn scan_edge_from(
    ctx: &SearchContext<'_>,
    best: &mut BestK,
    counters: &mut OpCounters,
    e: rnn_roadnet::EdgeId,
    n: NodeId,
    d: f64,
) {
    counters.edges_scanned += 1;
    let objs = ctx.objects.on_edge(e);
    if objs.is_empty() {
        return;
    }
    let w = ctx.weights.get(e);
    let from_start = ctx.net.edge(e).start == n;
    for &(obj, frac) in objs {
        let along = if from_start {
            frac * w
        } else {
            (1.0 - frac) * w
        };
        counters.objects_considered += 1;
        best.offer(obj, d + along);
    }
}

/// The k-NN expansion (Figure 2; see the module docs for the generalised
/// modes). `kept` is consumed and extended into the outcome tree.
///
/// `best` is the caller's candidate scratch, reset here — passing the same
/// long-lived accumulator to every search keeps the dedup table
/// allocation-free in steady state. `pool` is the caller's tree arena: the
/// outcome tree's nodes are popped from its free list (and a recycled
/// directory serves the handle), so steady-state searches build their
/// trees without heap allocation. `extra_candidates` lets callers
/// pre-load known-valid neighbors (the surviving NNs of §4.2) without a
/// region rescan; with `rescan_kept` the whole kept region is re-scanned
/// for objects (used whenever tree surgery may have invalidated stored NN
/// distances).
#[allow(clippy::too_many_arguments)]
pub fn knn_search(
    ctx: &SearchContext<'_>,
    engine: &mut DijkstraEngine,
    best: &mut BestK,
    pool: &mut TreePool,
    root: RootPos,
    k: usize,
    kept: Option<KeptTree<'_>>,
    extra_candidates: &[Neighbor],
    counters: &mut OpCounters,
) -> SearchOutcome {
    assert!(k >= 1, "k must be at least 1");
    best.reset(k);
    for n in extra_candidates {
        counters.objects_considered += 1;
        best.offer(n.object, n.dist);
    }

    engine.begin();
    let (mut tree, selective) = match kept {
        Some(kt) => (kt.tree, kt.selective),
        None => (pool.new_tree(), None),
    };

    // Pre-settle the valid tree and seed the frontier from it.
    if !tree.is_empty() {
        for (n, dist) in tree.iter(pool) {
            engine.presettle(n, dist);
        }
        for (n, dist) in tree.iter(pool) {
            // Re-scan the kept region for result candidates (selectively,
            // see [`KeptTree::selective`]) and push the frontier (edges
            // leading out of the kept set).
            for &(e, m) in ctx.net.adjacent(n) {
                let scan = match selective {
                    None => true,
                    Some((old_knn, changed)) => {
                        let w = ctx.weights.get(e);
                        let slack = crate::anchor::interval_slack(old_knn);
                        // Strictly fully covered from this side → every
                        // object on `e` was strictly inside the old result
                        // region → already among `extra_candidates`.
                        old_knn - dist <= w + slack || changed.contains(&e)
                    }
                };
                if scan {
                    scan_edge_from(ctx, best, counters, e, n, dist);
                }
                if !tree.contains(m) {
                    counters.relaxations += 1;
                    engine.seed_via(m, dist + ctx.weights.get(e), Some(n), Some(e));
                }
            }
        }
    }

    // Root contributions.
    match root {
        RootPos::Point(p) => {
            // Objects on the root edge at their direct along-edge distance
            // (around-the-network paths are found via the endpoints later).
            let w = ctx.weights.get(p.edge);
            counters.edges_scanned += 1;
            for &(obj, frac) in ctx.objects.on_edge(p.edge) {
                counters.objects_considered += 1;
                best.offer(obj, (frac - p.frac).abs() * w);
            }
            let rec = ctx.net.edge(p.edge);
            if !tree.contains(rec.start) {
                engine.seed(rec.start, p.frac * w, None);
            }
            if !tree.contains(rec.end) {
                engine.seed(rec.end, (1.0 - p.frac) * w, None);
            }
        }
        RootPos::Node(n) => {
            if !tree.contains(n) {
                engine.seed(n, 0.0, None);
            }
        }
    }

    // Main expansion loop (Figure 2, lines 7–23).
    while let Some(next_d) = engine.peek_dist() {
        if next_d >= best.kth() {
            break;
        }
        let (n, d) = engine.pop_settle().expect("peek guaranteed an entry");
        counters.nodes_settled += 1;
        pool.insert(&mut tree, n, d, engine.parent_link_of(n));
        for &(e, m) in ctx.net.adjacent(n) {
            scan_edge_from(ctx, best, counters, e, n, d);
            counters.relaxations += 1;
            engine.relax_via(m, n, Some(e), d + ctx.weights.get(e));
        }
    }

    let mut result = best.clone_result();
    sort_neighbors(&mut result);
    let knn_dist = if result.len() == k {
        result[k - 1].dist
    } else {
        f64::INFINITY
    };
    // Figure 2 line 24 / §4.5 line 26: drop tree parts beyond kNN_dist.
    counters.tree_nodes_pruned += pool.retain_within(&mut tree, knn_dist) as u64;
    SearchOutcome {
        result,
        knn_dist,
        tree,
    }
}

/// Exact network distance from a root to a point, *given* that the point is
/// within the root's expansion tree region (i.e. at distance ≤ kNN_dist):
/// the minimum over the point's edge endpoints in the tree, plus the direct
/// along-edge path when the point shares the root's edge.
///
/// For points outside the region the returned value is an upper bound that
/// is guaranteed to exceed `kNN_dist`, which is exactly what update
/// classification needs (§4.2).
#[allow(clippy::too_many_arguments)]
pub fn dist_via_tree(
    net: &RoadNetwork,
    weights: &EdgeWeights,
    pool: &TreePool,
    tree: &ExpansionTree,
    root: RootPos,
    p: rnn_roadnet::NetPoint,
) -> f64 {
    let mut best = f64::INFINITY;
    if let RootPos::Point(rp) = root {
        if rp.edge == p.edge {
            best = (rp.frac - p.frac).abs() * weights.get(p.edge);
        }
    }
    let rec = net.edge(p.edge);
    let w = weights.get(p.edge);
    if let Some(d) = tree.dist(pool, rec.start) {
        best = best.min(d + p.frac * w);
    }
    if let Some(d) = tree.dist(pool, rec.end) {
        best = best.min(d + (1.0 - p.frac) * w);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::{generators, EdgeId, NetPoint};

    /// Line 0-1-2-3-4, spacing 1; objects at the midpoints of edges 0..4.
    fn line_ctx() -> (RoadNetwork, EdgeWeights, ObjectIndex) {
        let net = generators::line_network(5, 1.0);
        let w = EdgeWeights::from_base(&net);
        let mut obj = ObjectIndex::new(net.num_edges());
        for e in net.edge_ids() {
            obj.insert(ObjectId(e.0), NetPoint::new(e, 0.5));
        }
        (net, w, obj)
    }

    #[test]
    fn initial_search_on_line() {
        let (net, weights, objects) = line_ctx();
        let ctx = SearchContext {
            net: &net,
            weights: &weights,
            objects: &objects,
        };
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let mut best = BestK::new(1);
        let mut pool = TreePool::new();
        let mut c = OpCounters::default();
        // Query at frac 0.5 of edge 1 (x = 1.5). Object distances:
        // o1: 0, o0: 1, o2: 1, o3: 2, o4: 3.
        let root = RootPos::Point(NetPoint::new(EdgeId(1), 0.5));
        let out = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            root,
            3,
            None,
            &[],
            &mut c,
        );
        assert_eq!(out.result.len(), 3);
        assert_eq!(
            out.result[0],
            Neighbor {
                object: ObjectId(1),
                dist: 0.0
            }
        );
        // Objects 0 and 2 tie at distance 1; id ascending.
        assert_eq!(
            out.result[1],
            Neighbor {
                object: ObjectId(0),
                dist: 1.0
            }
        );
        assert_eq!(
            out.result[2],
            Neighbor {
                object: ObjectId(2),
                dist: 1.0
            }
        );
        assert_eq!(out.knn_dist, 1.0);
        // Tree: all nodes within distance 1 of x=1.5 -> nodes 1 (x=1) and
        // 2 (x=2), at distance 0.5 each.
        assert_eq!(out.tree.len(), 2);
        assert_eq!(out.tree.dist(&pool, NodeId(1)), Some(0.5));
        assert_eq!(out.tree.dist(&pool, NodeId(2)), Some(0.5));
        pool.check_invariants(&out.tree, &net, &weights);
        assert!(c.nodes_settled >= 2);
    }

    #[test]
    fn node_root_search() {
        let (net, weights, objects) = line_ctx();
        let ctx = SearchContext {
            net: &net,
            weights: &weights,
            objects: &objects,
        };
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let mut best = BestK::new(1);
        let mut pool = TreePool::new();
        let mut c = OpCounters::default();
        let out = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            RootPos::Node(NodeId(0)),
            2,
            None,
            &[],
            &mut c,
        );
        // From node 0: o0 at 0.5, o1 at 1.5.
        assert_eq!(
            out.result[0],
            Neighbor {
                object: ObjectId(0),
                dist: 0.5
            }
        );
        assert_eq!(
            out.result[1],
            Neighbor {
                object: ObjectId(1),
                dist: 1.5
            }
        );
        assert_eq!(out.knn_dist, 1.5);
        // Root node itself is in the tree at distance 0.
        assert_eq!(out.tree.dist(&pool, NodeId(0)), Some(0.0));
    }

    #[test]
    fn underflow_returns_fewer_than_k() {
        let (net, weights, _) = line_ctx();
        let mut objects = ObjectIndex::new(net.num_edges());
        objects.insert(ObjectId(0), NetPoint::new(EdgeId(0), 0.5));
        let ctx = SearchContext {
            net: &net,
            weights: &weights,
            objects: &objects,
        };
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let mut best = BestK::new(1);
        let mut pool = TreePool::new();
        let mut c = OpCounters::default();
        let out = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            5,
            None,
            &[],
            &mut c,
        );
        assert_eq!(out.result.len(), 1);
        assert_eq!(out.knn_dist, f64::INFINITY);
        // The tree covers the whole (reachable) network.
        assert_eq!(out.tree.len(), net.num_nodes());
    }

    #[test]
    fn kept_tree_resumes_identically() {
        // Run a fresh search; then re-run with the pruned tree of a smaller
        // search as the kept part — results must match the fresh search.
        let (net, weights, objects) = line_ctx();
        let ctx = SearchContext {
            net: &net,
            weights: &weights,
            objects: &objects,
        };
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let mut best = BestK::new(1);
        let mut pool = TreePool::new();
        let mut c = OpCounters::default();
        let root = RootPos::Point(NetPoint::new(EdgeId(0), 0.1));

        let small = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            root,
            2,
            None,
            &[],
            &mut c,
        );
        let fresh = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            root,
            4,
            None,
            &[],
            &mut c,
        );
        let resumed = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            root,
            4,
            Some(KeptTree::full(small.tree)),
            &[],
            &mut c,
        );
        assert_eq!(fresh.result, resumed.result);
        assert_eq!(fresh.knn_dist, resumed.knn_dist);
        assert_eq!(fresh.tree.len(), resumed.tree.len());
        pool.check_invariants(&resumed.tree, &net, &weights);
    }

    #[test]
    fn extra_candidates_seed_result() {
        let (net, weights, objects) = line_ctx();
        let ctx = SearchContext {
            net: &net,
            weights: &weights,
            objects: &objects,
        };
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let mut best = BestK::new(1);
        let mut pool = TreePool::new();
        let mut c = OpCounters::default();
        let root = RootPos::Point(NetPoint::new(EdgeId(1), 0.5));
        // Claim a fake very-near candidate; it must appear in the result.
        let out = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            root,
            2,
            None,
            &[Neighbor {
                object: ObjectId(99),
                dist: 0.25,
            }],
            &mut c,
        );
        assert!(out.result.iter().any(|n| n.object == ObjectId(99)));
    }

    #[test]
    fn best_k_dedups_and_keeps_minimum() {
        let mut b = BestK::new(2);
        b.offer(ObjectId(1), 5.0);
        b.offer(ObjectId(2), 3.0);
        b.offer(ObjectId(1), 2.0); // improves
        b.offer(ObjectId(3), 10.0); // too far
        assert_eq!(b.kth(), 3.0);
        let r = b.into_result();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r[0],
            Neighbor {
                object: ObjectId(1),
                dist: 2.0
            }
        );
        assert_eq!(
            r[1],
            Neighbor {
                object: ObjectId(2),
                dist: 3.0
            }
        );
    }

    #[test]
    fn best_k_reuse_is_allocation_free_and_isolated() {
        // The epoch-stamped scratch must (a) forget everything on reset and
        // (b) stop allocating once its high-water capacity is reached.
        let mut b = BestK::new(3);
        for i in 0..40u32 {
            b.offer(ObjectId(i), f64::from(i));
        }
        let first = b.clone_result();
        assert_eq!(first.len(), 3);
        b.take_alloc_events();
        for round in 0..50u32 {
            b.reset(3);
            // Same objects, different distances each round: stale slots
            // from earlier epochs must never leak through.
            for i in 0..40u32 {
                b.offer(ObjectId(i), f64::from((i + round) % 40));
            }
            let r = b.clone_result();
            assert_eq!(r.len(), 3);
            assert_eq!(r[0].dist, 0.0);
            for w in r.windows(2) {
                assert!(w[0].sort_key() <= w[1].sort_key());
            }
        }
        assert_eq!(
            b.take_alloc_events(),
            0,
            "reused searches must not grow the dedup scratch"
        );
    }

    #[test]
    fn best_k_worse_offer_ignored() {
        let mut b = BestK::new(1);
        b.offer(ObjectId(1), 1.0);
        b.offer(ObjectId(1), 2.0);
        assert_eq!(b.kth(), 1.0);
    }

    #[test]
    fn best_k_default_is_usable_without_reset() {
        // Regression: the default epoch must not alias the never-written
        // slot stamp (0), or the first offer's probe loop would see every
        // fresh slot as occupied and spin forever.
        let mut b = BestK::default();
        b.offer(ObjectId(7), 2.0);
        b.offer(ObjectId(3), 1.0);
        let r = b.clone_result();
        assert_eq!(r.len(), 1, "default accumulates 1-best");
        assert_eq!(r[0].object, ObjectId(3));
    }

    #[test]
    fn dist_via_tree_matches_search_distances() {
        let (net, weights, objects) = line_ctx();
        let ctx = SearchContext {
            net: &net,
            weights: &weights,
            objects: &objects,
        };
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let mut best = BestK::new(1);
        let mut pool = TreePool::new();
        let mut c = OpCounters::default();
        let root = RootPos::Point(NetPoint::new(EdgeId(1), 0.5));
        let out = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            root,
            3,
            None,
            &[],
            &mut c,
        );
        for n in &out.result {
            let pos = objects.position(n.object).unwrap();
            let d = dist_via_tree(&net, &weights, &pool, &out.tree, root, pos);
            assert!((d - n.dist).abs() < 1e-12, "object {:?}", n.object);
        }
        // A far object is reported beyond knn_dist.
        let far = objects.position(ObjectId(3)).unwrap();
        assert!(dist_via_tree(&net, &weights, &pool, &out.tree, root, far) > out.knn_dist);
    }

    #[test]
    fn search_on_generated_network_matches_oracle() {
        // Brute-force oracle: distance from the query to every object via
        // the engine's point-to-point distance.
        let net = generators::grid_city(&generators::GridCityConfig {
            nx: 5,
            ny: 5,
            seed: 11,
            ..Default::default()
        });
        let weights = EdgeWeights::from_base(&net);
        let mut objects = ObjectIndex::new(net.num_edges());
        for (i, e) in net.edge_ids().enumerate() {
            if i % 2 == 0 {
                objects.insert(ObjectId(i as u32), NetPoint::new(e, 0.3));
            }
        }
        let ctx = SearchContext {
            net: &net,
            weights: &weights,
            objects: &objects,
        };
        let mut eng = DijkstraEngine::new(net.num_nodes());
        let mut best = BestK::new(1);
        let mut pool = TreePool::new();
        let mut c = OpCounters::default();
        let q = NetPoint::new(EdgeId(7), 0.6);
        let out = knn_search(
            &ctx,
            &mut eng,
            &mut best,
            &mut pool,
            RootPos::Point(q),
            5,
            None,
            &[],
            &mut c,
        );

        let mut oracle: Vec<Neighbor> = objects
            .iter()
            .map(|(id, pos)| Neighbor {
                object: id,
                dist: eng.dist_between_points(&net, &weights, q, pos),
            })
            .collect();
        sort_neighbors(&mut oracle);
        oracle.truncate(5);
        for (a, b) in out.result.iter().zip(&oracle) {
            assert!((a.dist - b.dist).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }
}
