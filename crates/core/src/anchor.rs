//! The incremental-monitoring machinery (§4), shared by IMA and GMA.
//!
//! An **anchor** is anything whose k-NN set is continuously maintained with
//! an expansion tree and influence lists: a user query in [`crate::ima::Ima`]
//! (rooted at a point, movable), or an active intersection node in
//! [`crate::gma::Gma`] (rooted at a node, static — §5: "Monitoring the NNs
//! of active nodes is performed with IMA, except that [the query-movement
//! lines] are never executed").
//!
//! [`AnchorSet::tick`] implements the complete IMA update schedule
//! (Figure 10): root moves out of their trees first, then edge-weight
//! changes, then root moves within trees, then object updates, and finally
//! one re-expansion per affected anchor that reuses the surviving part of
//! its expansion tree.
//!
//! ## Deviation from the paper's §4.4 pruning (documented)
//!
//! For decreasing weights the paper keeps (i) the subtree under the updated
//! edge with shifted distances and (ii) the rest of the tree up to the
//! updated edge's far endpoint. With several simultaneous updates the
//! interactions of rule (i) are subtle (the paper prescribes a processing
//! order to stay correct), so this implementation uses the *batched
//! conservative* form of rule (ii): all decreases affecting an anchor are
//! folded into one radius `θ = min over decreased edges e of
//! (min distance of e's verified endpoints + new weight of e)` and the tree
//! is pruned to `θ` in one step. Every kept distance is provably still
//! optimal under the post-tick weights (any improved path must cross a
//! decreased edge, paying at least `θ` to do so), for any number of
//! concurrent increases and decreases. The cost is a somewhat smaller kept
//! tree than the paper's rule (i) would retain; correctness is validated
//! differentially against from-scratch recomputation in the test suite.

use std::sync::Arc;

use rnn_roadnet::{
    DijkstraEngine, EdgeId, FxHashMap, FxHashSet, NetPoint, NodeId, ObjectId, RoadNetwork,
};

use crate::counters::OpCounters;
use crate::influence::{InfluenceTable, IntervalSet};
use crate::search::{dist_via_tree, knn_search, BestK, KeptTree, SearchContext, SearchOutcome};
use crate::state::{EdgeDelta, NetworkState, ObjectDelta};
use crate::tree::{ExpansionTree, TreePool};
use crate::types::{sort_neighbors, Neighbor, RootPos};

/// Handle to an anchor within an [`AnchorSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AnchorKey(pub u32);

/// Per-anchor monitored state (one row of the paper's **QT** / **NT**).
pub struct AnchorRec {
    /// Where the expansion is rooted.
    pub root: RootPos,
    /// Number of neighbors monitored.
    pub k: usize,
    /// Current k-NN set, sorted by `(dist, id)`.
    pub result: Vec<Neighbor>,
    /// Distance of the k-th NN (`∞` when fewer than k objects exist).
    pub knn_dist: f64,
    /// The expansion tree — a handle into the set's shared [`TreePool`].
    pub tree: ExpansionTree,
    /// Edges currently carrying this anchor in their influence lists.
    pub influenced: Vec<EdgeId>,
}

/// Per-anchor work accumulated while scanning a tick's updates.
struct Pending {
    /// Re-run the initial computation from scratch.
    full: bool,
    /// Conservative decrease radius (∞ = no decrease affects this anchor).
    theta: f64,
    /// Child-side nodes of increased tree-link edges (subtrees to cut).
    cuts: Vec<NodeId>,
    /// Tree surgery happened → stored NN distances may be stale.
    dirty_tree: bool,
    /// Object deltas touching this anchor: `(object, new position)`.
    objects: Vec<(ObjectId, Option<rnn_roadnet::NetPoint>)>,
    /// New root, when the anchor moved within its tree this tick.
    moved_root: Option<RootPos>,
}

impl Default for Pending {
    fn default() -> Self {
        Self {
            full: false,
            theta: f64::INFINITY,
            // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
            cuts: Vec::new(),
            dirty_tree: false,
            // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
            objects: Vec::new(),
            moved_root: None,
        }
    }
}

/// What a tick did.
pub struct AnchorTickOutcome {
    /// Anchors whose reported result changed (ids or distances).
    pub changed: Vec<AnchorKey>,
    /// Work counters.
    pub counters: OpCounters,
}

/// A set of anchors maintained incrementally over a shared
/// [`NetworkState`].
pub struct AnchorSet {
    net: Arc<RoadNetwork>,
    anchors: FxHashMap<AnchorKey, AnchorRec>,
    il: InfluenceTable<AnchorKey>,
    engine: DijkstraEngine,
    /// Candidate scratch shared by every expansion (flat epoch-stamped
    /// dedup table; reused so steady-state searches never allocate).
    best: BestK,
    /// The arena all anchors' expansion trees live in: one slab of
    /// intrusive nodes with a free list, so tree surgery (subtree cuts,
    /// θ-prunes, re-expansion inserts) recycles slots instead of touching
    /// the heap. See [`crate::tree`].
    pool: TreePool,
    /// Scratch for the tick's shared multi-k expansion outcomes (cleared
    /// every tick; a field so its capacity is reused).
    shared_outcomes: Vec<SearchOutcome>,
    /// Expansion work charged to the partition cell (edge) of each
    /// expansion root since the last take — the load signal the sharded
    /// engine's rebalance planner ranks candidate cells by. Reused
    /// capacity; cleared by the owning monitor at the start of each tick.
    cell_charges: Vec<(EdgeId, u64)>,
    next_key: u32,
    /// Ablation switch: with influence lists disabled, every anchor is
    /// treated as affected by every update (used to quantify the paper's
    /// "process only updates that may invalidate" claim).
    pub use_influence_lists: bool,
}

impl AnchorSet {
    /// Creates an empty set over the given network.
    pub fn new(net: Arc<RoadNetwork>) -> Self {
        let engine = DijkstraEngine::new(net.num_nodes());
        let il = InfluenceTable::new(net.num_edges());
        Self {
            net,
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            anchors: FxHashMap::default(),
            il,
            engine,
            best: BestK::default(),
            pool: TreePool::new(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            shared_outcomes: Vec::new(),
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            cell_charges: Vec::new(),
            next_key: 0,
            use_influence_lists: true,
        }
    }

    /// Folds the engine's, influence table's and tree pool's
    /// allocation/step counters (accumulated by out-of-tick work such as
    /// query installs) into `c`. [`Self::tick`] harvests its own share
    /// automatically.
    pub fn harvest_scratch_counters(&mut self, c: &mut OpCounters) {
        c.alloc_events += self.engine.take_alloc_events()
            + self.il.take_alloc_events()
            + self.best.take_alloc_events()
            + self.pool.take_alloc_events();
        c.expansion_steps += self.engine.take_expansion_steps();
        c.tree_nodes_recycled += self.pool.take_recycled();
    }

    /// Pre-provisions the shared tree pool for `trees` concurrent
    /// expansion trees of about `nodes_per_tree` verified nodes each —
    /// construction-time warm-up that does **not** count as alloc events
    /// (see [`TreePool::prewarm`]). Called by monitors built with a
    /// tree-pool sizing hint so the spare-directory population is in
    /// place before the first install instead of adapting via one-time
    /// allocations during the first ticks.
    pub fn prewarm_trees(&mut self, trees: usize, nodes_per_tree: usize) {
        self.pool.prewarm(trees, nodes_per_tree);
    }

    /// Drops the accumulated per-cell expansion charges (called by the
    /// owning monitor at the start of each tick so the buffer holds
    /// exactly one tick of attribution).
    pub fn clear_cell_charges(&mut self) {
        self.cell_charges.clear();
    }

    /// Drains the per-cell expansion charges recorded since the last
    /// drain — `(cell edge of the expansion root, Dijkstra steps)` per
    /// search — into `into`. The internal buffer keeps its capacity, so
    /// per-tick recording never re-allocates; the sharded engine folds
    /// the drained charges into its per-cell load estimates.
    pub fn drain_cell_charges(&mut self, into: &mut Vec<(EdgeId, u64)>) {
        into.append(&mut self.cell_charges);
    }

    /// The underlying network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// Number of anchors.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Iterates over anchor keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = AnchorKey> + '_ {
        self.anchors.keys().copied()
    }

    /// The record of anchor `key`.
    pub fn get(&self, key: AnchorKey) -> Option<&AnchorRec> {
        self.anchors.get(&key)
    }

    /// Installs a new anchor and computes its initial result (§4.1).
    ///
    /// Allocation accounting: scratch events pending from earlier work are
    /// first drained into `counters.alloc_events` (maintenance), then the
    /// install's own allocations — a brand-new entity legitimately
    /// materialises fresh state — go to `counters.install_alloc_events`,
    /// keeping the steady-state maintenance guarantee clean.
    pub fn add(
        &mut self,
        state: &NetworkState,
        root: RootPos,
        k: usize,
        counters: &mut OpCounters,
    ) -> AnchorKey {
        self.harvest_scratch_counters(counters);
        let key = AnchorKey(self.next_key);
        self.next_key += 1;
        let ctx = SearchContext {
            net: &self.net,
            weights: &state.weights,
            objects: &state.objects,
        };
        counters.reevaluations += 1;
        let steps0 = self.engine.expansion_steps();
        let out = knn_search(
            &ctx,
            &mut self.engine,
            &mut self.best,
            &mut self.pool,
            root,
            k,
            None,
            &[],
            counters,
        );
        charge_cell(
            &self.net,
            &mut self.cell_charges,
            root,
            self.engine.expansion_steps() - steps0,
        );
        let mut rec = AnchorRec {
            root,
            k,
            // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
            result: Vec::new(),
            knn_dist: 0.0,
            tree: ExpansionTree::new(),
            // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
            influenced: Vec::new(),
        };
        store_outcome(&mut self.pool, &mut rec, out);
        rebuild_influence(&self.net, state, &self.pool, key, &mut rec, &mut self.il);
        self.anchors.insert(key, rec);
        let mut install = OpCounters::default();
        self.harvest_scratch_counters(&mut install);
        counters.install_alloc_events += install.alloc_events;
        counters.expansion_steps += install.expansion_steps;
        counters.tree_nodes_recycled += install.tree_nodes_recycled;
        key
    }

    /// Removes an anchor, clearing its influence-list entries and
    /// returning its tree nodes to the pool.
    pub fn remove(&mut self, key: AnchorKey) -> bool {
        match self.anchors.remove(&key) {
            Some(rec) => {
                for e in rec.influenced {
                    self.il.remove(e, key);
                }
                self.pool.release(rec.tree);
                true
            }
            None => false,
        }
    }

    /// Changes the number of monitored neighbors (GMA adjusts `n.k` as
    /// queries with different `k` enter/leave a node's sequences).
    pub fn set_k(
        &mut self,
        state: &NetworkState,
        key: AnchorKey,
        k: usize,
        counters: &mut OpCounters,
    ) {
        let Some(rec) = self.anchors.get_mut(&key) else {
            return;
        };
        if rec.k == k {
            return;
        }
        if k < rec.k {
            // Shrink: keep the k best, tighten tree and intervals.
            rec.k = k;
            rec.result.truncate(k);
            rec.knn_dist = if rec.result.len() == k {
                rec.result[k - 1].dist
            } else {
                f64::INFINITY
            };
            counters.tree_nodes_pruned +=
                self.pool.retain_within(&mut rec.tree, rec.knn_dist) as u64;
        } else {
            // Grow: re-expand, reusing the whole current tree (full
            // re-scan: the result region is about to widen).
            rec.k = k;
            let tree = std::mem::take(&mut rec.tree);
            let ctx = SearchContext {
                net: &self.net,
                weights: &state.weights,
                objects: &state.objects,
            };
            counters.reevaluations += 1;
            let steps0 = self.engine.expansion_steps();
            let out = knn_search(
                &ctx,
                &mut self.engine,
                &mut self.best,
                &mut self.pool,
                rec.root,
                k,
                Some(KeptTree::full(tree)),
                &[],
                counters,
            );
            charge_cell(
                &self.net,
                &mut self.cell_charges,
                rec.root,
                self.engine.expansion_steps() - steps0,
            );
            store_outcome(&mut self.pool, rec, out);
        }
        let rec = self.anchors.get_mut(&key).expect("just updated");
        rebuild_influence(&self.net, state, &self.pool, key, rec, &mut self.il);
    }

    /// Processes one timestamp of updates. `state` must already reflect the
    /// post-tick weights and object placement (see
    /// [`NetworkState::apply_batch`]); `objects` / `edges` carry the
    /// coalesced deltas with old values; `root_moves` carries anchor
    /// movements (IMA queries; empty for GMA's static nodes).
    pub fn tick(
        &mut self,
        state: &NetworkState,
        objects: &[ObjectDelta],
        edges: &[EdgeDelta],
        root_moves: &[(AnchorKey, RootPos)],
    ) -> AnchorTickOutcome {
        let mut counters = OpCounters::default();
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut pending: FxHashMap<AnchorKey, Pending> = FxHashMap::default();

        // ---- Figure 10, lines 1-3: roots moving outside their trees.
        for &(key, new_root) in root_moves {
            let Some(rec) = self.anchors.get_mut(&key) else {
                continue;
            };
            let p = pending.entry(key).or_default();
            p.moved_root = Some(new_root);
            if !root_within_tree(&self.net, rec, new_root) {
                p.full = true;
            }
        }

        // ---- Lines 4-13: edge updates.
        //
        // Per affected anchor, a weight change is first tested for
        // *harmlessness to the expansion tree*: if no shortest path in the
        // tree region can improve through the updated edge, the stored
        // distances all stay valid and only the objects **on** that edge
        // change distance — those are funneled into the cheap object
        // fast path. Otherwise the conservative batched rule applies: θ
        // across all decreases, subtree cuts for increased tree links.
        for d in edges {
            let affected: Vec<AnchorKey> = if self.use_influence_lists {
                // lint: allow(hot-path-alloc): collects only for ticks that carry edge-weight deltas (the resync slow path); charged to alloc_events under the runtime gate
                self.il.on_edge(d.edge).iter().map(|&(k, _)| k).collect()
            } else {
                // lint: allow(hot-path-alloc): full-rescan fallback taken only on resync ticks; charged to alloc_events under the runtime gate
                self.anchors.keys().copied().collect()
            };
            if affected.is_empty() {
                counters.updates_ignored += 1;
                continue;
            }
            for key in affected {
                let Some(rec) = self.anchors.get(&key) else {
                    continue;
                };
                let p = pending.entry(key).or_default();
                if p.full {
                    continue; // recomputation already scheduled
                }
                if rec.root.edge() == Some(d.edge) {
                    // Weight change on the root's own edge rescales both
                    // root branches; recompute (documented simplification
                    // of the paper's §4.4 special case).
                    p.full = true;
                    continue;
                }
                let erec = self.net.edge(d.edge);
                let da = rec.tree.dist(&self.pool, erec.start);
                let db = rec.tree.dist(&self.pool, erec.end);
                if d.new_w < d.old_w {
                    // A decrease can only invalidate tree distances by
                    // creating a shortcut through the edge; entering at a
                    // verified endpoint and crossing costs at least
                    // `d(endpoint) + new_w`.
                    let harmless = match (da, db) {
                        (Some(a), Some(b)) => a + d.new_w >= b && b + d.new_w >= a,
                        (Some(a), None) => a + d.new_w >= rec.knn_dist,
                        (None, Some(b)) => b + d.new_w >= rec.knn_dist,
                        // No verified endpoint: strictly beyond kNN_dist.
                        (None, None) => true,
                    };
                    if harmless {
                        for &(obj, frac) in state.objects.on_edge(d.edge) {
                            p.objects.push((obj, Some(NetPoint::new(d.edge, frac))));
                        }
                        // The stored influencing interval is a *fraction*
                        // of the edge computed under the old weight; with a
                        // smaller weight the same fraction covers less
                        // distance, i.e. it would under-cover. Re-derive it
                        // from the tree distances and the new weight
                        // (increases over-cover, which is safe, so only
                        // decreases need this).
                        let slack = interval_slack(rec.knn_dist);
                        let mut ivs = IntervalSet::empty();
                        if let Some(a) = da {
                            let f = ((rec.knn_dist - a + slack) / d.new_w).min(1.0);
                            ivs.add(0.0, f);
                        }
                        if let Some(b) = db {
                            let f = ((rec.knn_dist - b + slack) / d.new_w).min(1.0);
                            ivs.add(1.0 - f, 1.0);
                        }
                        self.il.insert(d.edge, key, ivs);
                    } else {
                        p.dirty_tree = true;
                        let d_min = [da, db].into_iter().flatten().fold(f64::INFINITY, f64::min);
                        if d_min.is_finite() {
                            p.theta = p.theta.min(d_min + d.new_w);
                        }
                    }
                } else if let Some(child) =
                    rec.tree.link_child_of_edge(&self.pool, &self.net, d.edge)
                {
                    // Increase of a tree link: the subtree below it may be
                    // reachable on cheaper alternate paths (§4.4).
                    p.cuts.push(child);
                    p.dirty_tree = true;
                } else {
                    // Increase of a non-link edge: no shortest path used
                    // it, so the tree is untouched; only the objects on the
                    // edge drift away.
                    for &(obj, frac) in state.objects.on_edge(d.edge) {
                        p.objects.push((obj, Some(NetPoint::new(d.edge, frac))));
                    }
                }
            }
        }

        // ---- Lines 16-19: object updates, classified via influence lists.
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut affected_buf: Vec<AnchorKey> = Vec::new();
        for d in objects {
            affected_buf.clear();
            if self.use_influence_lists {
                if let Some(old) = d.old {
                    affected_buf.extend(self.il.covering(old.edge, old.frac));
                }
                if let Some(new) = d.new {
                    affected_buf.extend(self.il.covering(new.edge, new.frac));
                }
            } else {
                affected_buf.extend(self.anchors.keys().copied());
            }
            if affected_buf.is_empty() {
                counters.updates_ignored += 1;
                continue;
            }
            // Deterministic order, duplicates dropped (an anchor may cover
            // both the old and the new position).
            affected_buf.sort_unstable();
            affected_buf.dedup();
            for &key in &affected_buf {
                let p = pending.entry(key).or_default();
                if !p.full {
                    p.objects.push((d.id, d.new));
                }
            }
        }

        // ---- Lines 20-26: resolve every affected anchor.
        // lint: allow(hot-path-alloc): runs only on the update/resync slow path, never on the per-tick serve path; charged to alloc_events under the runtime zero-alloc gate
        let changed_edges: FxHashSet<rnn_roadnet::EdgeId> = edges.iter().map(|d| d.edge).collect();
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut changed = Vec::new();
        // lint: allow(hot-path-alloc): runs only on the update/resync slow path, never on the per-tick serve path; charged to alloc_events under the runtime zero-alloc gate
        let mut keys: Vec<AnchorKey> = pending.keys().copied().collect();
        keys.sort();

        // Shared multi-k expansion: anchors that need a *from-scratch*
        // recomputation this tick and sit at bit-identical roots run ONE
        // expansion at the group's largest k; every member is served from
        // that outcome (its own top-k prefix plus the tree pruned to its
        // own kNN_dist — exactly what an independent expansion returns).
        // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
        let mut group_of: FxHashMap<AnchorKey, usize> = FxHashMap::default();
        {
            // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
            let mut by_root: FxHashMap<(u8, u32, u64), Vec<AnchorKey>> = FxHashMap::default();
            for &key in &keys {
                let work = &pending[&key];
                if !work.full {
                    continue;
                }
                let Some(rec) = self.anchors.get(&key) else {
                    continue;
                };
                let root = work.moved_root.unwrap_or(rec.root);
                by_root.entry(root_group_key(root)).or_default().push(key);
            }
            let mut group_members: Vec<Vec<AnchorKey>> =
                // lint: allow(hot-path-alloc): runs only on the update/resync slow path, never on the per-tick serve path; charged to alloc_events under the runtime zero-alloc gate
                by_root.into_values().filter(|m| m.len() >= 2).collect();
            // Deterministic expansion order (counters, engine epochs).
            group_members.sort_by_key(|m| m[0]);
            for members in group_members {
                let first = members[0];
                let root = pending[&first]
                    .moved_root
                    .unwrap_or(self.anchors[&first].root);
                let k_max = members
                    .iter()
                    .map(|k| self.anchors[k].k)
                    .max()
                    .expect("non-empty group");
                let ctx = SearchContext {
                    net: &self.net,
                    weights: &state.weights,
                    objects: &state.objects,
                };
                counters.reevaluations += 1;
                counters.shared_expansions += members.len() as u64 - 1;
                let steps0 = self.engine.expansion_steps();
                let out = knn_search(
                    &ctx,
                    &mut self.engine,
                    &mut self.best,
                    &mut self.pool,
                    root,
                    k_max,
                    None,
                    &[],
                    &mut counters,
                );
                charge_cell(
                    &self.net,
                    &mut self.cell_charges,
                    root,
                    self.engine.expansion_steps() - steps0,
                );
                let idx = self.shared_outcomes.len();
                self.shared_outcomes.push(out);
                for key in members {
                    group_of.insert(key, idx);
                }
            }
        }

        for key in keys {
            let work = pending.remove(&key).expect("key from map");
            let Some(rec) = self.anchors.get_mut(&key) else {
                continue;
            };
            let old_result = std::mem::take(&mut rec.result);
            let did_change = if let Some(&gi) = group_of.get(&key) {
                serve_from_shared(
                    &self.net,
                    state,
                    &mut self.pool,
                    key,
                    rec,
                    &self.shared_outcomes[gi],
                    work.moved_root,
                    &old_result,
                    &mut self.il,
                    &mut counters,
                )
            } else {
                resolve_anchor(
                    &self.net,
                    state,
                    &mut self.engine,
                    &mut self.best,
                    &mut self.pool,
                    &mut self.cell_charges,
                    key,
                    rec,
                    work,
                    &old_result,
                    &changed_edges,
                    &mut self.il,
                    &mut counters,
                )
            };
            if did_change {
                changed.push(key);
            }
        }
        for out in self.shared_outcomes.drain(..) {
            self.pool.release(out.tree);
        }

        counters.alloc_events += self.engine.take_alloc_events()
            + self.il.take_alloc_events()
            + self.best.take_alloc_events()
            + self.pool.take_alloc_events();
        counters.expansion_steps += self.engine.take_expansion_steps();
        counters.tree_nodes_recycled += self.pool.take_recycled();
        AnchorTickOutcome { changed, counters }
    }

    /// The anchors whose influencing intervals cover `(edge, frac)` —
    /// exactly the set an object update at that position would be checked
    /// against. Exposed for tests and debugging.
    pub fn covering(&self, edge: EdgeId, frac: f64) -> Vec<AnchorKey> {
        // lint: allow(hot-path-alloc): covering() is materialized only for install/resync callers, not per tick; charged to alloc_events under the runtime gate
        self.il.covering(edge, frac).collect()
    }

    /// The influence-list entries on `edge` (anchor, intervals). Exposed
    /// for tests and debugging.
    pub fn influence_on_edge(&self, edge: EdgeId) -> &[(AnchorKey, IntervalSet)] {
        self.il.on_edge(edge)
    }

    /// Validates the structural invariants of every anchor (tests and
    /// debugging):
    ///
    /// * expansion-tree links and distances are consistent,
    /// * every tree distance equals the true network distance from the root
    ///   (verified with an independent Dijkstra),
    /// * results are sorted and `knn_dist` matches the k-th entry,
    /// * every result distance equals the true root→object distance.
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    pub fn validate(&mut self, state: &NetworkState) {
        // Pool hygiene: every slab slot is owned by exactly one live tree
        // (no leaks from dropped handles, no double-frees).
        let owned: usize = self.anchors.values().map(|r| r.tree.len()).sum();
        assert_eq!(
            self.pool.live_nodes(),
            owned,
            "tree pool leaked slots: {} live vs {} owned by anchors",
            self.pool.live_nodes(),
            owned
        );
        // lint: allow(hot-path-alloc): validate() is a debug/consistency helper, never on the tick path
        let keys: Vec<AnchorKey> = self.anchors.keys().copied().collect();
        for key in keys {
            let rec = &self.anchors[&key];
            self.pool
                .check_invariants(&rec.tree, &self.net, &state.weights);
            // Results sorted, deduplicated, and knn_dist consistent.
            for w in rec.result.windows(2) {
                assert!(
                    w[0].sort_key() <= w[1].sort_key(),
                    "result not sorted for {key:?}"
                );
                assert_ne!(w[0].object, w[1].object, "duplicate object in result");
            }
            if rec.result.len() == rec.k {
                assert_eq!(rec.knn_dist, rec.result[rec.k - 1].dist);
            } else {
                assert!(rec.result.len() < rec.k);
                assert_eq!(rec.knn_dist, f64::INFINITY);
            }
            // Tree distances are true shortest distances from the root.
            // The tree may legitimately extend beyond the current kNN_dist
            // (shrinks skip re-tightening), so bound the oracle expansion
            // by the deepest tree node instead.
            let deepest = rec
                .tree
                .iter(&self.pool)
                .map(|(_, d)| d)
                .fold(rec.knn_dist.min(1e300), f64::max);
            self.engine.begin();
            match rec.root {
                RootPos::Node(n) => self.engine.seed(n, 0.0, None),
                RootPos::Point(p) => {
                    let e = self.net.edge(p.edge);
                    self.engine
                        .seed(e.start, p.dist_to_start(&state.weights), None);
                    self.engine.seed(e.end, p.dist_to_end(&state.weights), None);
                }
            }
            while let Some((n, d)) = self.engine.pop_settle() {
                if d > deepest * (1.0 + 1e-9) + 1e-9 {
                    break;
                }
                for &(e, m) in self.net.adjacent(n) {
                    self.engine.relax(m, n, d + state.weights.get(e));
                }
            }
            for (n, d) in rec.tree.iter(&self.pool) {
                let truth = self.engine.dist_of(n).expect("tree node reachable");
                assert!(
                    (d - truth).abs() <= 1e-9 * truth.max(1.0),
                    "stale tree distance at {n:?} for {key:?}: {} vs {}",
                    d,
                    truth
                );
            }
            // Result distances are true distances.
            for nb in &rec.result {
                let pos = state
                    .objects
                    .position(nb.object)
                    .expect("result object exists");
                let truth = self.engine.dist_between_points(
                    &self.net,
                    &state.weights,
                    match rec.root {
                        RootPos::Point(p) => p,
                        RootPos::Node(n) => {
                            rnn_roadnet::NetPoint::at_node(&self.net, n).expect("non-isolated")
                        }
                    },
                    pos,
                );
                assert!(
                    (nb.dist - truth).abs() <= 1e-9 * truth.max(1.0),
                    "wrong result distance for {:?} at {key:?}: {} vs {}",
                    nb.object,
                    nb.dist,
                    truth
                );
            }
        }
    }

    /// Total resident bytes of trees, influence lists and anchor records.
    /// Tree bytes cover the shared node slab (pool) plus each anchor's
    /// directory handle.
    pub fn memory_breakdown(&self) -> (usize, usize, usize) {
        let mut trees = self.pool.memory_bytes();
        let mut table = 0;
        for rec in self.anchors.values() {
            trees += rec.tree.memory_bytes();
            table += std::mem::size_of::<AnchorRec>()
                + rec.result.capacity() * std::mem::size_of::<Neighbor>()
                + rec.influenced.capacity() * std::mem::size_of::<EdgeId>();
        }
        (table, trees, self.il.memory_bytes())
    }

    /// Scratch (Dijkstra engine + candidate dedup table) bytes.
    pub fn scratch_bytes(&self) -> usize {
        self.engine.memory_bytes() + self.best.memory_bytes()
    }
}

/// Writes a search outcome into an anchor record, returning the record's
/// previous tree to the pool.
fn store_outcome(pool: &mut TreePool, rec: &mut AnchorRec, out: SearchOutcome) {
    rec.result = out.result;
    rec.knn_dist = out.knn_dist;
    let old = std::mem::replace(&mut rec.tree, out.tree);
    pool.release(old);
}

/// Records `steps` of expansion work against the partition cell (edge) of
/// the expansion root: the root's own edge for point roots, the first
/// adjacent edge for node roots (GMA's active intersections). Deterministic
/// and allocation-free in steady state (the buffer keeps its capacity).
fn charge_cell(net: &RoadNetwork, charges: &mut Vec<(EdgeId, u64)>, root: RootPos, steps: u64) {
    if steps == 0 {
        return;
    }
    let cell = match root {
        RootPos::Point(p) => Some(p.edge),
        RootPos::Node(n) => net.adjacent(n).first().map(|&(e, _)| e),
    };
    if let Some(e) = cell {
        charges.push((e, steps));
    }
}

/// Hashable identity of a root position. Point roots group only on
/// bit-identical fractions — the precondition for two expansions being the
/// same expansion.
fn root_group_key(root: RootPos) -> (u8, u32, u64) {
    match root {
        RootPos::Node(n) => (0, n.0, 0),
        RootPos::Point(p) => (1, p.edge.0, p.frac.to_bits()),
    }
}

/// Serves one anchor of a root group from the group's shared multi-k
/// expansion: its result is the top-`k` prefix of the shared result (the
/// top-`k` of a top-`k_max` is the top-`k`), and its tree is the shared
/// tree pruned to its own `kNN_dist` — the region an independent expansion
/// would have verified. Returns whether the reported result changed.
#[allow(clippy::too_many_arguments)]
fn serve_from_shared(
    net: &Arc<RoadNetwork>,
    state: &NetworkState,
    pool: &mut TreePool,
    key: AnchorKey,
    rec: &mut AnchorRec,
    out: &SearchOutcome,
    moved_root: Option<RootPos>,
    old_result: &[Neighbor],
    il: &mut InfluenceTable<AnchorKey>,
    counters: &mut OpCounters,
) -> bool {
    if let Some(r) = moved_root {
        rec.root = r;
    }
    let take = rec.k.min(out.result.len());
    // lint: allow(hot-path-alloc): result materialization happens only when a shared outcome changes a query's answer; charged to alloc_events, pinned at zero in steady state
    rec.result = out.result[..take].to_vec();
    rec.knn_dist = if take == rec.k {
        rec.result[rec.k - 1].dist
    } else {
        f64::INFINITY
    };
    // Copy in place: the member's own cleared tree (slots + directory)
    // absorbs the shared outcome, so serving a group member never touches
    // the spare stack.
    let mut tree = std::mem::take(&mut rec.tree);
    pool.clone_into(&mut tree, &out.tree);
    rec.tree = tree;
    counters.tree_nodes_pruned += pool.retain_within(&mut rec.tree, rec.knn_dist) as u64;
    rebuild_influence(net, state, pool, key, rec, il);
    results_differ(old_result, &rec.result)
}

/// Whether `new_root` falls inside the anchor's current expansion-tree
/// region (§4.3: "if q′ falls in some edge of q.tree" — including partial
/// edges, detected via the tree distances of the edge endpoints).
fn root_within_tree(net: &RoadNetwork, rec: &AnchorRec, new_root: RootPos) -> bool {
    match new_root {
        RootPos::Node(n) => rec.tree.contains(n),
        RootPos::Point(p) => {
            // Within the old root's own edge is always "inside".
            if rec.root.edge() == Some(p.edge) {
                return true;
            }
            let erec = net.edge(p.edge);
            rec.tree.contains(erec.start) || rec.tree.contains(erec.end)
        }
    }
}

/// §4.3: the part of the tree that remains valid when the root moves to
/// `new_root`. Returns `(subtree root, distance shift)`, or `None` when
/// nothing survives (recompute from scratch).
fn valid_subtree_after_move(
    net: &RoadNetwork,
    weights: &rnn_roadnet::EdgeWeights,
    pool: &TreePool,
    rec: &AnchorRec,
    new_root: RootPos,
) -> Option<(NodeId, f64)> {
    let RootPos::Point(p) = new_root else {
        return None; // node-rooted anchors never move
    };
    let w = weights.get(p.edge);
    if let RootPos::Point(op) = rec.root {
        if op.edge == p.edge {
            // Moving along the root edge: the branch on the far side of q′
            // (in the movement direction) stays valid.
            let toward = if p.frac > op.frac {
                net.edge(p.edge).end
            } else if p.frac < op.frac {
                net.edge(p.edge).start
            } else {
                return None; // no net movement; caller treats as recompute
            };
            let shift = (p.frac - op.frac).abs() * w;
            // Only if that branch hangs directly off the root (it may have
            // been reached around the network instead).
            if rec.tree.parent_of(pool, toward)?.is_none() {
                return Some((toward, shift));
            }
            return None;
        }
    }
    // q′ on a tree-link edge: the subtree rooted at the child side stays
    // valid, shifted by the old distance of q′.
    let child = rec.tree.link_child_of_edge(pool, net, p.edge)?;
    let (parent, _) = rec.tree.parent_of(pool, child)??;
    let along = rnn_roadnet::NetPoint {
        edge: p.edge,
        frac: p.frac,
    }
    .dist_to_endpoint(net, weights, parent);
    let d_old_q = rec.tree.dist(pool, parent)? + along;
    Some((child, d_old_q))
}

/// Applies pending work to one anchor and refreshes its result, reusing the
/// surviving tree. Returns whether the reported result changed.
#[allow(clippy::too_many_arguments)]
fn resolve_anchor(
    net: &Arc<RoadNetwork>,
    state: &NetworkState,
    engine: &mut DijkstraEngine,
    best: &mut BestK,
    pool: &mut TreePool,
    cell_charges: &mut Vec<(EdgeId, u64)>,
    key: AnchorKey,
    rec: &mut AnchorRec,
    work: Pending,
    old_result: &[Neighbor],
    changed_edges: &FxHashSet<rnn_roadnet::EdgeId>,
    il: &mut InfluenceTable<AnchorKey>,
    counters: &mut OpCounters,
) -> bool {
    let ctx = SearchContext {
        net,
        weights: &state.weights,
        objects: &state.objects,
    };

    if work.full {
        if let Some(r) = work.moved_root {
            rec.root = r;
        }
        counters.reevaluations += 1;
        // Hand the invalidated tree to the search *cleared*: an empty kept
        // tree behaves exactly like a from-scratch expansion, but the
        // anchor's own slots and directory serve the recomputation
        // directly — no spare-stack round-trip, no allocation.
        let mut tree = std::mem::take(&mut rec.tree);
        counters.tree_nodes_pruned += pool.clear(&mut tree) as u64;
        let steps0 = engine.expansion_steps();
        let out = knn_search(
            &ctx,
            engine,
            best,
            pool,
            rec.root,
            rec.k,
            Some(KeptTree::full(tree)),
            &[],
            counters,
        );
        charge_cell(
            net,
            cell_charges,
            rec.root,
            engine.expansion_steps() - steps0,
        );
        store_outcome(pool, rec, out);
        rebuild_influence(net, state, pool, key, rec, il);
        return results_differ(old_result, &rec.result);
    }

    // kNN_dist of the last structural rebuild: the selective re-scan rule
    // is stated relative to the region the tree/intervals were built for.
    let old_knn = rec.knn_dist;
    // Coverage radius for the selective re-scan. Re-rooting shifts every
    // kept distance down by the old distance of the new root, so the
    // radius must shift identically for the "strictly fully covered" test
    // to keep referring to the *old* region.
    let mut coverage_knn = old_knn;
    let mut dirty = work.dirty_tree;

    // Tree surgery from edge updates — pointer unlinks and free-list
    // pushes in the shared pool, no heap traffic.
    if work.theta < f64::INFINITY {
        counters.tree_nodes_pruned += pool.retain_within(&mut rec.tree, work.theta) as u64;
    }
    for c in &work.cuts {
        counters.tree_nodes_pruned += pool.remove_subtree(&mut rec.tree, *c) as u64;
    }

    // Root movement within the tree (queries only).
    if let Some(new_root) = work.moved_root {
        match valid_subtree_after_move(net, &state.weights, pool, rec, new_root) {
            Some((sub, shift)) => {
                counters.tree_nodes_pruned +=
                    pool.reroot_at_subtree(&mut rec.tree, sub, shift) as u64;
                coverage_knn -= shift;
            }
            None => {
                counters.tree_nodes_pruned += pool.clear(&mut rec.tree) as u64;
            }
        }
        rec.root = new_root;
        dirty = true;
    }

    // Survivor candidates: previous NNs (and any incoming objects), with
    // distances re-derived from the surviving tree under current weights.
    // `dist_via_tree` only produces achievable path lengths, so a stale
    // survivor can never rank better than the truth; objects whose optimal
    // path now runs through re-expanded territory are re-found exactly by
    // the expansion itself.
    // lint: allow(hot-path-alloc): anchor resolution runs at install/resync time, not per tick; tracked as install_alloc_events
    let touched: FxHashSet<ObjectId> = work.objects.iter().map(|&(id, _)| id).collect();
    let mut candidates: Vec<Neighbor> = Vec::with_capacity(old_result.len() + work.objects.len());
    for n in old_result {
        if touched.contains(&n.object) {
            continue;
        }
        if dirty {
            // Stored distance may be stale — re-derive (exact within the
            // kept region, a safe over-estimate outside it).
            if let Some(p) = state.objects.position(n.object) {
                let d = dist_via_tree(net, &state.weights, pool, &rec.tree, rec.root, p);
                counters.objects_considered += 1;
                if d.is_finite() {
                    candidates.push(Neighbor {
                        object: n.object,
                        dist: d,
                    });
                }
            }
        } else {
            candidates.push(*n);
        }
    }
    let slack = interval_slack(old_knn);
    for &(id, new_pos) in &work.objects {
        let Some(p) = new_pos else { continue };
        let d = dist_via_tree(net, &state.weights, pool, &rec.tree, rec.root, p);
        counters.objects_considered += 1;
        if dirty {
            if d.is_finite() {
                candidates.push(Neighbor {
                    object: id,
                    dist: d,
                });
            }
        } else if d <= old_knn + slack {
            candidates.push(Neighbor {
                object: id,
                dist: d,
            });
        }
    }
    sort_neighbors(&mut candidates);
    candidates.dedup_by_key(|n| n.object);

    if !dirty && candidates.len() >= rec.k {
        // Object-only fast path (§4.2) with outgoing ≤ incoming: at least k
        // objects within the old kNN_dist, and the tree is intact so every
        // candidate distance above is exact.
        candidates.truncate(rec.k);
        let new_knn = candidates[rec.k - 1].dist;
        rec.result = candidates;
        rec.knn_dist = new_knn;
        // The tree and the influence intervals are deliberately *not*
        // shrunk here even though kNN_dist may have decreased: a too-wide
        // influence region is always safe (it can only cause a spurious
        // affected-check later), and skipping the rebuild makes the §4.2
        // fast path allocation-free. The next structural re-expansion
        // re-tightens both.
        return results_differ(old_result, &rec.result);
    }

    // Structural case (tree surgery and/or result underflow): re-expand
    // from the surviving tree. Kept-region edges strictly inside the old
    // result region need no re-scan — their objects are all among the
    // survivor candidates (see `KeptTree::selective`).
    counters.reevaluations += 1;
    let tree = std::mem::take(&mut rec.tree);
    let kept = if tree.is_empty() {
        pool.release(tree);
        None
    } else {
        Some(KeptTree {
            tree,
            selective: Some((coverage_knn, changed_edges)),
        })
    };
    let steps0 = engine.expansion_steps();
    let out = knn_search(
        &ctx,
        engine,
        best,
        pool,
        rec.root,
        rec.k,
        kept,
        &candidates,
        counters,
    );
    charge_cell(
        net,
        cell_charges,
        rec.root,
        engine.expansion_steps() - steps0,
    );
    store_outcome(pool, rec, out);
    rebuild_influence(net, state, pool, key, rec, il);
    results_differ(old_result, &rec.result)
}

fn results_differ(a: &[Neighbor], b: &[Neighbor]) -> bool {
    a.len() != b.len()
        || a.iter()
            .zip(b)
            .any(|(x, y)| x.object != y.object || x.dist != y.dist)
}

/// Relative widening applied to influencing intervals so that an entity
/// sitting *exactly* at distance `kNN_dist` (e.g. the k-th NN itself) is
/// always inside them despite float rounding when deriving mark fractions.
/// Over-covering is safe: it can only cause a spurious re-check, never a
/// missed update.
pub(crate) fn interval_slack(knn_dist: f64) -> f64 {
    if knn_dist.is_finite() {
        1e-9 * knn_dist.max(1.0)
    } else {
        0.0
    }
}

/// Rebuilds the influence-list entries of one anchor from its tree and
/// kNN_dist (§3: intervals where the network distance is below kNN_dist).
fn rebuild_influence(
    net: &RoadNetwork,
    state: &NetworkState,
    pool: &TreePool,
    key: AnchorKey,
    rec: &mut AnchorRec,
    il: &mut InfluenceTable<AnchorKey>,
) {
    for e in rec.influenced.drain(..) {
        il.remove(e, key);
    }
    let slack = interval_slack(rec.knn_dist);
    // Collect one (edge, interval) pair per tree-adjacent half-edge, then
    // merge by edge id with a sort — cheaper than a hash map for the few
    // dozen entries a tree produces.
    let mut pairs: Vec<(EdgeId, IntervalSet)> = Vec::with_capacity(rec.tree.len() * 3 + 1);
    for (n, dist) in rec.tree.iter(pool) {
        let reach = rec.knn_dist - dist + slack;
        if reach < 0.0 {
            continue;
        }
        for &(e, _) in net.adjacent(n) {
            let w = state.weights.get(e);
            let f = (reach / w).min(1.0);
            let ivs = if net.edge(e).start == n {
                IntervalSet::single(0.0, f)
            } else {
                IntervalSet::single(1.0 - f, 1.0)
            };
            pairs.push((e, ivs));
        }
    }
    if let RootPos::Point(p) = rec.root {
        let w = state.weights.get(p.edge);
        let r = (rec.knn_dist + slack) / w;
        pairs.push((p.edge, IntervalSet::single(p.frac - r, p.frac + r)));
    }
    pairs.sort_unstable_by_key(|&(e, _)| e);
    let mut i = 0;
    while i < pairs.len() {
        let (e, mut ivs) = pairs[i];
        i += 1;
        while i < pairs.len() && pairs[i].0 == e {
            for &(lo, hi) in pairs[i].1.intervals() {
                ivs.add(lo, hi);
            }
            i += 1;
        }
        if !ivs.is_empty() {
            il.insert(e, key, ivs);
            rec.influenced.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NetworkState;
    use crate::types::{EdgeWeightUpdate, ObjectEvent, UpdateBatch};
    use rnn_roadnet::{generators, NetPoint};

    /// Line of 6 nodes (5 edges, unit weights), objects at edge midpoints.
    fn setup() -> (Arc<RoadNetwork>, NetworkState, AnchorSet) {
        let net = Arc::new(generators::line_network(6, 1.0));
        let mut state = NetworkState::new(&net);
        for e in net.edge_ids() {
            state.objects.insert(ObjectId(e.0), NetPoint::new(e, 0.5));
        }
        let set = AnchorSet::new(net.clone());
        (net, state, set)
    }

    fn tick_batch(
        set: &mut AnchorSet,
        state: &mut NetworkState,
        batch: UpdateBatch,
    ) -> AnchorTickOutcome {
        let deltas = state.apply_batch(&batch);
        set.tick(state, &deltas.objects, &deltas.edges, &[])
    }

    #[test]
    fn add_and_remove_anchor() {
        let (_, state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            2,
            &mut c,
        );
        assert_eq!(set.len(), 1);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.result.len(), 2);
        assert_eq!(rec.result[0].dist, 0.0); // object 2 sits at the root
        assert!(!rec.influenced.is_empty());
        assert!(set.remove(key));
        assert!(set.is_empty());
        assert!(!set.remove(key));
    }

    #[test]
    fn irrelevant_object_update_is_ignored() {
        let (_, mut state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(0), 0.5)),
            1,
            &mut c,
        );
        let before = set.get(key).unwrap().result.clone();
        // Move the far object slightly — far outside knn_dist of the anchor.
        let out = tick_batch(
            &mut set,
            &mut state,
            UpdateBatch {
                objects: vec![ObjectEvent::Move {
                    id: ObjectId(4),
                    to: NetPoint::new(EdgeId(4), 0.9),
                }],
                ..Default::default()
            },
        );
        assert!(out.changed.is_empty());
        assert!(out.counters.updates_ignored >= 1);
        assert_eq!(set.get(key).unwrap().result, before);
    }

    #[test]
    fn incoming_object_replaces_nn() {
        let (_, mut state, mut set) = setup();
        let mut c = OpCounters::default();
        // 1-NN anchored at x=2.5 (middle of edge 2): NN is object 2 (d=0).
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            1,
            &mut c,
        );
        assert_eq!(set.get(key).unwrap().result[0].object, ObjectId(2));
        // Object 2 leaves; object 1 moves right next to the query.
        let out = tick_batch(
            &mut set,
            &mut state,
            UpdateBatch {
                objects: vec![
                    ObjectEvent::Move {
                        id: ObjectId(2),
                        to: NetPoint::new(EdgeId(4), 0.5),
                    },
                    ObjectEvent::Move {
                        id: ObjectId(1),
                        to: NetPoint::new(EdgeId(2), 0.4),
                    },
                ],
                ..Default::default()
            },
        );
        assert_eq!(out.changed, vec![key]);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.result[0].object, ObjectId(1));
        assert!((rec.result[0].dist - 0.1).abs() < 1e-12);
    }

    #[test]
    fn outgoing_object_triggers_re_expansion() {
        let (_, mut state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            2,
            &mut c,
        );
        // NNs: o2 (0.0) and one of o1/o3 (1.0 each, o1 wins by id).
        let out = tick_batch(
            &mut set,
            &mut state,
            UpdateBatch {
                objects: vec![ObjectEvent::Delete { id: ObjectId(2) }],
                ..Default::default()
            },
        );
        assert_eq!(out.changed, vec![key]);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.result.len(), 2);
        // New 2-NN set: o1 and o3 at distance 1 each.
        assert_eq!(rec.result[0].object, ObjectId(1));
        assert_eq!(rec.result[1].object, ObjectId(3));
        assert!((rec.knn_dist - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_increase_invalidates_subtree() {
        let (net, mut state, mut set) = setup();
        let mut c = OpCounters::default();
        // 2-NN at x=0.25 (edge 0): result o0 (0.25), o1 (1.25).
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(0), 0.25)),
            2,
            &mut c,
        );
        let rec = set.get(key).unwrap();
        assert!((rec.knn_dist - 1.25).abs() < 1e-12);
        // Make edge 1 (between o0 and o1) heavier: o1 drifts from 1.25
        // (0.75 to node 1 plus half the unit edge) to 0.75 + 0.9 = 1.65.
        let out = tick_batch(
            &mut set,
            &mut state,
            UpdateBatch {
                edges: vec![EdgeWeightUpdate {
                    edge: EdgeId(1),
                    new_weight: 1.8,
                }],
                ..Default::default()
            },
        );
        assert_eq!(out.changed, vec![key]);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.result[0].object, ObjectId(0));
        assert_eq!(rec.result[1].object, ObjectId(1));
        assert!(
            (rec.result[1].dist - 1.65).abs() < 1e-12,
            "dist {}",
            rec.result[1].dist
        );
        set.pool.check_invariants(&rec.tree, &net, &state.weights);
    }

    #[test]
    fn edge_decrease_pulls_in_new_nn() {
        let (net, mut state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(0), 0.25)),
            2,
            &mut c,
        );
        // Shrink edge 1 drastically: o1 comes to 0.75 + 0.1/2 ... -> closer.
        let out = tick_batch(
            &mut set,
            &mut state,
            UpdateBatch {
                edges: vec![EdgeWeightUpdate {
                    edge: EdgeId(1),
                    new_weight: 0.1,
                }],
                ..Default::default()
            },
        );
        assert_eq!(out.changed, vec![key]);
        let rec = set.get(key).unwrap();
        // o0 at 0.25; o1 at 0.75 + 0.05 = 0.8.
        assert!(
            (rec.result[1].dist - 0.8).abs() < 1e-12,
            "dist {}",
            rec.result[1].dist
        );
        set.pool.check_invariants(&rec.tree, &net, &state.weights);
    }

    #[test]
    fn root_edge_weight_change_forces_recompute_and_is_correct() {
        let (_, mut state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            2,
            &mut c,
        );
        let out = tick_batch(
            &mut set,
            &mut state,
            UpdateBatch {
                edges: vec![EdgeWeightUpdate {
                    edge: EdgeId(2),
                    new_weight: 4.0,
                }],
                ..Default::default()
            },
        );
        assert_eq!(out.changed, vec![key]);
        let rec = set.get(key).unwrap();
        // o2 still on root edge at |0.5-0.5|*4=0; second NN now at
        // 2.0 (half of root edge) + 0.5 = 2.5 on either side.
        assert!((rec.result[0].dist - 0.0).abs() < 1e-12);
        assert!((rec.result[1].dist - 2.5).abs() < 1e-12);
    }

    #[test]
    fn root_move_within_tree_reuses_subtree() {
        let (net, mut state, mut set) = setup();
        let mut c = OpCounters::default();
        // 3-NN at edge 2 center: tree spans nodes 1..4 (knn=2 gives ±2).
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            3,
            &mut c,
        );
        let new_root = RootPos::Point(NetPoint::new(EdgeId(3), 0.25));
        let deltas = crate::state::CoalescedTick::default();
        let out = set.tick(&state, &deltas.objects, &deltas.edges, &[(key, new_root)]);
        assert_eq!(out.changed, vec![key]);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.root, new_root);
        // From x=3.25: o3 at 0.25, o2 at 0.75, o4 at 1.25.
        assert_eq!(rec.result[0].object, ObjectId(3));
        assert!((rec.result[0].dist - 0.25).abs() < 1e-12);
        assert_eq!(rec.result[1].object, ObjectId(2));
        assert!((rec.result[1].dist - 0.75).abs() < 1e-12);
        assert_eq!(rec.result[2].object, ObjectId(4));
        assert!((rec.result[2].dist - 1.25).abs() < 1e-12);
        set.pool.check_invariants(&rec.tree, &net, &state.weights);
        let _ = state.apply_batch(&UpdateBatch::default());
    }

    #[test]
    fn root_move_outside_tree_recomputes() {
        let (_, state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(0), 0.5)),
            1,
            &mut c,
        );
        // Move clear across the network.
        let new_root = RootPos::Point(NetPoint::new(EdgeId(4), 0.5));
        let deltas = crate::state::CoalescedTick::default();
        let out = set.tick(&state, &deltas.objects, &deltas.edges, &[(key, new_root)]);
        assert_eq!(out.changed, vec![key]);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.result[0].object, ObjectId(4));
        assert_eq!(rec.result[0].dist, 0.0);
    }

    #[test]
    fn set_k_grow_and_shrink() {
        let (_, state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            1,
            &mut c,
        );
        set.set_k(&state, key, 3, &mut c);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.result.len(), 3);
        assert_eq!(rec.k, 3);
        assert!((rec.knn_dist - 1.0).abs() < 1e-12);
        set.set_k(&state, key, 2, &mut c);
        let rec = set.get(key).unwrap();
        assert_eq!(rec.result.len(), 2);
        // No-op change.
        set.set_k(&state, key, 2, &mut c);
        assert_eq!(set.get(key).unwrap().result.len(), 2);
    }

    #[test]
    fn co_rooted_full_recomputes_share_one_expansion() {
        let (_, state, mut set) = setup();
        let mut c = OpCounters::default();
        let p0 = RootPos::Point(NetPoint::new(EdgeId(0), 0.25));
        let a = set.add(&state, p0, 1, &mut c);
        let b = set.add(&state, p0, 2, &mut c);
        // Jump both clear across the network to the same new point: both
        // need a from-scratch recomputation at the same root.
        let to = RootPos::Point(NetPoint::new(EdgeId(4), 0.75));
        let deltas = crate::state::CoalescedTick::default();
        let out = set.tick(&state, &deltas.objects, &deltas.edges, &[(a, to), (b, to)]);
        assert_eq!(
            out.counters.shared_expansions, 1,
            "two co-rooted recomputes must share one expansion"
        );
        assert_eq!(
            out.counters.reevaluations, 1,
            "only the group expansion runs"
        );
        // Answers equal fresh independent installs at the same point.
        let mut oracle = AnchorSet::new(set.network().clone());
        let oa = oracle.add(&state, to, 1, &mut c);
        let ob = oracle.add(&state, to, 2, &mut c);
        assert_eq!(set.get(a).unwrap().result, oracle.get(oa).unwrap().result);
        assert_eq!(set.get(b).unwrap().result, oracle.get(ob).unwrap().result);
        assert_eq!(
            set.get(a).unwrap().knn_dist,
            oracle.get(oa).unwrap().knn_dist
        );
        assert_eq!(
            set.get(b).unwrap().knn_dist,
            oracle.get(ob).unwrap().knn_dist
        );
        set.validate(&state);
    }

    #[test]
    fn node_rooted_anchor() {
        let (_, state, mut set) = setup();
        let mut c = OpCounters::default();
        let key = set.add(&state, RootPos::Node(NodeId(3)), 2, &mut c);
        let rec = set.get(key).unwrap();
        // From node 3 (x=3): o2 and o3 both at 0.5.
        assert!((rec.result[0].dist - 0.5).abs() < 1e-12);
        assert!((rec.result[1].dist - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ablation_no_influence_lists_matches_results() {
        let (_, mut state, mut set) = setup();
        set.use_influence_lists = false;
        let mut c = OpCounters::default();
        let key = set.add(
            &state,
            RootPos::Point(NetPoint::new(EdgeId(2), 0.5)),
            2,
            &mut c,
        );
        let out = tick_batch(
            &mut set,
            &mut state,
            UpdateBatch {
                objects: vec![ObjectEvent::Move {
                    id: ObjectId(2),
                    to: NetPoint::new(EdgeId(2), 0.45),
                }],
                ..Default::default()
            },
        );
        assert_eq!(out.changed, vec![key]);
        assert!((set.get(key).unwrap().result[0].dist - 0.05).abs() < 1e-12);
    }
}
