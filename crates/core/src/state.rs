//! **ET** (partially) — the dynamic network state shared by all monitors:
//! current edge weights and per-edge object lists (§3, edge table items
//! (iii) and (iv); endpoints and adjacency live in the immutable
//! [`RoadNetwork`], influence lists in [`crate::influence`]).
//!
//! Each monitor owns one [`NetworkState`] and applies the same
//! [`UpdateBatch`] to it, so that OVH / IMA / GMA can be driven side by side
//! from a single stream. Applying a batch also performs the paper's §4.5
//! preprocessing: multiple updates of one entity within a timestamp are
//! coalesced into a single `(first old value, last new value)` record.

use rnn_roadnet::{
    EdgeId, EdgeWeights, FxHashMap, NetPoint, ObjectId, QueryId, RoadNetwork, SpanArena,
};

use crate::types::{ObjectEvent, QueryEvent, UpdateBatch};

/// An object's position plus its index within its edge's arena span (the
/// positional back-reference that makes removal O(1) instead of a linear
/// scan of the edge list).
#[derive(Clone, Copy, Debug)]
struct ObjSlot {
    at: NetPoint,
    idx: u32,
}

/// Per-edge object lists plus the object → position table.
///
/// The per-edge lists live in one [`SpanArena`] (no per-edge `Vec`
/// allocations; steady-state ticks reuse spans), and each object's table
/// entry carries its index within its edge span, so removal is a
/// positional `swap_remove` — no scan of long edge lists.
#[derive(Clone, Debug, Default)]
pub struct ObjectIndex {
    per_edge: SpanArena<(ObjectId, f64)>,
    positions: FxHashMap<ObjectId, ObjSlot>,
}

impl ObjectIndex {
    /// Creates an index for `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        Self {
            per_edge: SpanArena::new(num_edges),
            positions: FxHashMap::default(),
        }
    }

    /// Inserts a new object. Returns `false` (and does nothing) if the id
    /// already exists.
    pub fn insert(&mut self, id: ObjectId, at: NetPoint) -> bool {
        if self.positions.contains_key(&id) {
            return false;
        }
        let idx = self.per_edge.push(at.edge.index(), (id, at.frac));
        self.positions.insert(
            id,
            ObjSlot {
                at,
                idx: idx as u32,
            },
        );
        true
    }

    /// Removes an object, returning its last position. O(1): the stored
    /// back-reference replaces the edge-list scan, and `swap_remove` fixes
    /// up the one displaced entry's back-reference.
    pub fn remove(&mut self, id: ObjectId) -> Option<NetPoint> {
        let slot = self.positions.remove(&id)?;
        let e = slot.at.edge.index();
        let removed = self.per_edge.swap_remove(e, slot.idx as usize);
        debug_assert_eq!(removed.0, id, "object list out of sync");
        if (slot.idx as usize) < self.per_edge.len_of(e) {
            let moved = self.per_edge.get(e)[slot.idx as usize].0;
            self.positions
                .get_mut(&moved)
                .expect("moved object must be registered")
                .idx = slot.idx;
        }
        Some(slot.at)
    }

    /// Moves an object, returning its previous position. Returns `None`
    /// (and does nothing) for unknown ids.
    pub fn relocate(&mut self, id: ObjectId, to: NetPoint) -> Option<NetPoint> {
        let old = self.remove(id)?;
        let idx = self.per_edge.push(to.edge.index(), (id, to.frac));
        self.positions.insert(
            id,
            ObjSlot {
                at: to,
                idx: idx as u32,
            },
        );
        Some(old)
    }

    /// Current position of `id`.
    #[inline]
    pub fn position(&self, id: ObjectId) -> Option<NetPoint> {
        self.positions.get(&id).map(|s| s.at)
    }

    /// Objects currently on edge `e`, as `(id, fraction)` pairs.
    #[inline]
    pub fn on_edge(&self, e: EdgeId) -> &[(ObjectId, f64)] {
        self.per_edge.get(e.index())
    }

    /// Number of objects in the system.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether there are no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterator over all `(id, position)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, NetPoint)> + '_ {
        self.positions.iter().map(|(&id, s)| (id, s.at))
    }

    /// Arena alloc events accumulated since the last take (backing-buffer
    /// reallocations; zero across a tick = the tick's object churn ran
    /// entirely in reused spans).
    pub fn take_alloc_events(&mut self) -> u64 {
        self.per_edge.take_alloc_events()
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.per_edge.memory_bytes()
            + self.positions.capacity()
                * (std::mem::size_of::<ObjectId>() + std::mem::size_of::<ObjSlot>())
    }
}

/// A coalesced object event with the old position resolved (§4.5
/// preprocessing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectDelta {
    /// The object.
    pub id: ObjectId,
    /// Position before the tick (`None` = the object just appeared).
    pub old: Option<NetPoint>,
    /// Position after the tick (`None` = the object disappeared).
    pub new: Option<NetPoint>,
}

/// A coalesced edge-weight change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeDelta {
    /// The edge.
    pub edge: EdgeId,
    /// Weight before the tick.
    pub old_w: f64,
    /// Weight after the tick.
    pub new_w: f64,
}

/// A coalesced query event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryDelta {
    /// The query.
    pub id: QueryId,
    /// `(k, position)` before the tick (`None` = just installed).
    pub old: Option<(usize, NetPoint)>,
    /// `(k, position)` after the tick (`None` = terminated).
    pub new: Option<(usize, NetPoint)>,
}

/// The effects of one batch after §4.5 preprocessing, with old values
/// captured *before* the state mutation.
#[derive(Clone, Debug, Default)]
pub struct CoalescedTick {
    /// Net object movements/appearances/disappearances (no-op events, e.g.
    /// insert+delete in the same tick, are dropped).
    pub objects: Vec<ObjectDelta>,
    /// Net edge weight changes (`old_w != new_w`).
    pub edges: Vec<EdgeDelta>,
    /// Net query movements/installs/removals.
    pub queries: Vec<QueryDelta>,
}

/// Dynamic network state: weights + object index.
pub struct NetworkState {
    /// Current edge weights.
    pub weights: EdgeWeights,
    /// Current object placement.
    pub objects: ObjectIndex,
    /// Registered queries: id → (k, position). Maintained here so every
    /// monitor coalesces query events identically.
    pub queries: FxHashMap<QueryId, (usize, NetPoint)>,
}

impl NetworkState {
    /// Fresh state over `net` with base weights and no objects.
    pub fn new(net: &RoadNetwork) -> Self {
        Self {
            weights: EdgeWeights::from_base(net),
            objects: ObjectIndex::new(net.num_edges()),
            queries: FxHashMap::default(),
        }
    }

    /// Applies a raw batch: coalesces per-entity events (§4.5), mutates the
    /// state, and returns the deltas (old values captured pre-mutation).
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> CoalescedTick {
        let mut out = CoalescedTick::default();

        // --- Objects: fold the event sequence per id into a final state.
        let mut obj_final: FxHashMap<ObjectId, Option<NetPoint>> = FxHashMap::default();
        let mut obj_order: Vec<ObjectId> = Vec::new();
        for ev in &batch.objects {
            let (id, new) = match *ev {
                ObjectEvent::Move { id, to } => (id, Some(to)),
                ObjectEvent::Insert { id, at } => (id, Some(at)),
                ObjectEvent::Delete { id } => (id, None),
            };
            if !obj_final.contains_key(&id) {
                obj_order.push(id);
            }
            obj_final.insert(id, new);
        }
        for id in obj_order {
            let new = obj_final[&id];
            let old = self.objects.position(id);
            match (old, new) {
                (None, None) => continue, // appeared and vanished within the tick
                (Some(o), Some(n)) if o == n => continue, // no net movement
                (None, Some(n)) => {
                    self.objects.insert(id, n);
                }
                (Some(_), Some(n)) => {
                    self.objects.relocate(id, n);
                }
                (Some(_), None) => {
                    self.objects.remove(id);
                }
            }
            out.objects.push(ObjectDelta { id, old, new });
        }

        // --- Edges: last weight wins.
        let mut edge_final: FxHashMap<EdgeId, f64> = FxHashMap::default();
        let mut edge_order: Vec<EdgeId> = Vec::new();
        for u in &batch.edges {
            if !edge_final.contains_key(&u.edge) {
                edge_order.push(u.edge);
            }
            edge_final.insert(u.edge, u.new_weight);
        }
        for e in edge_order {
            let new_w = edge_final[&e];
            let old_w = self.weights.get(e);
            if new_w == old_w {
                continue;
            }
            self.weights.set(e, new_w);
            out.edges.push(EdgeDelta {
                edge: e,
                old_w,
                new_w,
            });
        }

        // --- Queries.
        let mut qry_final: FxHashMap<QueryId, Option<(usize, NetPoint)>> = FxHashMap::default();
        let mut qry_order: Vec<QueryId> = Vec::new();
        for ev in &batch.queries {
            let (id, new) = match *ev {
                QueryEvent::Move { id, to } => {
                    // Keep current k; a move of an unknown query is invalid
                    // and will surface as (None -> Some) with k below.
                    let k = qry_final
                        .get(&id)
                        .copied()
                        .flatten()
                        .map(|(k, _)| k)
                        .or_else(|| self.queries.get(&id).map(|&(k, _)| k));
                    match k {
                        Some(k) => (id, Some((k, to))),
                        None => continue, // move of a query that never existed: drop
                    }
                }
                QueryEvent::Install { id, k, at } => (id, Some((k, at))),
                QueryEvent::Remove { id } => (id, None),
            };
            if !qry_final.contains_key(&id) {
                qry_order.push(id);
            }
            qry_final.insert(id, new);
        }
        for id in qry_order {
            let new = qry_final[&id];
            let old = self.queries.get(&id).copied();
            match (old, new) {
                (None, None) => continue,
                (Some(o), Some(n)) if o == n => continue,
                (_, Some(n)) => {
                    self.queries.insert(id, n);
                }
                (Some(_), None) => {
                    self.queries.remove(&id);
                }
            }
            out.queries.push(QueryDelta { id, old, new });
        }

        out
    }

    /// Approximate resident bytes of the dynamic state.
    pub fn memory_bytes(&self) -> usize {
        self.weights.memory_bytes()
            + self.objects.memory_bytes()
            + self.queries.capacity()
                * (std::mem::size_of::<QueryId>() + std::mem::size_of::<(usize, NetPoint)>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EdgeWeightUpdate;
    use rnn_roadnet::generators::line_network;

    fn state() -> NetworkState {
        NetworkState::new(&line_network(4, 1.0)) // 3 edges
    }

    #[test]
    fn object_lifecycle() {
        let mut s = state();
        assert!(s.objects.insert(ObjectId(1), NetPoint::new(EdgeId(0), 0.5)));
        assert!(
            !s.objects.insert(ObjectId(1), NetPoint::new(EdgeId(1), 0.5)),
            "dup insert"
        );
        assert_eq!(s.objects.len(), 1);
        assert_eq!(s.objects.on_edge(EdgeId(0)).len(), 1);

        let old = s
            .objects
            .relocate(ObjectId(1), NetPoint::new(EdgeId(2), 0.25))
            .unwrap();
        assert_eq!(old.edge, EdgeId(0));
        assert!(s.objects.on_edge(EdgeId(0)).is_empty());
        assert_eq!(s.objects.on_edge(EdgeId(2)), &[(ObjectId(1), 0.25)]);

        let last = s.objects.remove(ObjectId(1)).unwrap();
        assert_eq!(last.edge, EdgeId(2));
        assert!(s.objects.is_empty());
        assert!(s.objects.remove(ObjectId(1)).is_none());
    }

    #[test]
    fn batch_coalesces_multiple_object_moves() {
        let mut s = state();
        s.objects.insert(ObjectId(7), NetPoint::new(EdgeId(0), 0.1));
        let batch = UpdateBatch {
            objects: vec![
                ObjectEvent::Move {
                    id: ObjectId(7),
                    to: NetPoint::new(EdgeId(1), 0.5),
                },
                ObjectEvent::Move {
                    id: ObjectId(7),
                    to: NetPoint::new(EdgeId(2), 0.9),
                },
            ],
            ..Default::default()
        };
        let tick = s.apply_batch(&batch);
        assert_eq!(tick.objects.len(), 1, "two moves coalesce into one delta");
        let d = tick.objects[0];
        assert_eq!(d.old.unwrap().edge, EdgeId(0));
        assert_eq!(d.new.unwrap().edge, EdgeId(2));
        assert_eq!(s.objects.position(ObjectId(7)).unwrap().edge, EdgeId(2));
    }

    #[test]
    fn batch_insert_then_delete_is_noop() {
        let mut s = state();
        let batch = UpdateBatch {
            objects: vec![
                ObjectEvent::Insert {
                    id: ObjectId(3),
                    at: NetPoint::new(EdgeId(1), 0.5),
                },
                ObjectEvent::Delete { id: ObjectId(3) },
            ],
            ..Default::default()
        };
        let tick = s.apply_batch(&batch);
        assert!(tick.objects.is_empty());
        assert!(s.objects.is_empty());
    }

    #[test]
    fn batch_coalesces_edge_updates_and_drops_noops() {
        let mut s = state();
        let batch = UpdateBatch {
            edges: vec![
                EdgeWeightUpdate {
                    edge: EdgeId(0),
                    new_weight: 2.0,
                },
                EdgeWeightUpdate {
                    edge: EdgeId(0),
                    new_weight: 3.0,
                },
                EdgeWeightUpdate {
                    edge: EdgeId(1),
                    new_weight: 1.0,
                }, // == old
            ],
            ..Default::default()
        };
        let tick = s.apply_batch(&batch);
        assert_eq!(tick.edges.len(), 1);
        assert_eq!(
            tick.edges[0],
            EdgeDelta {
                edge: EdgeId(0),
                old_w: 1.0,
                new_w: 3.0
            }
        );
        assert_eq!(s.weights.get(EdgeId(0)), 3.0);
        assert_eq!(s.weights.get(EdgeId(1)), 1.0);
    }

    #[test]
    fn batch_query_lifecycle() {
        let mut s = state();
        let batch = UpdateBatch {
            queries: vec![QueryEvent::Install {
                id: QueryId(1),
                k: 3,
                at: NetPoint::new(EdgeId(0), 0.5),
            }],
            ..Default::default()
        };
        let tick = s.apply_batch(&batch);
        assert_eq!(tick.queries.len(), 1);
        assert!(tick.queries[0].old.is_none());
        assert_eq!(tick.queries[0].new.unwrap().0, 3);

        // Move keeps k.
        let batch = UpdateBatch {
            queries: vec![QueryEvent::Move {
                id: QueryId(1),
                to: NetPoint::new(EdgeId(2), 0.1),
            }],
            ..Default::default()
        };
        let tick = s.apply_batch(&batch);
        assert_eq!(
            tick.queries[0].new.unwrap(),
            (3, NetPoint::new(EdgeId(2), 0.1))
        );

        // Remove.
        let batch = UpdateBatch {
            queries: vec![QueryEvent::Remove { id: QueryId(1) }],
            ..Default::default()
        };
        let tick = s.apply_batch(&batch);
        assert!(tick.queries[0].new.is_none());
        assert!(s.queries.is_empty());
    }

    #[test]
    fn move_of_unknown_query_is_dropped() {
        let mut s = state();
        let batch = UpdateBatch {
            queries: vec![QueryEvent::Move {
                id: QueryId(9),
                to: NetPoint::new(EdgeId(0), 0.5),
            }],
            ..Default::default()
        };
        let tick = s.apply_batch(&batch);
        assert!(tick.queries.is_empty());
    }

    #[test]
    fn memory_accounting_nonzero() {
        let mut s = state();
        s.objects.insert(ObjectId(1), NetPoint::new(EdgeId(0), 0.5));
        assert!(s.memory_bytes() > 0);
    }
}
