//! **CRNN** — continuous *reverse* nearest-neighbor monitoring.
//!
//! §7 names this as future work:
//!
//! > "Consider a set of queries and a set of data objects moving in a
//! > network. Our task is to constantly report for each query q the set of
//! > objects that are closer to q than to any other query. As an example,
//! > consider a taxi driver who wishes to know the clients that are closer
//! > to his/her position than to any other vacant cab."
//!
//! The implementation inverts the roles and reuses the incremental
//! machinery of §4 wholesale: every *data object* becomes an anchor whose
//! **1-NN over the query set** is monitored with an expansion tree and
//! influence lists ([`crate::anchor::AnchorSet`]). An object `p` belongs to
//! `RNN(q)` exactly when its monitored nearest query is `q`, so each tick
//! only the objects whose 1-NN assignment actually changes are touched —
//! the same only-process-invalidating-updates property IMA gives k-NN
//! monitoring.

use std::sync::Arc;
use std::time::Instant;

use rnn_roadnet::{FxHashMap, FxHashSet, NetPoint, ObjectId, QueryId, RoadNetwork};

use crate::anchor::{AnchorKey, AnchorSet};
use crate::counters::{MemoryUsage, OpCounters, TickReport};
use crate::state::{NetworkState, ObjectDelta};
use crate::types::{ObjectEvent, QueryEvent, RootPos, UpdateBatch};

/// Continuous reverse-NN monitor: for every query, the set of objects whose
/// nearest query it is.
pub struct Crnn {
    #[allow(dead_code)]
    net: Arc<RoadNetwork>,
    /// Role-inverted state: `state.objects` holds the *queries* (they are
    /// the "data" being searched for), while the monitored anchors are the
    /// data objects.
    state: NetworkState,
    anchors: AnchorSet,
    by_object: FxHashMap<ObjectId, AnchorKey>,
    object_pos: FxHashMap<ObjectId, NetPoint>,
    /// Current assignment object → its nearest query.
    assignment: FxHashMap<ObjectId, QueryId>,
    /// Inverse: query → its reverse NNs.
    rnn: FxHashMap<QueryId, FxHashSet<ObjectId>>,
    query_pos: FxHashMap<QueryId, NetPoint>,
}

impl Crnn {
    /// Creates a CRNN server over `net`.
    pub fn new(net: Arc<RoadNetwork>) -> Self {
        let state = NetworkState::new(&net);
        let anchors = AnchorSet::new(net.clone());
        Self {
            net,
            state,
            anchors,
            by_object: FxHashMap::default(),
            object_pos: FxHashMap::default(),
            assignment: FxHashMap::default(),
            rnn: FxHashMap::default(),
            query_pos: FxHashMap::default(),
        }
    }

    /// Registers a query (e.g. a vacant cab). Existing object assignments
    /// are refreshed on the next [`Self::tick`]; for immediate consistency
    /// install queries before objects or call `tick` with an empty batch.
    pub fn insert_query(&mut self, id: QueryId, at: NetPoint) {
        let batch = UpdateBatch {
            queries: vec![QueryEvent::Install { id, k: 1, at }],
            ..Default::default()
        };
        self.tick(&batch);
    }

    /// Removes a query.
    pub fn remove_query(&mut self, id: QueryId) {
        let batch = UpdateBatch {
            queries: vec![QueryEvent::Remove { id }],
            ..Default::default()
        };
        self.tick(&batch);
    }

    /// Registers a data object (e.g. a client waiting for a taxi).
    pub fn insert_object(&mut self, id: ObjectId, at: NetPoint) {
        let batch = UpdateBatch {
            objects: vec![ObjectEvent::Insert { id, at }],
            ..Default::default()
        };
        self.tick(&batch);
    }

    /// Removes a data object.
    pub fn remove_object(&mut self, id: ObjectId) {
        let batch = UpdateBatch {
            objects: vec![ObjectEvent::Delete { id }],
            ..Default::default()
        };
        self.tick(&batch);
    }

    /// The reverse nearest neighbors of `q`: every object whose closest
    /// query is `q`. Returns `None` for unknown queries.
    pub fn reverse_nns(&self, q: QueryId) -> Option<Vec<ObjectId>> {
        if !self.query_pos.contains_key(&q) {
            return None;
        }
        let mut v: Vec<ObjectId> = self
            .rnn
            .get(&q)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort();
        Some(v)
    }

    /// The nearest query of object `p` (its current assignment).
    pub fn nearest_query_of(&self, p: ObjectId) -> Option<QueryId> {
        self.assignment.get(&p).copied()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.query_pos.len()
    }

    /// Number of monitored objects.
    pub fn num_objects(&self) -> usize {
        self.by_object.len()
    }

    fn refresh_assignment(&mut self, obj: ObjectId) {
        let key = self.by_object[&obj];
        let nearest = self
            .anchors
            .get(key)
            .and_then(|rec| rec.result.first())
            .map(|n| QueryId(n.object.0));
        let old = self.assignment.get(&obj).copied();
        if old == nearest {
            return;
        }
        if let Some(oldq) = old {
            if let Some(set) = self.rnn.get_mut(&oldq) {
                set.remove(&obj);
            }
        }
        match nearest {
            Some(newq) => {
                self.rnn.entry(newq).or_default().insert(obj);
                self.assignment.insert(obj, newq);
            }
            None => {
                self.assignment.remove(&obj);
            }
        }
    }

    /// Processes one timestamp. The batch's *queries* move the cabs (the
    /// entities being assigned to) and its *objects* move the clients (the
    /// entities whose nearest cab is tracked); edge updates apply as usual.
    pub fn tick(&mut self, batch: &UpdateBatch) -> TickReport {
        let start = Instant::now();
        let mut counters = OpCounters::default();

        // Translate: queries of the public batch become the *searched set*
        // (internal "objects"); objects of the public batch become anchor
        // roots.
        let mut inner = UpdateBatch::default();
        for ev in &batch.queries {
            match *ev {
                QueryEvent::Install { id, at, .. } => {
                    self.query_pos.insert(id, at);
                    inner.objects.push(ObjectEvent::Insert {
                        id: ObjectId(id.0),
                        at,
                    });
                }
                QueryEvent::Move { id, to } => {
                    self.query_pos.insert(id, to);
                    inner.objects.push(ObjectEvent::Move {
                        id: ObjectId(id.0),
                        to,
                    });
                }
                QueryEvent::Remove { id } => {
                    self.query_pos.remove(&id);
                    self.rnn.remove(&id);
                    inner
                        .objects
                        .push(ObjectEvent::Delete { id: ObjectId(id.0) });
                }
            }
        }
        inner.edges = batch.edges.clone();
        let deltas = self.state.apply_batch(&inner);

        // Anchor root moves / installs / removals from the public objects.
        let mut root_moves: Vec<(AnchorKey, RootPos)> = Vec::new();
        let mut installs: Vec<(ObjectId, NetPoint)> = Vec::new();
        let mut obj_deltas: Vec<ObjectDelta> = deltas.objects.clone();
        for ev in &batch.objects {
            match *ev {
                ObjectEvent::Insert { id, at } => {
                    if !self.by_object.contains_key(&id) {
                        installs.push((id, at));
                        self.object_pos.insert(id, at);
                    }
                }
                ObjectEvent::Move { id, to } => {
                    if let Some(&key) = self.by_object.get(&id) {
                        root_moves.push((key, RootPos::Point(to)));
                        self.object_pos.insert(id, to);
                    }
                }
                ObjectEvent::Delete { id } => {
                    if let Some(key) = self.by_object.remove(&id) {
                        self.anchors.remove(key);
                        self.object_pos.remove(&id);
                        if let Some(q) = self.assignment.remove(&id) {
                            if let Some(set) = self.rnn.get_mut(&q) {
                                set.remove(&id);
                            }
                        }
                    }
                }
            }
        }

        obj_deltas.retain(|_| true); // (deltas already coalesced)
        let out = self
            .anchors
            .tick(&self.state, &obj_deltas, &deltas.edges, &root_moves);
        counters.merge(&out.counters);

        // New anchors for inserted objects (after all updates, §4.5).
        for (id, at) in installs {
            let key = self
                .anchors
                .add(&self.state, RootPos::Point(at), 1, &mut counters);
            self.by_object.insert(id, key);
            self.refresh_assignment(id);
        }

        // Re-derive assignments for changed anchors.
        let mut results_changed = 0;
        let changed_objs: Vec<ObjectId> = {
            let inv: FxHashMap<AnchorKey, ObjectId> =
                self.by_object.iter().map(|(&o, &k)| (k, o)).collect();
            out.changed
                .iter()
                .filter_map(|k| inv.get(k).copied())
                .collect()
        };
        for obj in changed_objs {
            let before = self.assignment.get(&obj).copied();
            self.refresh_assignment(obj);
            if before != self.assignment.get(&obj).copied() {
                results_changed += 1;
            }
        }

        TickReport {
            elapsed: start.elapsed(),
            results_changed,
            counters,
        }
    }

    /// Resident memory of the monitor.
    pub fn memory(&self) -> MemoryUsage {
        let (query_table, expansion_trees, influence_lists) = self.anchors.memory_breakdown();
        MemoryUsage {
            edge_table: self.state.memory_bytes(),
            query_table,
            expansion_trees,
            influence_lists,
            auxiliary: self.anchors.scratch_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::{generators, EdgeId};

    /// Line of 6 nodes; two cabs (queries) at the ends, clients between.
    fn setup() -> Crnn {
        let net = Arc::new(generators::line_network(6, 1.0));
        let mut c = Crnn::new(net);
        c.insert_query(QueryId(100), NetPoint::new(EdgeId(0), 0.0)); // x=0
        c.insert_query(QueryId(200), NetPoint::new(EdgeId(4), 1.0)); // x=5
        c
    }

    #[test]
    fn objects_assign_to_nearest_query() {
        let mut c = setup();
        c.insert_object(ObjectId(1), NetPoint::new(EdgeId(0), 0.5)); // x=0.5 -> q100
        c.insert_object(ObjectId(2), NetPoint::new(EdgeId(4), 0.5)); // x=4.5 -> q200
        c.insert_object(ObjectId(3), NetPoint::new(EdgeId(1), 0.0)); // x=1.0 -> q100
        assert_eq!(
            c.reverse_nns(QueryId(100)).unwrap(),
            vec![ObjectId(1), ObjectId(3)]
        );
        assert_eq!(c.reverse_nns(QueryId(200)).unwrap(), vec![ObjectId(2)]);
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(100)));
    }

    #[test]
    fn object_movement_reassigns() {
        let mut c = setup();
        c.insert_object(ObjectId(1), NetPoint::new(EdgeId(0), 0.5));
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(100)));
        let rep = c.tick(&UpdateBatch {
            objects: vec![ObjectEvent::Move {
                id: ObjectId(1),
                to: NetPoint::new(EdgeId(4), 0.75),
            }],
            ..Default::default()
        });
        assert_eq!(rep.results_changed, 1);
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(200)));
        assert!(c.reverse_nns(QueryId(100)).unwrap().is_empty());
    }

    #[test]
    fn query_movement_steals_clients() {
        let mut c = setup();
        c.insert_object(ObjectId(1), NetPoint::new(EdgeId(2), 0.5)); // x=2.5: q100 at 2.5, q200 at 2.5 — tie; dist tie broken by id.
                                                                     // Break the tie deterministically: move q200 closer.
        c.tick(&UpdateBatch {
            queries: vec![QueryEvent::Move {
                id: QueryId(200),
                to: NetPoint::new(EdgeId(3), 0.0),
            }],
            ..Default::default()
        });
        // q200 now at x=3: distance 0.5 vs q100's 2.5.
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(200)));
    }

    #[test]
    fn query_removal_reassigns_clients() {
        let mut c = setup();
        c.insert_object(ObjectId(1), NetPoint::new(EdgeId(0), 0.5));
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(100)));
        c.remove_query(QueryId(100));
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(200)));
        assert!(c.reverse_nns(QueryId(100)).is_none());
    }

    #[test]
    fn edge_updates_can_flip_assignment() {
        let mut c = setup();
        c.insert_object(ObjectId(1), NetPoint::new(EdgeId(2), 0.25)); // x=2.25: q100 at 2.25, q200 at 2.75
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(100)));
        // Make the left part of the line very heavy.
        c.tick(&UpdateBatch {
            edges: vec![crate::types::EdgeWeightUpdate {
                edge: EdgeId(0),
                new_weight: 10.0,
            }],
            ..Default::default()
        });
        // q100 now at 10*? object on edge2 — distance via edges 1,0:
        // 0.25 + 1 + 10 = 11.25 ... wait q100 sits at frac 0 of edge 0, so
        // x-position unchanged but path crosses the heavy edge: 11.25 vs
        // q200 at 2.75.
        assert_eq!(c.nearest_query_of(ObjectId(1)), Some(QueryId(200)));
    }

    #[test]
    fn object_delete_cleans_up() {
        let mut c = setup();
        c.insert_object(ObjectId(1), NetPoint::new(EdgeId(0), 0.5));
        c.remove_object(ObjectId(1));
        assert_eq!(c.num_objects(), 0);
        assert!(c.reverse_nns(QueryId(100)).unwrap().is_empty());
        assert_eq!(c.nearest_query_of(ObjectId(1)), None);
    }

    #[test]
    fn counts() {
        let c = setup();
        assert_eq!(c.num_queries(), 2);
        assert_eq!(c.num_objects(), 0);
        assert!(c.memory().total_bytes() > 0);
    }
}
