//! Durable monitor-state snapshots.
//!
//! [`MonitorState`] is the answer-relevant state of a continuous monitor,
//! serialized with the [`rnn_roadnet::wire`] discipline so the cluster's
//! durability plane can persist it and ship it over RPC frames: the
//! dynamic edge weights (as diffs against the network's base weights),
//! the object index, and the query book with each query's current result.
//! Expansion trees and influence lists are deliberately **not**
//! serialized — they are a deterministic function of this state and are
//! recomputed on restore (install-time expansion), which keeps snapshots
//! small and the format independent of the tree-pool memory layout.
//!
//! Restore validation: the stored per-query results are compared
//! bit-for-bit against what the freshly restored monitor computes. A
//! mismatch means the snapshot does not describe a reachable monitor
//! state (corruption the CRC missed, or a version skew) and restoring
//! fails with a typed error instead of silently serving wrong answers.

use rnn_roadnet::wire::{
    decode_seq, encode_seq, put_f64, put_u64, WireCodec, WireError, WireReader,
};
use rnn_roadnet::{NetPoint, ObjectId, QueryId, RoadNetwork};

use crate::monitor::ContinuousMonitor;
use crate::state::NetworkState;
use crate::types::{EdgeWeightUpdate, Neighbor, UpdateBatch, UpdateEvent};

/// One query's entry in a snapshot: identity, parameters, position, and
/// the current result (used to validate the restore and to prime the
/// shard's shipped-result cache so post-restore replies are identical to
/// an uncrashed shard's).
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySnapshotState {
    /// Query id.
    pub id: QueryId,
    /// Number of neighbors monitored.
    pub k: usize,
    /// Current position.
    pub pos: NetPoint,
    /// Current `kNN_dist` (`∞` while underfull).
    pub knn_dist: f64,
    /// Current result, in canonical `(dist, id)` order.
    pub result: Vec<Neighbor>,
}

impl WireCodec for QuerySnapshotState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        put_u64(out, self.k as u64);
        self.pos.encode(out);
        put_f64(out, self.knn_dist);
        encode_seq(&self.result, out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QuerySnapshotState {
            id: QueryId::decode(r)?,
            k: r.u64()? as usize,
            pos: NetPoint::decode(r)?,
            knn_dist: r.f64()?,
            result: decode_seq(r)?,
        })
    }
}

/// The answer-relevant state of a continuous monitor at one instant.
///
/// Captured via [`ContinuousMonitor::snapshot_state`], serialized with
/// [`MonitorState::to_bytes`], restored into a **fresh** monitor with
/// [`MonitorState::restore_into`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MonitorState {
    /// Edge weights that differ from the network's base weights, sorted
    /// by edge id. Absolute values, not deltas.
    pub weight_diffs: Vec<EdgeWeightUpdate>,
    /// All registered objects, sorted by id.
    pub objects: Vec<(ObjectId, NetPoint)>,
    /// All registered queries, sorted by id.
    pub queries: Vec<QuerySnapshotState>,
}

/// Why a [`MonitorState::restore_into`] was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The restored monitor computed a different result than the snapshot
    /// recorded for this query — the snapshot does not describe a
    /// reachable state of this monitor over this network.
    ResultMismatch(QueryId),
    /// The target monitor already holds state; snapshots restore only
    /// into fresh monitors.
    TargetNotFresh,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ResultMismatch(q) => {
                write!(f, "restored result diverges from snapshot for query {q}")
            }
            RestoreError::TargetNotFresh => {
                write!(f, "snapshot restore requires a fresh monitor")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl MonitorState {
    /// Captures the monitor state backing `state`, reading each query's
    /// current result through `result_of` (which the owning monitor
    /// provides; results are copied, not recomputed).
    pub fn capture<F>(net: &RoadNetwork, state: &NetworkState, mut result_of: F) -> Self
    where
        F: FnMut(QueryId) -> (f64, Vec<Neighbor>),
    {
        let mut weight_diffs = Vec::new();
        for e in net.edge_ids() {
            let w = state.weights.get(e);
            if w != net.edge(e).base_weight {
                weight_diffs.push(EdgeWeightUpdate {
                    edge: e,
                    new_weight: w,
                });
            }
        }
        let mut objects: Vec<(ObjectId, NetPoint)> = state.objects.iter().collect();
        objects.sort_by_key(|(id, _)| *id);
        let mut queries: Vec<QuerySnapshotState> = state
            .queries
            .iter()
            .map(|(&id, &(k, pos))| {
                let (knn_dist, result) = result_of(id);
                QuerySnapshotState {
                    id,
                    k,
                    pos,
                    knn_dist,
                    result,
                }
            })
            .collect();
        queries.sort_by_key(|q| q.id);
        MonitorState {
            weight_diffs,
            objects,
            queries,
        }
    }

    /// Restores this state into a **fresh** monitor: applies the weight
    /// diffs as one edge-update tick, registers every object, reinstalls
    /// every query (in id order — installation recomputes results and
    /// expansion state from scratch), then validates that each recomputed
    /// result bit-matches the stored one.
    pub fn restore_into(&self, monitor: &mut dyn ContinuousMonitor) -> Result<(), RestoreError> {
        if !monitor.query_ids().is_empty() {
            return Err(RestoreError::TargetNotFresh);
        }
        if !self.weight_diffs.is_empty() {
            let batch = UpdateBatch {
                edges: self.weight_diffs.clone(),
                ..UpdateBatch::default()
            };
            monitor.tick(&batch);
        }
        for &(id, at) in &self.objects {
            monitor.apply(UpdateEvent::insert_object(id, at));
        }
        for q in &self.queries {
            monitor.apply(UpdateEvent::install_query(q.id, q.k, q.pos));
        }
        for q in &self.queries {
            let got = monitor.result(q.id).unwrap_or(&[]);
            let dist = monitor.knn_dist(q.id).unwrap_or(f64::INFINITY);
            if got.len() != q.result.len()
                || dist.to_bits() != q.knn_dist.to_bits()
                || got
                    .iter()
                    .zip(&q.result)
                    .any(|(a, b)| a.object != b.object || a.dist.to_bits() != b.dist.to_bits())
            {
                return Err(RestoreError::ResultMismatch(q.id));
            }
        }
        Ok(())
    }

    /// Serializes to the wire form (no framing; callers wrap the bytes in
    /// whatever envelope they need — the cluster uses its CRC'd frame).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Deserializes a snapshot produced by [`Self::to_bytes`]. Never
    /// panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let s = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Invalid("trailing bytes after MonitorState"));
        }
        Ok(s)
    }

    /// Total registered entities (sizing/reporting).
    pub fn entity_count(&self) -> usize {
        self.objects.len() + self.queries.len()
    }
}

impl WireCodec for MonitorState {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.weight_diffs, out);
        put_u64(out, self.objects.len() as u64);
        for (id, at) in &self.objects {
            id.encode(out);
            at.encode(out);
        }
        encode_seq(&self.queries, out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let weight_diffs = decode_seq(r)?;
        let n = r.u64()?;
        if n > r.remaining() as u64 {
            return Err(WireError::Invalid("object count exceeds payload"));
        }
        let mut objects = Vec::with_capacity(n as usize);
        for _ in 0..n {
            objects.push((ObjectId::decode(r)?, NetPoint::decode(r)?));
        }
        Ok(MonitorState {
            weight_diffs,
            objects,
            queries: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gma, Ima, Ovh};
    use rnn_roadnet::{generators, EdgeId};
    use std::sync::Arc;

    fn net() -> Arc<RoadNetwork> {
        Arc::new(generators::grid_city(&generators::GridCityConfig {
            nx: 6,
            ny: 6,
            seed: 9,
            ..Default::default()
        }))
    }

    fn populate(m: &mut dyn ContinuousMonitor, net: &RoadNetwork) {
        for (i, e) in net.edge_ids().enumerate().step_by(3) {
            m.apply(UpdateEvent::insert_object(
                ObjectId(i as u32),
                NetPoint::new(e, 0.4),
            ));
        }
        for q in 0..6u32 {
            m.apply(UpdateEvent::install_query(
                QueryId(q),
                3,
                NetPoint::new(EdgeId(q * 5), 0.25),
            ));
        }
        // Churn a few ticks so weights diverge from base and results move.
        for t in 0..4u32 {
            let mut batch = UpdateBatch::default();
            batch.edges.push(EdgeWeightUpdate {
                edge: EdgeId(t * 2),
                new_weight: 2.5 + f64::from(t),
            });
            batch.objects.push(crate::types::ObjectEvent::Move {
                id: ObjectId(0),
                to: NetPoint::new(EdgeId(t * 3 + 1), 0.7),
            });
            m.tick(&batch);
        }
    }

    fn round_trip_restores(
        mut orig: Box<dyn ContinuousMonitor>,
        fresh: &mut dyn ContinuousMonitor,
    ) {
        let n = net();
        populate(orig.as_mut(), &n);
        let snap = orig.snapshot_state().expect("monitor must snapshot");
        let decoded = MonitorState::from_bytes(&snap.to_bytes()).expect("round trip");
        assert_eq!(decoded, snap);
        decoded.restore_into(fresh).expect("restore must validate");
        let mut ids = orig.query_ids();
        ids.sort();
        for q in ids {
            assert_eq!(orig.result(q).unwrap(), fresh.result(q).unwrap());
            assert_eq!(
                orig.knn_dist(q).unwrap().to_bits(),
                fresh.knn_dist(q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn ima_snapshot_round_trips() {
        let n = net();
        round_trip_restores(Box::new(Ima::new(n.clone())), &mut Ima::new(n));
    }

    #[test]
    fn gma_snapshot_round_trips() {
        let n = net();
        round_trip_restores(Box::new(Gma::new(n.clone())), &mut Gma::new(n));
    }

    #[test]
    fn ovh_snapshot_round_trips() {
        let n = net();
        round_trip_restores(Box::new(Ovh::new(n.clone())), &mut Ovh::new(n));
    }

    #[test]
    fn restore_preserves_future_tick_behavior() {
        // The recovered monitor must be algorithmically indistinguishable
        // going forward: identical answers AND identical algorithmic work
        // counters on every subsequent tick (the cluster's crash
        // differential relies on this). Only the allocator-history
        // counters ([`OpCounters::algorithmic`] masks them) may differ
        // while the restored monitor's pools warm up.
        let n = net();
        let mut orig = Gma::new(n.clone());
        populate(&mut orig, &n);
        let snap = orig.snapshot_state().unwrap();
        let mut restored = Gma::new(n.clone());
        snap.restore_into(&mut restored).unwrap();
        for t in 0..5u32 {
            let mut batch = UpdateBatch::default();
            batch.edges.push(EdgeWeightUpdate {
                edge: EdgeId(t * 4 + 1),
                new_weight: 1.5,
            });
            batch.objects.push(crate::types::ObjectEvent::Move {
                id: ObjectId(3),
                to: NetPoint::new(EdgeId(t * 5 + 2), 0.3),
            });
            batch.queries.push(crate::types::QueryEvent::Move {
                id: QueryId(1),
                to: NetPoint::new(EdgeId(t * 7 + 3), 0.6),
            });
            let ra = orig.tick(&batch);
            let rb = restored.tick(&batch);
            assert_eq!(
                ra.counters.algorithmic(),
                rb.counters.algorithmic(),
                "tick {t}: algorithmic counters diverge"
            );
            assert_eq!(ra.counters.work(), rb.counters.work(), "tick {t}");
            assert_eq!(ra.results_changed, rb.results_changed, "tick {t}");
            for q in 0..6u32 {
                assert_eq!(orig.result(QueryId(q)), restored.result(QueryId(q)));
            }
        }
    }

    #[test]
    fn restore_rejects_non_fresh_target() {
        let n = net();
        let mut orig = Ima::new(n.clone());
        populate(&mut orig, &n);
        let snap = orig.snapshot_state().unwrap();
        let mut busy = Ima::new(n);
        busy.apply(UpdateEvent::install_query(
            QueryId(99),
            2,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        assert_eq!(
            snap.restore_into(&mut busy),
            Err(RestoreError::TargetNotFresh)
        );
    }

    #[test]
    fn restore_rejects_tampered_results() {
        let n = net();
        let mut orig = Ima::new(n.clone());
        populate(&mut orig, &n);
        let mut snap = orig.snapshot_state().unwrap();
        snap.queries[0].knn_dist += 1.0;
        let mut fresh = Ima::new(n);
        assert_eq!(
            snap.restore_into(&mut fresh),
            Err(RestoreError::ResultMismatch(snap.queries[0].id))
        );
    }

    #[test]
    fn truncated_snapshot_bytes_never_panic() {
        let n = net();
        let mut orig = Gma::new(n.clone());
        populate(&mut orig, &n);
        let bytes = orig.snapshot_state().unwrap().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                MonitorState::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn empty_state_round_trips() {
        let s = MonitorState::default();
        assert_eq!(MonitorState::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(s.entity_count(), 0);
    }
}
