//! Operation counters, per-timestamp reports, and memory accounting.
//!
//! The paper reports CPU seconds per timestamp and memory KBytes (Figs.
//! 13–19). Wall-clock time on a different machine cannot match absolute
//! numbers, so in addition to timing we expose deterministic operation
//! counters — they make the *shape* of every curve reproducible and
//! machine-independent (see DESIGN.md, substitution #3).

use std::time::Duration;

/// Deterministic work counters accumulated while processing a timestamp.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Network nodes settled by expansions (Dijkstra pops).
    pub nodes_settled: u64,
    /// Edges scanned for objects during expansions.
    pub edges_scanned: u64,
    /// Object entries considered as result candidates.
    pub objects_considered: u64,
    /// Heap relaxations performed.
    pub relaxations: u64,
    /// Updates discarded without touching any query (the influence-list
    /// fast path, §4.2: "irrelevant updates are simply ignored").
    pub updates_ignored: u64,
    /// Queries (or active nodes) whose result was re-derived this tick.
    pub reevaluations: u64,
    /// Expansion-tree nodes pruned while invalidating tree parts.
    pub tree_nodes_pruned: u64,
    /// Distinct objects examined while re-deriving replica membership
    /// after halo changes this tick (sharded engine only; single monitors
    /// keep this at 0). With the edge→objects index this scales with
    /// *changed* halo edges, so it never reaches the total object count.
    pub resync_touched: u64,
    /// Replicas evicted because a halo shrank or an edge left a halo
    /// (sharded engine only).
    pub replica_evictions: u64,
    /// Heap-allocation events on the instrumented tick-path structures
    /// during *maintenance* work: per-edge arena backing-buffer
    /// reallocations (object lists, influence lists, replica buckets),
    /// Dijkstra-heap capacity growth, and tree-pool slab/directory growth.
    /// Zero on a steady-state tick — all list churn, expansion work and
    /// tree surgery ran in reused capacity. Allocations made while
    /// *installing* a new monitored entity are counted separately in
    /// `install_alloc_events`.
    pub alloc_events: u64,
    /// Heap-allocation events attributable to installing a brand-new
    /// monitored entity: a query install's initial computation (§4.1) or a
    /// GMA active-node activation. New entities legitimately materialise
    /// new state (a tree directory, slab headroom), so these are kept out
    /// of the steady-state `alloc_events` guarantee the CI gate enforces.
    pub install_alloc_events: u64,
    /// Raw Dijkstra expansion steps (heap pops, including lazily discarded
    /// stale entries) — the machine-independent measure of heap traffic.
    pub expansion_steps: u64,
    /// Queries/anchors served from a *shared* expansion instead of running
    /// their own: root-grouped multi-k re-expansions in the anchor set, and
    /// GMA queries answered from an active-node expansion that already
    /// served another query this tick. Each count is one network expansion
    /// that did **not** run.
    pub shared_expansions: u64,
    /// Expansion-tree nodes served from the tree pool's free list instead
    /// of fresh slab space — the tree-surgery reuse counter. Together with
    /// `alloc_events` staying 0 it proves subtree cuts and re-expansion
    /// inserts ran entirely in recycled capacity.
    pub tree_nodes_recycled: u64,
    /// Load-aware shard rebalances executed this tick (sharded engine
    /// only): each is one migration of boundary cells from the most loaded
    /// shard to an underloaded neighbour.
    pub rebalance_events: u64,
    /// Partition cells (edges) whose ownership moved to another shard
    /// during rebalancing this tick (sharded engine only).
    pub cells_migrated: u64,
    /// Submitted events dropped by the ingest stage because a later
    /// submission for the same entity superseded them within the tick
    /// window (last-write-wins coalescing, §4.5 generalized to the
    /// out-of-band ingest path). Each count is one event the monitor
    /// never had to process.
    pub coalesced_superseded: u64,
    /// Submitted events dropped by the ingest stage's
    /// `AdmissionPolicy::ShedOldest` load shedding because a bounded lane
    /// was full. Unlike `coalesced_superseded`, shed events are *lost* —
    /// answers may lag until a fresher submission arrives.
    pub shed_events: u64,
    /// Heap-allocation events on the ingest drain path: lane buffer
    /// growth, drain scratch growth, and coalescing-directory growth.
    /// Zero on a steady-state tick — the drain runs entirely in reused
    /// capacity, like the monitors' own `alloc_events` guarantee.
    pub drain_alloc_events: u64,
}

impl OpCounters {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &OpCounters) {
        self.nodes_settled += other.nodes_settled;
        self.edges_scanned += other.edges_scanned;
        self.objects_considered += other.objects_considered;
        self.relaxations += other.relaxations;
        self.updates_ignored += other.updates_ignored;
        self.reevaluations += other.reevaluations;
        self.tree_nodes_pruned += other.tree_nodes_pruned;
        self.resync_touched += other.resync_touched;
        self.replica_evictions += other.replica_evictions;
        self.alloc_events += other.alloc_events;
        self.install_alloc_events += other.install_alloc_events;
        self.expansion_steps += other.expansion_steps;
        self.shared_expansions += other.shared_expansions;
        self.tree_nodes_recycled += other.tree_nodes_recycled;
        self.rebalance_events += other.rebalance_events;
        self.cells_migrated += other.cells_migrated;
        self.coalesced_superseded += other.coalesced_superseded;
        self.shed_events += other.shed_events;
        self.drain_alloc_events += other.drain_alloc_events;
    }

    /// A single scalar proxy for CPU work (used by tests that assert one
    /// strategy does less work than another).
    pub fn work(&self) -> u64 {
        self.nodes_settled + self.edges_scanned + self.objects_considered + self.relaxations
    }

    /// The allocator-independent view: this report with the memory-pool
    /// counters (`alloc_events`, `install_alloc_events`,
    /// `tree_nodes_recycled`, `drain_alloc_events`) zeroed. Those describe
    /// *capacity history* — how much slab headroom and free-list content a
    /// monitor accumulated — not the algorithm's work, so they are the one
    /// part of a tick report a snapshot-restored monitor may legitimately
    /// differ in during its first post-restore ticks (its pools were
    /// warmed by the restore, not by the full run). Every other counter is
    /// a pure function of the answer-relevant state and must match
    /// bit-for-bit, which the crash-recovery differential asserts through
    /// this view.
    pub fn algorithmic(&self) -> OpCounters {
        OpCounters {
            alloc_events: 0,
            install_alloc_events: 0,
            tree_nodes_recycled: 0,
            drain_alloc_events: 0,
            ..*self
        }
    }

    /// The view a **snapshot-restored shard** must still match: the
    /// [`Self::algorithmic`] mask plus every *tree-shape-coupled*
    /// counter zeroed.
    ///
    /// A restore rebuilds expansion trees from scratch for the restored
    /// query set (sorted by id) instead of replaying the exact install
    /// interleaving, so the recovered trees are *equivalent* — same
    /// answers, same monitored coverage — but not node-for-node
    /// identical to incrementally maintained ones: a maintained tree
    /// carries stale branches a fresh recompute never grows, and tree
    /// shape steers every expansion, scan, reevaluation, and prune that
    /// follows. What must (and does) stay bit-identical through
    /// recovery: every answer and `knn_dist`, `results_changed`, and
    /// the counters this view keeps, which depend only on replica
    /// content and the coordinator's event stream — `updates_ignored`,
    /// `resync_touched`, `replica_evictions`, `rebalance_events`,
    /// `cells_migrated`.
    pub fn restore_stable(&self) -> OpCounters {
        OpCounters {
            nodes_settled: 0,
            edges_scanned: 0,
            objects_considered: 0,
            relaxations: 0,
            reevaluations: 0,
            tree_nodes_pruned: 0,
            expansion_steps: 0,
            shared_expansions: 0,
            ..self.algorithmic()
        }
    }
}

/// What happened while processing one timestamp.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TickReport {
    /// Wall-clock processing time for the tick.
    pub elapsed: Duration,
    /// Number of queries whose *reported result* changed this tick.
    pub results_changed: usize,
    /// Deterministic work counters.
    pub counters: OpCounters,
}

impl TickReport {
    /// Folds another report into this one: counters and changed-result
    /// counts add up, elapsed takes the **maximum** (shards tick in
    /// parallel, so wall-clock cost is the slowest worker, not the sum).
    pub fn absorb_parallel(&mut self, other: &TickReport) {
        self.elapsed = self.elapsed.max(other.elapsed);
        self.results_changed += other.results_changed;
        self.counters.merge(&other.counters);
    }
}

/// Breakdown of a monitor's resident memory (Fig. 18 reports KBytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Edge table: per-edge object lists and weights.
    pub edge_table: usize,
    /// Query/anchor table: positions, results.
    pub query_table: usize,
    /// Expansion trees.
    pub expansion_trees: usize,
    /// Influence lists.
    pub influence_lists: usize,
    /// Auxiliary structures (sequence table, active-node bookkeeping,
    /// scratch Dijkstra state).
    pub auxiliary: usize,
}

impl MemoryUsage {
    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.edge_table
            + self.query_table
            + self.expansion_trees
            + self.influence_lists
            + self.auxiliary
    }

    /// Total in KBytes (the paper's unit in Fig. 18).
    pub fn total_kbytes(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = OpCounters {
            nodes_settled: 1,
            edges_scanned: 2,
            ..Default::default()
        };
        let b = OpCounters {
            nodes_settled: 10,
            objects_considered: 5,
            updates_ignored: 3,
            resync_touched: 7,
            replica_evictions: 2,
            alloc_events: 4,
            install_alloc_events: 11,
            expansion_steps: 9,
            shared_expansions: 6,
            tree_nodes_recycled: 8,
            rebalance_events: 1,
            cells_migrated: 5,
            coalesced_superseded: 13,
            shed_events: 2,
            drain_alloc_events: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_settled, 11);
        assert_eq!(a.edges_scanned, 2);
        assert_eq!(a.objects_considered, 5);
        assert_eq!(a.updates_ignored, 3);
        assert_eq!(a.resync_touched, 7);
        assert_eq!(a.replica_evictions, 2);
        assert_eq!(a.alloc_events, 4);
        assert_eq!(a.install_alloc_events, 11);
        assert_eq!(a.expansion_steps, 9);
        assert_eq!(a.shared_expansions, 6);
        assert_eq!(a.tree_nodes_recycled, 8);
        assert_eq!(a.rebalance_events, 1);
        assert_eq!(a.cells_migrated, 5);
        assert_eq!(a.coalesced_superseded, 13);
        assert_eq!(a.shed_events, 2);
        assert_eq!(a.drain_alloc_events, 3);
        assert_eq!(a.work(), 11 + 2 + 5);
    }

    #[test]
    fn memory_totals() {
        let m = MemoryUsage {
            edge_table: 1024,
            query_table: 1024,
            expansion_trees: 2048,
            influence_lists: 0,
            auxiliary: 0,
        };
        assert_eq!(m.total_bytes(), 4096);
        assert!((m.total_kbytes() - 4.0).abs() < 1e-12);
    }
}
