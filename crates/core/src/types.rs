//! Public value types: query results, anchor roots, and the per-timestamp
//! update batch that drives every monitor.

use rnn_roadnet::{EdgeId, NetPoint, NodeId, ObjectId, QueryId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// One entry of a k-NN result: a data object and its network distance from
/// the query.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The data object.
    pub object: ObjectId,
    /// Network distance from the query (sum of edge weights along the
    /// shortest path, §3).
    pub dist: f64,
}

impl Neighbor {
    /// Deterministic ordering: by distance, ties by object id.
    #[inline]
    pub fn sort_key(&self) -> (f64, ObjectId) {
        (self.dist, self.object)
    }
}

/// Sorts neighbors by `(dist, object)` — the canonical result order.
pub fn sort_neighbors(v: &mut [Neighbor]) {
    v.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .expect("distances must not be NaN")
            .then_with(|| a.object.cmp(&b.object))
    });
}

/// Where a monitored expansion is rooted: a user query sits at an arbitrary
/// point on an edge, while GMA's active nodes sit exactly on network nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RootPos {
    /// Rooted at a network node (GMA active nodes).
    Node(NodeId),
    /// Rooted at a point on an edge (user queries).
    Point(NetPoint),
}

impl RootPos {
    /// The edge the root lies on, if it is a point root.
    #[inline]
    pub fn edge(&self) -> Option<EdgeId> {
        match self {
            RootPos::Point(p) => Some(p.edge),
            RootPos::Node(_) => None,
        }
    }

    /// Interprets the root as a node if it is one (or a point pinned to an
    /// edge endpoint).
    pub fn as_node(&self, net: &RoadNetwork) -> Option<NodeId> {
        match self {
            RootPos::Node(n) => Some(*n),
            RootPos::Point(p) => p.as_node(net, 0.0),
        }
    }
}

/// A data-object event, as delivered to the server (§3: objects issue
/// updates containing their id, old and new location; we also model
/// appearance and disappearance, §4.2: "objects that appear in (disappear
/// from) the system are handled as incoming (outgoing) ones").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObjectEvent {
    /// Object moved to a new network position.
    Move {
        /// Object id.
        id: ObjectId,
        /// New position.
        to: NetPoint,
    },
    /// A new object appeared.
    Insert {
        /// Object id.
        id: ObjectId,
        /// Initial position.
        at: NetPoint,
    },
    /// An existing object disappeared.
    Delete {
        /// Object id.
        id: ObjectId,
    },
}

/// A query event: movement of a registered continuous query. Installation
/// and termination of queries go through
/// [`crate::monitor::ContinuousMonitor::install_query`] /
/// [`remove_query`](crate::monitor::ContinuousMonitor::remove_query), or may
/// be batched here.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueryEvent {
    /// Query moved to a new network position.
    Move {
        /// Query id.
        id: QueryId,
        /// New position.
        to: NetPoint,
    },
    /// A new continuous query is installed.
    Install {
        /// Query id.
        id: QueryId,
        /// Number of neighbors to monitor.
        k: usize,
        /// Initial position.
        at: NetPoint,
    },
    /// An existing query terminates.
    Remove {
        /// Query id.
        id: QueryId,
    },
}

/// An edge-weight update (e.g. issued by congestion sensors, §3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeWeightUpdate {
    /// The edge whose weight changed.
    pub edge: EdgeId,
    /// The new weight (absolute, not a delta).
    pub new_weight: f64,
}

/// Everything that happens in one timestamp.
///
/// §4.5: if an entity issues several updates in one timestamp they are
/// coalesced (first old value, last new value) before processing; the
/// monitors perform that preprocessing internally, so batches may contain
/// multiple events per entity.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch {
    /// Object movements / appearances / disappearances.
    pub objects: Vec<ObjectEvent>,
    /// Query movements / installations / terminations.
    pub queries: Vec<QueryEvent>,
    /// Edge weight changes.
    pub edges: Vec<EdgeWeightUpdate>,
}

impl UpdateBatch {
    /// Whether the batch carries no events at all.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty() && self.queries.is_empty() && self.edges.is_empty()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.objects.len() + self.queries.len() + self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_sorting_is_deterministic() {
        let mut v = vec![
            Neighbor {
                object: ObjectId(5),
                dist: 2.0,
            },
            Neighbor {
                object: ObjectId(1),
                dist: 2.0,
            },
            Neighbor {
                object: ObjectId(9),
                dist: 1.0,
            },
        ];
        sort_neighbors(&mut v);
        assert_eq!(v[0].object, ObjectId(9));
        assert_eq!(v[1].object, ObjectId(1));
        assert_eq!(v[2].object, ObjectId(5));
    }

    #[test]
    fn batch_len_and_emptiness() {
        let mut b = UpdateBatch::default();
        assert!(b.is_empty());
        b.objects.push(ObjectEvent::Delete { id: ObjectId(1) });
        b.edges.push(EdgeWeightUpdate {
            edge: EdgeId(0),
            new_weight: 2.0,
        });
        assert!(!b.is_empty());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rootpos_edge_accessor() {
        let p = RootPos::Point(NetPoint::new(EdgeId(3), 0.5));
        assert_eq!(p.edge(), Some(EdgeId(3)));
        assert_eq!(RootPos::Node(NodeId(1)).edge(), None);
    }
}
