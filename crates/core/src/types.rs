//! Public value types: query results, anchor roots, and the per-timestamp
//! update batch that drives every monitor.

use rnn_roadnet::{EdgeId, NetPoint, NodeId, ObjectId, QueryId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// One entry of a k-NN result: a data object and its network distance from
/// the query.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The data object.
    pub object: ObjectId,
    /// Network distance from the query (sum of edge weights along the
    /// shortest path, §3).
    pub dist: f64,
}

impl Neighbor {
    /// Deterministic ordering: by distance, ties by object id.
    #[inline]
    pub fn sort_key(&self) -> (f64, ObjectId) {
        (self.dist, self.object)
    }
}

/// Sorts neighbors by `(dist, object)` — the canonical result order.
pub fn sort_neighbors(v: &mut [Neighbor]) {
    v.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .expect("distances must not be NaN")
            .then_with(|| a.object.cmp(&b.object))
    });
}

/// Where a monitored expansion is rooted: a user query sits at an arbitrary
/// point on an edge, while GMA's active nodes sit exactly on network nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RootPos {
    /// Rooted at a network node (GMA active nodes).
    Node(NodeId),
    /// Rooted at a point on an edge (user queries).
    Point(NetPoint),
}

impl RootPos {
    /// The edge the root lies on, if it is a point root.
    #[inline]
    pub fn edge(&self) -> Option<EdgeId> {
        match self {
            RootPos::Point(p) => Some(p.edge),
            RootPos::Node(_) => None,
        }
    }

    /// Interprets the root as a node if it is one (or a point pinned to an
    /// edge endpoint).
    pub fn as_node(&self, net: &RoadNetwork) -> Option<NodeId> {
        match self {
            RootPos::Node(n) => Some(*n),
            RootPos::Point(p) => p.as_node(net, 0.0),
        }
    }
}

/// A data-object event, as delivered to the server (§3: objects issue
/// updates containing their id, old and new location; we also model
/// appearance and disappearance, §4.2: "objects that appear in (disappear
/// from) the system are handled as incoming (outgoing) ones").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObjectEvent {
    /// Object moved to a new network position.
    Move {
        /// Object id.
        id: ObjectId,
        /// New position.
        to: NetPoint,
    },
    /// A new object appeared.
    Insert {
        /// Object id.
        id: ObjectId,
        /// Initial position.
        at: NetPoint,
    },
    /// An existing object disappeared.
    Delete {
        /// Object id.
        id: ObjectId,
    },
}

/// A query event: movement, installation, or termination of a continuous
/// query, submitted via [`crate::monitor::ContinuousMonitor::apply`] or
/// batched through [`UpdateBatch`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueryEvent {
    /// Query moved to a new network position.
    Move {
        /// Query id.
        id: QueryId,
        /// New position.
        to: NetPoint,
    },
    /// A new continuous query is installed.
    Install {
        /// Query id.
        id: QueryId,
        /// Number of neighbors to monitor.
        k: usize,
        /// Initial position.
        at: NetPoint,
    },
    /// An existing query terminates.
    Remove {
        /// Query id.
        id: QueryId,
    },
}

/// An edge-weight update (e.g. issued by congestion sensors, §3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeWeightUpdate {
    /// The edge whose weight changed.
    pub edge: EdgeId,
    /// The new weight (absolute, not a delta).
    pub new_weight: f64,
}

/// One submission to a monitor, unifying the three event planes. This is
/// the currency of [`crate::monitor::ContinuousMonitor::apply`] and of the
/// ingest front-end: producers hand the server single events out-of-band,
/// and a batching stage (or the monitor itself) folds them into per-tick
/// [`UpdateBatch`]es.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum UpdateEvent {
    /// A data-object event.
    Object(ObjectEvent),
    /// A query event.
    Query(QueryEvent),
    /// An edge-weight change.
    Edge(EdgeWeightUpdate),
}

impl UpdateEvent {
    /// A new object appearing at `at`.
    pub fn insert_object(id: ObjectId, at: NetPoint) -> Self {
        UpdateEvent::Object(ObjectEvent::Insert { id, at })
    }

    /// An existing object moving to `to`.
    pub fn move_object(id: ObjectId, to: NetPoint) -> Self {
        UpdateEvent::Object(ObjectEvent::Move { id, to })
    }

    /// An object leaving the system.
    pub fn delete_object(id: ObjectId) -> Self {
        UpdateEvent::Object(ObjectEvent::Delete { id })
    }

    /// A new continuous `k`-NN query installed at `at`.
    pub fn install_query(id: QueryId, k: usize, at: NetPoint) -> Self {
        UpdateEvent::Query(QueryEvent::Install { id, k, at })
    }

    /// A registered query moving to `to`.
    pub fn move_query(id: QueryId, to: NetPoint) -> Self {
        UpdateEvent::Query(QueryEvent::Move { id, to })
    }

    /// A registered query terminating.
    pub fn remove_query(id: QueryId) -> Self {
        UpdateEvent::Query(QueryEvent::Remove { id })
    }

    /// An edge-weight change to an absolute `new_weight`.
    pub fn edge(edge: EdgeId, new_weight: f64) -> Self {
        UpdateEvent::Edge(EdgeWeightUpdate { edge, new_weight })
    }

    /// The id of the entity this event concerns, for per-entity routing
    /// and coalescing: object and query ids in their own planes, edge ids
    /// in theirs.
    pub fn lane_key(&self) -> u64 {
        match self {
            UpdateEvent::Object(
                ObjectEvent::Insert { id, .. }
                | ObjectEvent::Move { id, .. }
                | ObjectEvent::Delete { id },
            ) => id.0 as u64,
            UpdateEvent::Query(
                QueryEvent::Install { id, .. }
                | QueryEvent::Move { id, .. }
                | QueryEvent::Remove { id },
            ) => id.0 as u64,
            UpdateEvent::Edge(EdgeWeightUpdate { edge, .. }) => edge.0 as u64,
        }
    }
}

/// Everything that happens in one timestamp.
///
/// §4.5: if an entity issues several updates in one timestamp they are
/// coalesced (first old value, last new value) before processing; the
/// monitors perform that preprocessing internally, so batches may contain
/// multiple events per entity.
///
/// The event `Vec`s are public for zero-copy construction by the engine's
/// drain paths, but producers should prefer the [`Self::push_object`] /
/// [`Self::push_query`] / [`Self::push_edge`] / [`Self::push`]
/// constructors over reaching into the fields directly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch {
    /// Object movements / appearances / disappearances.
    pub objects: Vec<ObjectEvent>,
    /// Query movements / installations / terminations.
    pub queries: Vec<QueryEvent>,
    /// Edge weight changes.
    pub edges: Vec<EdgeWeightUpdate>,
}

impl UpdateBatch {
    /// Whether the batch carries no events at all.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty() && self.queries.is_empty() && self.edges.is_empty()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.objects.len() + self.queries.len() + self.edges.len()
    }

    /// Appends an object event.
    pub fn push_object(&mut self, ev: ObjectEvent) {
        self.objects.push(ev);
    }

    /// Appends a query event.
    pub fn push_query(&mut self, ev: QueryEvent) {
        self.queries.push(ev);
    }

    /// Appends an edge-weight update.
    pub fn push_edge(&mut self, ev: EdgeWeightUpdate) {
        self.edges.push(ev);
    }

    /// Appends one [`UpdateEvent`] to the matching event plane.
    pub fn push(&mut self, ev: UpdateEvent) {
        match ev {
            UpdateEvent::Object(e) => self.objects.push(e),
            UpdateEvent::Query(e) => self.queries.push(e),
            UpdateEvent::Edge(e) => self.edges.push(e),
        }
    }

    /// Empties the batch while keeping the allocated capacity, so a
    /// per-tick batch can be reused without reallocating.
    pub fn clear(&mut self) {
        self.objects.clear();
        self.queries.clear();
        self.edges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_sorting_is_deterministic() {
        let mut v = vec![
            Neighbor {
                object: ObjectId(5),
                dist: 2.0,
            },
            Neighbor {
                object: ObjectId(1),
                dist: 2.0,
            },
            Neighbor {
                object: ObjectId(9),
                dist: 1.0,
            },
        ];
        sort_neighbors(&mut v);
        assert_eq!(v[0].object, ObjectId(9));
        assert_eq!(v[1].object, ObjectId(1));
        assert_eq!(v[2].object, ObjectId(5));
    }

    #[test]
    fn batch_len_and_emptiness() {
        let mut b = UpdateBatch::default();
        assert!(b.is_empty());
        b.push_object(ObjectEvent::Delete { id: ObjectId(1) });
        b.push_edge(EdgeWeightUpdate {
            edge: EdgeId(0),
            new_weight: 2.0,
        });
        assert!(!b.is_empty());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn push_routes_update_events_to_the_matching_plane() {
        let mut b = UpdateBatch::default();
        b.push(UpdateEvent::Object(ObjectEvent::Delete { id: ObjectId(7) }));
        b.push(UpdateEvent::Query(QueryEvent::Remove { id: QueryId(3) }));
        b.push(UpdateEvent::Edge(EdgeWeightUpdate {
            edge: EdgeId(2),
            new_weight: 1.5,
        }));
        assert_eq!(b.objects.len(), 1);
        assert_eq!(b.queries.len(), 1);
        assert_eq!(b.edges.len(), 1);
        let cap = (
            b.objects.capacity(),
            b.queries.capacity(),
            b.edges.capacity(),
        );
        b.clear();
        assert!(b.is_empty());
        assert_eq!(
            cap,
            (
                b.objects.capacity(),
                b.queries.capacity(),
                b.edges.capacity()
            )
        );
    }

    #[test]
    fn rootpos_edge_accessor() {
        let p = RootPos::Point(NetPoint::new(EdgeId(3), 0.5));
        assert_eq!(p.edge(), Some(EdgeId(3)));
        assert_eq!(RootPos::Node(NodeId(1)).edge(), None);
    }
}
