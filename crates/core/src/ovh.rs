//! **OVH** — the overhaul baseline (§6).
//!
//! > "As a benchmark against IMA and GMA, we use an overhaul method (OVH)
//! > that computes each query from scratch at every timestamp, using the
//! > algorithm of Figure 2."
//!
//! OVH maintains no expansion trees and no influence lists between
//! timestamps; it simply re-runs the initial-result computation for every
//! registered query whenever anything (or nothing) happens.

use std::sync::Arc;
use std::time::Instant;

use rnn_roadnet::{DijkstraEngine, FxHashMap, NetPoint, QueryId, RoadNetwork};

use crate::counters::{MemoryUsage, OpCounters, TickReport};
use crate::monitor::ContinuousMonitor;
use crate::search::{knn_search, BestK, SearchContext};
use crate::state::NetworkState;
use crate::tree::TreePool;
use crate::types::{Neighbor, ObjectEvent, QueryEvent, RootPos, UpdateBatch, UpdateEvent};

struct OvhQuery {
    k: usize,
    pos: NetPoint,
    result: Vec<Neighbor>,
    knn_dist: f64,
}

/// The from-scratch baseline monitor.
pub struct Ovh {
    net: Arc<RoadNetwork>,
    state: NetworkState,
    queries: FxHashMap<QueryId, OvhQuery>,
    engine: DijkstraEngine,
    /// Candidate scratch reused by every from-scratch recomputation.
    best: BestK,
    /// Tree arena: OVH discards each search's expansion tree immediately,
    /// so successive recomputations recycle the same slots and run
    /// allocation-free in steady state.
    pool: TreePool,
}

impl Ovh {
    /// Creates an OVH server over `net` with base weights and no objects.
    pub fn new(net: Arc<RoadNetwork>) -> Self {
        let state = NetworkState::new(&net);
        let engine = DijkstraEngine::new(net.num_nodes());
        Self {
            net,
            state,
            // lint: allow(hot-path-alloc): allocation at construction/install time; steady-state ticks only reuse this capacity (runtime gate pins alloc_events at 0)
            queries: FxHashMap::default(),
            engine,
            best: BestK::default(),
            pool: TreePool::new(),
        }
    }

    /// Like [`Self::new`], with the scratch tree pool pre-provisioned.
    /// OVH runs its from-scratch searches sequentially and releases each
    /// tree immediately, so at most a couple of spare trees are ever
    /// needed regardless of `hint`; the hint only toggles the warm-up.
    pub fn with_tree_pool_hint(net: Arc<RoadNetwork>, hint: usize) -> Self {
        let mut m = Self::new(net);
        m.pool
            .prewarm(hint.min(2), TreePool::PREWARM_NODES_PER_TREE);
        m
    }

    fn recompute(&mut self, id: QueryId, counters: &mut OpCounters) -> bool {
        let q = self.queries.get_mut(&id).expect("query registered");
        let ctx = SearchContext {
            net: &self.net,
            weights: &self.state.weights,
            objects: &self.state.objects,
        };
        counters.reevaluations += 1;
        let out = knn_search(
            &ctx,
            &mut self.engine,
            &mut self.best,
            &mut self.pool,
            RootPos::Point(q.pos),
            q.k,
            None,
            &[],
            counters,
        );
        let changed = out.result != q.result;
        q.result = out.result;
        q.knn_dist = out.knn_dist;
        // OVH keeps no state between timestamps: the tree goes straight
        // back to the pool, where the next recomputation reuses its slots.
        self.pool.release(out.tree);
        changed
    }
}

impl ContinuousMonitor for Ovh {
    fn name(&self) -> &'static str {
        "OVH"
    }

    fn apply(&mut self, event: UpdateEvent) -> TickReport {
        match event {
            UpdateEvent::Object(ObjectEvent::Insert { id, at }) => {
                self.state.objects.insert(id, at);
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Install { id, k, at }) => {
                self.state.queries.insert(id, (k, at));
                self.queries.insert(
                    id,
                    OvhQuery {
                        k,
                        pos: at,
                        // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
                        result: Vec::new(),
                        knn_dist: f64::INFINITY,
                    },
                );
                let mut c = OpCounters::default();
                self.recompute(id, &mut c);
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Remove { id }) => {
                self.state.queries.remove(&id);
                self.queries.remove(&id);
                TickReport::default()
            }
            other => {
                let mut batch = UpdateBatch::default();
                batch.push(other);
                self.tick(&batch)
            }
        }
    }

    fn tick(&mut self, batch: &UpdateBatch) -> TickReport {
        let start = Instant::now();
        let mut counters = OpCounters::default();
        let deltas = self.state.apply_batch(batch);
        // Track query membership/position changes.
        for d in &deltas.queries {
            match (d.old, d.new) {
                (_, Some((k, at))) => {
                    let entry = self.queries.entry(d.id).or_insert(OvhQuery {
                        k,
                        pos: at,
                        // lint: allow(hot-path-alloc): the OVH baseline recomputes from scratch every tick by definition; its allocations are the cost the paper's figures measure against
                        result: Vec::new(),
                        knn_dist: f64::INFINITY,
                    });
                    entry.k = k;
                    entry.pos = at;
                }
                (Some(_), None) => {
                    self.queries.remove(&d.id);
                }
                (None, None) => {}
            }
        }
        // Recompute everything from scratch.
        let ids: Vec<QueryId> = {
            // lint: allow(hot-path-alloc): the OVH baseline recomputes from scratch every tick by definition; its allocations are the cost the paper's figures measure against
            let mut v: Vec<QueryId> = self.queries.keys().copied().collect();
            v.sort();
            v
        };
        let mut results_changed = 0;
        for id in ids {
            if self.recompute(id, &mut counters) {
                results_changed += 1;
            }
        }
        counters.alloc_events += self.engine.take_alloc_events()
            + self.state.objects.take_alloc_events()
            + self.best.take_alloc_events()
            + self.pool.take_alloc_events();
        counters.expansion_steps += self.engine.take_expansion_steps();
        counters.tree_nodes_recycled += self.pool.take_recycled();
        TickReport {
            elapsed: start.elapsed(),
            results_changed,
            counters,
        }
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|q| q.result.as_slice())
    }

    fn knn_dist(&self, id: QueryId) -> Option<f64> {
        self.queries.get(&id).map(|q| q.knn_dist)
    }

    fn query_ids(&self) -> Vec<QueryId> {
        // lint: allow(hot-path-alloc): introspection helper for tests and benches, not called from the tick path
        self.queries.keys().copied().collect()
    }

    fn memory(&self) -> MemoryUsage {
        let query_table: usize = self
            .queries
            .values()
            .map(|q| {
                std::mem::size_of::<OvhQuery>()
                    + q.result.capacity() * std::mem::size_of::<Neighbor>()
            })
            .sum();
        MemoryUsage {
            edge_table: self.state.memory_bytes(),
            query_table,
            expansion_trees: 0,
            influence_lists: 0,
            auxiliary: self.engine.memory_bytes()
                + self.best.memory_bytes()
                + self.pool.memory_bytes(),
        }
    }

    fn snapshot_state(&self) -> Option<crate::snapshot::MonitorState> {
        Some(crate::snapshot::MonitorState::capture(
            &self.net,
            &self.state,
            |q| match self.queries.get(&q) {
                Some(rec) => (rec.knn_dist, rec.result.clone()),
                // lint: allow(hot-path-alloc): snapshot capture is maintenance-path, not a steady-state tick
                None => (f64::INFINITY, Vec::new()),
            },
        ))
    }
}

/// Convenience: batches often install queries mid-stream; OVH accepts them
/// through [`UpdateBatch::queries`] as well.
impl Ovh {
    /// Applies a single query event outside a tick (used in tests).
    pub fn apply_query_event(&mut self, ev: QueryEvent) {
        let batch = UpdateBatch {
            // lint: allow(hot-path-alloc): query installation is the declared install path; its allocations are tracked separately as install_alloc_events
            queries: vec![ev],
            ..Default::default()
        };
        self.tick(&batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{EdgeWeightUpdate, ObjectEvent};
    use rnn_roadnet::{generators, EdgeId, ObjectId};

    fn setup() -> Ovh {
        let net = Arc::new(generators::line_network(6, 1.0));
        let mut ovh = Ovh::new(net.clone());
        for e in net.edge_ids() {
            ovh.apply(UpdateEvent::insert_object(
                ObjectId(e.0),
                NetPoint::new(e, 0.5),
            ));
        }
        ovh
    }

    #[test]
    fn initial_result_and_queries() {
        let mut ovh = setup();
        ovh.apply(UpdateEvent::install_query(
            QueryId(1),
            2,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        let r = ovh.result(QueryId(1)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].object, ObjectId(2));
        assert_eq!(ovh.query_ids(), vec![QueryId(1)]);
        assert!((ovh.knn_dist(QueryId(1)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recomputes_every_tick() {
        let mut ovh = setup();
        ovh.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        let rep = ovh.tick(&UpdateBatch::default());
        // Even an empty tick recomputes (that is the point of the baseline).
        assert_eq!(rep.counters.reevaluations, 1);
        assert_eq!(rep.results_changed, 0);
    }

    #[test]
    fn reflects_object_and_edge_updates() {
        let mut ovh = setup();
        ovh.apply(UpdateEvent::install_query(
            QueryId(1),
            1,
            NetPoint::new(EdgeId(0), 0.25),
        ));
        assert_eq!(ovh.result(QueryId(1)).unwrap()[0].object, ObjectId(0));
        let rep = ovh.tick(&UpdateBatch {
            objects: vec![ObjectEvent::Delete { id: ObjectId(0) }],
            edges: vec![EdgeWeightUpdate {
                edge: EdgeId(1),
                new_weight: 0.1,
            }],
            ..Default::default()
        });
        assert_eq!(rep.results_changed, 1);
        let r = ovh.result(QueryId(1)).unwrap();
        assert_eq!(r[0].object, ObjectId(1));
        assert!((r[0].dist - 0.8).abs() < 1e-12);
    }

    #[test]
    fn query_install_and_remove_via_batch() {
        let mut ovh = setup();
        ovh.apply_query_event(QueryEvent::Install {
            id: QueryId(5),
            k: 1,
            at: NetPoint::new(EdgeId(4), 0.5),
        });
        assert!(ovh.result(QueryId(5)).is_some());
        ovh.apply_query_event(QueryEvent::Remove { id: QueryId(5) });
        assert!(ovh.result(QueryId(5)).is_none());
    }

    #[test]
    fn memory_reports_nonzero() {
        let ovh = setup();
        assert!(ovh.memory().total_bytes() > 0);
        assert_eq!(ovh.memory().expansion_trees, 0, "OVH stores no trees");
    }
}
