//! The common interface of all continuous-monitoring algorithms.

use rnn_roadnet::{EdgeId, NetPoint, ObjectId, QueryId};

use crate::counters::{MemoryUsage, TickReport};
use crate::types::{Neighbor, ObjectEvent, QueryEvent, UpdateBatch, UpdateEvent};

/// A continuous k-NN monitoring server (§1: "a central server that monitors
/// the positions of CkNN queries and objects, as well as the current edge
/// weights [...] The task of the server is to continuously compute and
/// update the result of each query").
///
/// Implementations: [`crate::Ovh`] (baseline), [`crate::Ima`] (§4),
/// [`crate::Gma`] (§5).
///
/// Monitors are `Send` so that a sharded engine can move each one onto its
/// own worker thread (all state is owned; the only shared piece is the
/// immutable `Arc<RoadNetwork>`).
pub trait ContinuousMonitor: Send {
    /// Algorithm name (for experiment reports).
    fn name(&self) -> &'static str;

    /// Applies one out-of-band [`UpdateEvent`] immediately — the single
    /// submission entry point that replaced the historical
    /// `insert_object` / `install_query` / `remove_query` trio.
    ///
    /// The default implementation wraps the event into a singleton
    /// [`UpdateBatch`] and runs [`Self::tick`]; monitors with cheaper
    /// out-of-band paths (e.g. an install that skips full-tick
    /// bookkeeping) override it. High-volume producers should not call
    /// this per event in steady state: batch through an ingest stage (see
    /// `rnn_engine::ingest`) or build an [`UpdateBatch`] and [`Self::tick`]
    /// once per timestamp.
    fn apply(&mut self, event: UpdateEvent) -> TickReport {
        let mut batch = UpdateBatch::default();
        batch.push(event);
        self.tick(&batch)
    }

    /// Registers a data object at its initial position.
    #[deprecated(
        since = "0.9.0",
        note = "submit `UpdateEvent::Object(ObjectEvent::Insert { .. })` via `apply` \
                (or an `UpdateBatch` via `tick`) instead"
    )]
    fn insert_object(&mut self, id: ObjectId, at: NetPoint) {
        self.apply(UpdateEvent::Object(ObjectEvent::Insert { id, at }));
    }

    /// Installs a continuous `k`-NN query and computes its initial result.
    #[deprecated(
        since = "0.9.0",
        note = "submit `UpdateEvent::Query(QueryEvent::Install { .. })` via `apply` \
                (or an `UpdateBatch` via `tick`) instead"
    )]
    fn install_query(&mut self, id: QueryId, k: usize, at: NetPoint) {
        self.apply(UpdateEvent::Query(QueryEvent::Install { id, k, at }));
    }

    /// Terminates a query.
    #[deprecated(
        since = "0.9.0",
        note = "submit `UpdateEvent::Query(QueryEvent::Remove { .. })` via `apply` \
                (or an `UpdateBatch` via `tick`) instead"
    )]
    fn remove_query(&mut self, id: QueryId) {
        self.apply(UpdateEvent::Query(QueryEvent::Remove { id }));
    }

    /// Processes one timestamp of updates and refreshes all affected
    /// results.
    fn tick(&mut self, batch: &UpdateBatch) -> TickReport;

    /// The current k-NN set of a query, sorted by `(dist, id)`.
    fn result(&self, id: QueryId) -> Option<&[Neighbor]>;

    /// The current `kNN_dist` of a query (distance of its k-th neighbor;
    /// `∞` while fewer than k objects are reachable).
    fn knn_dist(&self, id: QueryId) -> Option<f64>;

    /// Ids of all registered queries (arbitrary order).
    fn query_ids(&self) -> Vec<QueryId>;

    /// Resident-memory breakdown (Fig. 18).
    fn memory(&self) -> MemoryUsage;

    /// For shared-execution monitors, the number of grouping units
    /// currently maintained (GMA's active nodes; the paper reports these
    /// counts, e.g. "GMA monitors only 844 active nodes on the average").
    /// `None` for per-query monitors.
    fn active_groups(&self) -> Option<usize> {
        None
    }

    /// For sharded monitors, the current max/mean ratio of the per-shard
    /// load estimates (1.0 = perfectly balanced). `None` for single
    /// monitors, for single-shard engines, and before any load has been
    /// observed. The benchmark harness reports this for the rebalance
    /// figure.
    fn shard_load_ratio(&self) -> Option<f64> {
        None
    }

    /// Drains the expansion work the monitor attributed to individual
    /// partition cells since the last drain into `into`: `(cell edge of
    /// the expansion root, Dijkstra steps)` per network expansion. The
    /// sharded engine's rebalance planner folds these into per-cell load
    /// estimates so candidate border cells are ranked by *true* cost
    /// rather than resident-entity counts. The monitor's internal buffer
    /// keeps its capacity across drains. Monitors without attribution
    /// append nothing (the planner then falls back to entity counts).
    fn drain_cell_charges(&mut self, into: &mut Vec<(EdgeId, u64)>) {
        let _ = into;
    }

    /// For distributed monitors, the cumulative transport-level counters
    /// of the links to their shard processes. `None` for in-process
    /// monitors. The benchmark harness reports these for the cluster
    /// figure (frames/bytes per tick, retries).
    fn transport_stats(&self) -> Option<TransportStats> {
        None
    }

    /// Captures the monitor's answer-relevant state for durability
    /// (weights, objects, query book, current results — see
    /// [`crate::snapshot::MonitorState`]). `None` for monitors without
    /// snapshot support (the cluster then falls back to full journal
    /// replay for that shard).
    fn snapshot_state(&self) -> Option<crate::snapshot::MonitorState> {
        None
    }
}

/// Cumulative counters of a coordinator↔shard transport link (or the sum
/// over all of a cluster's links). All counts are since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames written to the wire (including retransmissions and replay).
    pub frames_sent: u64,
    /// Frames read off the wire (including duplicates and stale replies).
    pub frames_received: u64,
    /// Bytes written to the wire.
    pub bytes_sent: u64,
    /// Bytes read off the wire.
    pub bytes_received: u64,
    /// Request retransmissions after a timeout or a corrupt/stale reply.
    pub retries: u64,
    /// Received frames dropped because their checksum (or framing) was
    /// invalid.
    pub corrupt_frames: u64,
    /// Shard processes respawned and replayed after a detected crash.
    pub crash_recoveries: u64,
    /// Event frames currently retained in the coordinator's in-memory
    /// journal (a gauge; truncated behind each acknowledged snapshot).
    pub journal_len: u64,
    /// Bytes currently held in the shard's on-disk write-ahead log (a
    /// gauge; 0 when durability is disabled or disk-less).
    pub wal_bytes: u64,
    /// Size of the latest monitor-state snapshot payload in bytes (a
    /// gauge; 0 before the first snapshot).
    pub snapshot_bytes: u64,
    /// Monitor-state snapshots taken since construction.
    pub snapshots: u64,
    /// Journaled event frames replayed into respawned shards across all
    /// crash recoveries. With snapshots enabled this is bounded by the
    /// WAL suffix since the last snapshot, not the run length.
    pub frames_replayed: u64,
    /// Event frames appended to follower replicas (one count per
    /// follower per event; 0 when replication is disabled).
    pub replica_appends: u64,
    /// Bytes shipped to follower replicas over append, heartbeat, and
    /// snapshot-offer frames.
    pub replica_bytes: u64,
    /// Sum over all appends of the frames outstanding (appended but not
    /// yet quorum-acked) when each append committed. With the
    /// synchronous append pipeline this is exactly one per replicated
    /// event frame, which makes the per-tick rate a deterministic,
    /// gateable constant.
    pub commit_lag_frames: u64,
    /// Replication frames rejected by a replica because they carried a
    /// stale leadership epoch (the stale-leader fencing path).
    pub fenced_appends: u64,
    /// Follower replicas promoted to serving leader after the primary
    /// shard died past its retry and recovery budgets.
    pub failovers: u64,
    /// Heartbeat probes sent to follower replicas.
    pub heartbeats: u64,
}

impl TransportStats {
    /// Adds `other` into `self` (per-link stats → cluster totals).
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.retries += other.retries;
        self.corrupt_frames += other.corrupt_frames;
        self.crash_recoveries += other.crash_recoveries;
        self.journal_len += other.journal_len;
        self.wal_bytes += other.wal_bytes;
        self.snapshot_bytes += other.snapshot_bytes;
        self.snapshots += other.snapshots;
        self.frames_replayed += other.frames_replayed;
        self.replica_appends += other.replica_appends;
        self.replica_bytes += other.replica_bytes;
        self.commit_lag_frames += other.commit_lag_frames;
        self.fenced_appends += other.fenced_appends;
        self.failovers += other.failovers;
        self.heartbeats += other.heartbeats;
    }
}
