//! Expansion trees (§3, §4), pooled.
//!
//! > "The expansion tree of q is a tree rooted at q that contains the
//! > shortest path between q and every node in the network with distance
//! > less than or equal to q.kNN_dist."
//!
//! The tree is the incremental-maintenance workhorse of IMA: update
//! handling prunes the invalidated part and re-expands from what remains.
//! That surgery — subtree cuts, θ-prunes, re-roots, re-expansion inserts —
//! runs on the per-tick critical path, so its data layout matters as much
//! as the read paths PR 3 flattened.
//!
//! # Arena-of-trees layout
//!
//! All trees of one monitor share a single [`TreePool`]: a slab of
//! fixed-size **intrusive** nodes (`dist`, verified network node, parent
//! slot + connecting edge, `first_child`/`next_sibling`/`prev_sibling`
//! links) backed by an [`rnn_roadnet::SlotPool`] with a free list. An
//! [`ExpansionTree`] is a lightweight handle: the head of its root chain
//! plus a private **epoch-stamped open-addressing directory** mapping
//! `NodeId → slot` (the same trick as the `BestK` dedup scratch — flat
//! array, Fibonacci-hashed probes, O(1) whole-tree invalidation by bumping
//! the epoch). Consequences:
//!
//! * membership/distance lookups are one short array probe, no hashing
//!   through a general-purpose map;
//! * inserting a node pops the free list — no per-node heap allocation,
//!   no per-node `children` vector;
//! * removing a subtree is pointer unlinking plus free-list pushes, with a
//!   stackless post-order walk (freed slots stay readable until they are
//!   re-allocated, and nothing allocates mid-walk);
//! * clearing or re-rooting invalidates the directory in O(1) via the
//!   epoch stamp instead of deleting entries one by one;
//! * released directories are recycled through the pool, so steady-state
//!   searches build their outcome trees entirely in reused capacity.
//!
//! The only true allocations are slab growth and directory growth, both
//! amortised and both counted — they surface through
//! [`crate::counters::OpCounters::alloc_events`], extending the zero-alloc
//! steady-state guarantee from read-only ticks to ticks that perform tree
//! surgery. Free-list reuses are counted separately
//! ([`crate::counters::OpCounters::tree_nodes_recycled`]).
//!
//! Distances are monotonically non-decreasing from parent to child (edge
//! weights are positive), which several pruning operations rely on. The
//! root itself (a query point or an active node) is implicit; nodes whose
//! parent slot is [`NIL`] hang directly off the root.

use rnn_roadnet::{EdgeId, NodeId, RoadNetwork, SlotPool};

/// Sentinel for "no slot" in the intrusive links.
pub const NIL: u32 = u32::MAX;

/// One pooled, intrusive expansion-tree node.
#[derive(Clone, Copy, Debug)]
struct PoolNode {
    /// Network distance from the (implicit) root.
    dist: f64,
    /// The verified network node this slot represents.
    node: NodeId,
    /// Parent slot, [`NIL`] when attached directly to the root.
    parent: u32,
    /// Edge connecting to the parent (disambiguates parallel edges);
    /// meaningless when `parent == NIL`.
    parent_edge: EdgeId,
    /// Head of the child chain.
    first_child: u32,
    /// Next sibling in the parent's child chain (or in the root chain).
    next_sibling: u32,
    /// Previous sibling (doubly linked for O(1) unlink).
    prev_sibling: u32,
}

/// One slot of a tree's `NodeId → slot` directory.
#[derive(Clone, Copy, Debug)]
struct DirEntry {
    /// Epoch the entry was written in (0 = never; epochs start at 1).
    stamp: u32,
    /// Key: the network node.
    node: u32,
    /// Value: the pool slot holding the node's record.
    slot: u32,
}

const EMPTY_DIR: DirEntry = DirEntry {
    stamp: 0,
    node: 0,
    slot: NIL,
};

/// Smallest directory capacity carved for a tree's first node.
const MIN_DIR: usize = 16;

/// The monitor-wide arena all expansion trees of one [`crate::anchor::AnchorSet`]
/// (or one OVH monitor) live in. See the module docs for the layout.
#[derive(Default)]
pub struct TreePool {
    slots: SlotPool<PoolNode>,
    /// Directories of released trees, recycled into new trees together
    /// with the epoch their stamps are valid up to.
    spare_dirs: Vec<(Vec<DirEntry>, u32)>,
    /// Directory growth events (slab growth is counted inside the slot
    /// pool).
    allocs: u64,
}

/// A pooled expansion tree: the set of verified nodes with their
/// shortest-path links, stored as a handle into a [`TreePool`].
///
/// All mutating operations live on [`TreePool`] (they need the shared
/// slab); reads that only touch the directory ([`Self::contains`],
/// [`Self::len`]) need no pool reference. A non-empty tree must be given
/// back via [`TreePool::release`] (or consumed by a search as the kept
/// tree) — dropping the handle leaks its slots until the pool itself goes
/// away, which [`TreePool::live_nodes`]-based validation catches in tests.
#[derive(Debug)]
pub struct ExpansionTree {
    /// Head of the chain of nodes attached directly to the implicit root.
    first_root: u32,
    /// Number of verified nodes.
    len: u32,
    /// Entries live in the directory's current epoch (equals `len` except
    /// transiently inside a re-root walk).
    dir_live: u32,
    /// Current directory epoch; entries with an older stamp read as empty.
    epoch: u32,
    /// Open-addressing `NodeId → slot` directory, power-of-two sized.
    dir: Vec<DirEntry>,
}

impl Default for ExpansionTree {
    fn default() -> Self {
        Self {
            first_root: NIL,
            len: 0,
            dir_live: 0,
            epoch: 1,
            // lint: allow(hot-path-alloc): Vec::new/Fx*::default allocate nothing; first growth is charged to alloc_events, which the CI gate pins at zero in steady state
            dir: Vec::new(),
        }
    }
}

impl ExpansionTree {
    /// An empty tree with no directory capacity. Prefer
    /// [`TreePool::new_tree`], which recycles a released directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of verified nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the tree has no verified nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Directory slot index to probe first for `node` (Fibonacci hashing,
    /// as in `BestK`).
    #[inline]
    fn home(&self, node: u32) -> usize {
        debug_assert!(self.dir.len().is_power_of_two());
        let h = u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.dir.len().trailing_zeros())) as usize
    }

    /// The pool slot of `n`, if verified. One short linear probe.
    #[inline]
    fn slot_of(&self, n: NodeId) -> Option<u32> {
        if self.dir.is_empty() {
            return None;
        }
        let mask = self.dir.len() - 1;
        let mut i = self.home(n.0);
        loop {
            let e = self.dir[i];
            if e.stamp != self.epoch {
                return None;
            }
            if e.node == n.0 {
                return Some(e.slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Whether `n` is verified. Directory-only — needs no pool reference.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.slot_of(n).is_some()
    }

    /// The distance of `n` if verified.
    #[inline]
    pub fn dist(&self, pool: &TreePool, n: NodeId) -> Option<f64> {
        self.slot_of(n).map(|s| pool.slots[s].dist)
    }

    /// The tree link of `n`: `Some(None)` when `n` hangs directly off the
    /// root, `Some(Some((parent, edge)))` otherwise, `None` when `n` is not
    /// verified.
    #[inline]
    pub fn parent_of(&self, pool: &TreePool, n: NodeId) -> Option<Option<(NodeId, EdgeId)>> {
        let rec = pool.slots[self.slot_of(n)?];
        Some(if rec.parent == NIL {
            None
        } else {
            Some((pool.slots[rec.parent].node, rec.parent_edge))
        })
    }

    /// The children of `n` as `(child, connecting edge)` pairs (tests and
    /// debugging — allocates).
    pub fn children_of(&self, pool: &TreePool, n: NodeId) -> Vec<(NodeId, EdgeId)> {
        // lint: allow(hot-path-alloc): children_of is a test/debug traversal helper, not on the tick path
        let mut out = Vec::new();
        let Some(s) = self.slot_of(n) else {
            return out;
        };
        let mut c = pool.slots[s].first_child;
        while c != NIL {
            let rec = pool.slots[c];
            out.push((rec.node, rec.parent_edge));
            c = rec.next_sibling;
        }
        out
    }

    /// Iterates over `(node, dist)` pairs in preorder (stackless — walks
    /// the intrusive links).
    pub fn iter<'a>(&'a self, pool: &'a TreePool) -> TreeIter<'a> {
        TreeIter {
            pool,
            cur: self.first_root,
        }
    }

    /// If edge `e` is a tree link, returns the child-side node of that link.
    pub fn link_child_of_edge(
        &self,
        pool: &TreePool,
        net: &RoadNetwork,
        e: EdgeId,
    ) -> Option<NodeId> {
        let rec = net.edge(e);
        for n in [rec.start, rec.end] {
            if let Some(s) = self.slot_of(n) {
                let t = pool.slots[s];
                if t.parent != NIL && t.parent_edge == e {
                    return Some(n);
                }
            }
        }
        None
    }

    /// Invalidates the whole directory in O(1) by bumping the epoch (with
    /// a physical wipe once every 2^32 bumps so stale stamps never alias).
    fn bump_epoch(&mut self) {
        self.dir_live = 0;
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.dir.fill(EMPTY_DIR);
                1
            }
        };
    }

    /// Registers `n → slot`, growing the directory (a counted alloc event,
    /// unless a big-enough spare buffer is available) when it would exceed
    /// half occupancy.
    fn dir_insert(
        &mut self,
        n: NodeId,
        slot: u32,
        allocs: &mut u64,
        spares: &mut Vec<(Vec<DirEntry>, u32)>,
    ) {
        if (self.dir_live as usize + 1) * 2 > self.dir.len() {
            self.dir_grow(allocs, spares);
        }
        let mask = self.dir.len() - 1;
        let mut i = self.home(n.0);
        while self.dir[i].stamp == self.epoch {
            debug_assert_ne!(self.dir[i].node, n.0, "directory double insert");
            i = (i + 1) & mask;
        }
        self.dir[i] = DirEntry {
            stamp: self.epoch,
            node: n.0,
            slot,
        };
        self.dir_live += 1;
    }

    /// Doubles the directory, re-inserting only current-epoch entries.
    /// The replacement buffer comes from the pool's spare stack when a
    /// big-enough one exists (no allocation); either way the outgrown
    /// buffer goes back to the stack, so directory capacity circulates
    /// instead of being dropped and re-carved.
    #[cold]
    fn dir_grow(&mut self, allocs: &mut u64, spares: &mut Vec<(Vec<DirEntry>, u32)>) {
        let need = (self.dir.len() * 2).max(MIN_DIR);
        let reuse = spares
            .iter()
            .position(|(d, _)| d.len() >= need)
            .map(|i| spares.swap_remove(i));
        let mut fresh = match reuse {
            Some((d, _)) => d, // stale stamps are fine: wiped below
            None => {
                *allocs += 1;
                // lint: allow(hot-path-alloc): amortized capacity growth; counted by alloc_events and pinned by the zero-alloc CI gate
                vec![EMPTY_DIR; need]
            }
        };
        fresh.fill(EMPTY_DIR);
        let old = std::mem::replace(&mut self.dir, fresh);
        let mask = self.dir.len() - 1;
        for &e in &old {
            if e.stamp != self.epoch {
                continue;
            }
            let mut i = self.home(e.node);
            while self.dir[i].stamp == self.epoch {
                i = (i + 1) & mask;
            }
            self.dir[i] = e;
        }
        if old.capacity() > 0 {
            spares.push((old, self.epoch));
        }
    }

    /// Deletes `n` from the directory with backward-shift compaction (no
    /// tombstones, so probe chains stay tight under surgery churn).
    fn dir_remove(&mut self, n: NodeId) {
        debug_assert!(!self.dir.is_empty());
        let mask = self.dir.len() - 1;
        let mut i = self.home(n.0);
        loop {
            let e = self.dir[i];
            debug_assert_eq!(e.stamp, self.epoch, "directory remove of absent node");
            if e.node == n.0 {
                break;
            }
            i = (i + 1) & mask;
        }
        // Backward-shift: pull every displaced entry of the cluster into
        // the hole if its home position permits.
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let e = self.dir[j];
            if e.stamp != self.epoch {
                break;
            }
            let h = self.home(e.node);
            // Entry at `j` may move to the hole at `i` iff its home lies
            // cyclically at or before `i` (standard linear-probing rule).
            if (j.wrapping_sub(h) & mask) >= (j.wrapping_sub(i) & mask) {
                self.dir[i] = e;
                i = j;
            }
        }
        self.dir[i].stamp = 0;
        self.dir_live -= 1;
    }

    /// Approximate resident bytes of the handle (the shared slab is
    /// accounted once, in [`TreePool::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.dir.capacity() * std::mem::size_of::<DirEntry>()
    }
}

/// Preorder iterator over a pooled tree (see [`ExpansionTree::iter`]).
pub struct TreeIter<'a> {
    pool: &'a TreePool,
    cur: u32,
}

impl Iterator for TreeIter<'_> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<(NodeId, f64)> {
        if self.cur == NIL {
            return None;
        }
        let rec = self.pool.slots[self.cur];
        self.cur = if rec.first_child != NIL {
            rec.first_child
        } else if rec.next_sibling != NIL {
            rec.next_sibling
        } else {
            self.pool.climb(rec.parent)
        };
        Some((rec.node, rec.dist))
    }
}

impl TreePool {
    /// Default nodes-per-tree estimate the monitors' tree-pool sizing
    /// hints use for [`Self::prewarm`]: enough for a moderate-`k` query's
    /// verified neighborhood (a 128-entry directory under the
    /// half-occupancy rule) while staying cheap when over-provisioned —
    /// an undersized tree just pays its usual counted growth steps later.
    pub const PREWARM_NODES_PER_TREE: usize = 64;

    /// An empty pool (allocates nothing until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-provisions the pool for `trees` concurrent trees of about
    /// `nodes_per_tree` verified nodes each: tops the spare-directory
    /// stack up to `trees` buffers big enough to hold that many nodes
    /// under the half-occupancy growth rule, and reserves matching slab
    /// capacity. Deliberate construction-time warm-up (a monitor built
    /// with a tree-pool sizing hint), so **none of it counts as an alloc
    /// event** — the spare population otherwise adapts via one-time
    /// counted allocations during the first ticks.
    pub fn prewarm(&mut self, trees: usize, nodes_per_tree: usize) {
        if trees == 0 {
            return;
        }
        let nodes = nodes_per_tree.max(1);
        // `dir_insert` grows when (live + 1) * 2 > len, so `2 * nodes`
        // capacity (a power of two — directories are masked) holds the
        // whole tree without a growth step.
        let dir_len = (nodes * 2).next_power_of_two().max(MIN_DIR);
        while self.spare_dirs.len() < trees {
            // lint: allow(hot-path-alloc): prewarm seeds spare node capacity at install time, before any tick runs
            self.spare_dirs.push((vec![EMPTY_DIR; dir_len], 0));
        }
        self.slots.reserve(trees * nodes);
    }

    /// A fresh tree handle, reusing a released directory when one exists
    /// (the recycled stamps are invalidated by an epoch bump, not a wipe).
    /// The *largest* spare is taken so the new tree grows — and allocates —
    /// as rarely as possible.
    pub fn new_tree(&mut self) -> ExpansionTree {
        let biggest = self
            .spare_dirs
            .iter()
            .enumerate()
            .max_by_key(|(_, (d, _))| d.len())
            .map(|(i, _)| i);
        match biggest.map(|i| self.spare_dirs.swap_remove(i)) {
            Some((dir, last_epoch)) => {
                let mut t = ExpansionTree {
                    first_root: NIL,
                    len: 0,
                    dir_live: 0,
                    epoch: last_epoch,
                    dir,
                };
                t.bump_epoch();
                t
            }
            None => ExpansionTree::default(),
        }
    }

    /// Frees every node of `tree` and recycles its directory.
    pub fn release(&mut self, mut tree: ExpansionTree) {
        self.clear(&mut tree);
        let dir = std::mem::take(&mut tree.dir);
        if dir.capacity() > 0 {
            self.spare_dirs.push((dir, tree.epoch));
        }
    }

    /// Live tree nodes across all trees of this pool (tests/debugging:
    /// equals the sum of the handles' `len()` iff no handle leaked).
    pub fn live_nodes(&self) -> usize {
        self.slots.live()
    }

    /// Slab + directory growth events since the last take. Zero across a
    /// tick proves the tick's tree surgery ran in reused capacity.
    pub fn take_alloc_events(&mut self) -> u64 {
        std::mem::take(&mut self.allocs) + self.slots.take_alloc_events()
    }

    /// Tree nodes served from the free list since the last take (the
    /// surgery-reuse counter surfaced as `OpCounters::tree_nodes_recycled`).
    pub fn take_recycled(&mut self) -> u64 {
        self.slots.take_recycled()
    }

    /// Approximate resident bytes of the shared slab, free list and spare
    /// directories (live handles account their own directories).
    pub fn memory_bytes(&self) -> usize {
        self.slots.memory_bytes()
            + self
                .spare_dirs
                .iter()
                .map(|(d, _)| d.capacity() * std::mem::size_of::<DirEntry>())
                .sum::<usize>()
    }

    /// Inserts a verified node. The parent (if any) must already be in the
    /// tree; it gains `n` at the head of its child chain.
    ///
    /// # Panics
    /// Panics if the node already exists or the parent is missing.
    pub fn insert(
        &mut self,
        tree: &mut ExpansionTree,
        n: NodeId,
        dist: f64,
        parent: Option<(NodeId, EdgeId)>,
    ) {
        assert!(tree.slot_of(n).is_none(), "node {n:?} inserted twice");
        let pslot = parent.map(|(p, _)| {
            tree.slot_of(p)
                .expect("parent must be verified before its children")
        });
        let slot = self.slots.alloc(PoolNode {
            dist,
            node: n,
            parent: pslot.unwrap_or(NIL),
            parent_edge: parent.map_or(EdgeId(NIL), |(_, e)| e),
            first_child: NIL,
            next_sibling: NIL,
            prev_sibling: NIL,
        });
        let head = match pslot {
            Some(p) => std::mem::replace(&mut self.slots[p].first_child, slot),
            None => std::mem::replace(&mut tree.first_root, slot),
        };
        self.slots[slot].next_sibling = head;
        if head != NIL {
            self.slots[head].prev_sibling = slot;
        }
        tree.dir_insert(n, slot, &mut self.allocs, &mut self.spare_dirs);
        tree.len += 1;
    }

    /// Detaches `s` from its sibling chain (parent child list or root
    /// chain) without touching the subtree below it.
    fn unlink(&mut self, tree: &mut ExpansionTree, s: u32) {
        let rec = self.slots[s];
        if rec.prev_sibling != NIL {
            self.slots[rec.prev_sibling].next_sibling = rec.next_sibling;
        } else if rec.parent != NIL {
            self.slots[rec.parent].first_child = rec.next_sibling;
        } else {
            tree.first_root = rec.next_sibling;
        }
        if rec.next_sibling != NIL {
            self.slots[rec.next_sibling].prev_sibling = rec.prev_sibling;
        }
    }

    /// From `p` upward, the next preorder position after a fully visited
    /// subtree (first ancestor sibling), or [`NIL`].
    fn climb(&self, mut p: u32) -> u32 {
        while p != NIL {
            let rec = self.slots[p];
            if rec.next_sibling != NIL {
                return rec.next_sibling;
            }
            p = rec.parent;
        }
        NIL
    }

    /// The next preorder position after `cur`, skipping `cur`'s subtree.
    fn advance_skip_children(&self, cur: u32) -> u32 {
        let rec = self.slots[cur];
        if rec.next_sibling != NIL {
            rec.next_sibling
        } else {
            self.climb(rec.parent)
        }
    }

    /// Frees the subtree rooted at `start` (which the caller has already
    /// unlinked, or which sits at a chain position the caller is about to
    /// forget). Stackless post-order walk: each node's record is read
    /// before its slot is pushed to the free list, and freed slots stay
    /// readable until re-allocated — nothing allocates mid-walk.
    ///
    /// With `update_dir` the freed nodes are also deleted from the
    /// directory (callers that bump the epoch instead pass `false`).
    fn free_subtree(&mut self, tree: &mut ExpansionTree, start: u32, update_dir: bool) -> usize {
        let mut count = 0usize;
        let mut cur = start;
        'outer: loop {
            while self.slots[cur].first_child != NIL {
                cur = self.slots[cur].first_child;
            }
            loop {
                let rec = self.slots[cur];
                if update_dir {
                    tree.dir_remove(rec.node);
                }
                self.slots.free(cur);
                count += 1;
                if cur == start {
                    break 'outer;
                }
                if rec.next_sibling != NIL {
                    cur = rec.next_sibling;
                    continue 'outer;
                }
                // All children of the parent are freed: clear its child
                // link (so the descent above cannot re-enter freed slots)
                // and free it next.
                cur = rec.parent;
                self.slots[cur].first_child = NIL;
            }
        }
        tree.len -= count as u32;
        count
    }

    /// Removes the subtree rooted at `n` (inclusive). Returns the number of
    /// nodes removed (0 if `n` is not in the tree).
    pub fn remove_subtree(&mut self, tree: &mut ExpansionTree, n: NodeId) -> usize {
        let Some(s) = tree.slot_of(n) else {
            return 0;
        };
        self.unlink(tree, s);
        self.free_subtree(tree, s, true)
    }

    /// Keeps only nodes with `dist <= theta`. Because distances grow along
    /// tree paths, the kept set is automatically connected to the root.
    /// Returns the number pruned.
    pub fn retain_within(&mut self, tree: &mut ExpansionTree, theta: f64) -> usize {
        let mut pruned = 0;
        let mut cur = tree.first_root;
        while cur != NIL {
            let rec = self.slots[cur];
            if rec.dist > theta {
                let next = rec.next_sibling;
                let parent = rec.parent;
                self.unlink(tree, cur);
                pruned += self.free_subtree(tree, cur, true);
                cur = if next != NIL {
                    next
                } else {
                    self.climb(parent)
                };
            } else if rec.first_child != NIL {
                cur = rec.first_child;
            } else {
                cur = self.advance_skip_children(cur);
            }
        }
        pruned
    }

    /// Re-roots the tree at the subtree of `new_sub_root`: every node
    /// outside that subtree is dropped, and the distances of the kept nodes
    /// are reduced by `shift` (`= old distance of the new root position`).
    /// The kept subtree root becomes attached directly to the (implicit)
    /// new root. Returns the number of nodes pruned.
    pub fn reroot_at_subtree(
        &mut self,
        tree: &mut ExpansionTree,
        new_sub_root: NodeId,
        shift: f64,
    ) -> usize {
        let Some(s) = tree.slot_of(new_sub_root) else {
            return self.clear(tree);
        };
        self.unlink(tree, s);
        {
            let r = &mut self.slots[s];
            r.parent = NIL;
            r.parent_edge = EdgeId(NIL);
            r.prev_sibling = NIL;
            r.next_sibling = NIL;
        }
        // Drop everything that is *not* the kept subtree. One epoch bump
        // invalidates the whole directory; the kept nodes re-register
        // during the distance-shift walk below.
        tree.bump_epoch();
        let mut pruned = 0;
        let mut root = tree.first_root;
        while root != NIL {
            let next = self.slots[root].next_sibling;
            pruned += self.free_subtree(tree, root, false);
            root = next;
        }
        tree.first_root = s;
        let mut cur = s;
        while cur != NIL {
            self.slots[cur].dist -= shift;
            let rec = self.slots[cur];
            tree.dir_insert(rec.node, cur, &mut self.allocs, &mut self.spare_dirs);
            cur = if rec.first_child != NIL {
                rec.first_child
            } else {
                self.advance_skip_children(cur)
            };
        }
        debug_assert_eq!(tree.dir_live, tree.len);
        pruned
    }

    /// Drops all nodes (the directory is invalidated in O(1) via the epoch
    /// stamp). Returns how many were removed.
    pub fn clear(&mut self, tree: &mut ExpansionTree) -> usize {
        tree.bump_epoch();
        let mut n = 0;
        let mut root = tree.first_root;
        while root != NIL {
            let next = self.slots[root].next_sibling;
            n += self.free_subtree(tree, root, false);
            root = next;
        }
        tree.first_root = NIL;
        debug_assert_eq!(tree.len, 0);
        n
    }

    /// A structural copy of `src` as a fresh tree over the same pool
    /// (allocation-free in steady state: slots pop the free list, the
    /// directory is recycled).
    pub fn clone_tree(&mut self, src: &ExpansionTree) -> ExpansionTree {
        let mut dst = self.new_tree();
        self.clone_into(&mut dst, src);
        dst
    }

    /// Replaces `dst`'s contents with a structural copy of `src`, keeping
    /// `dst`'s directory capacity — the preferred form on the tick path:
    /// no spare-stack round-trip, so a steady-state copy touches only the
    /// free list.
    pub fn clone_into(&mut self, dst: &mut ExpansionTree, src: &ExpansionTree) {
        self.clear(dst);
        let mut cur = src.first_root;
        while cur != NIL {
            let rec = self.slots[cur];
            let parent = if rec.parent == NIL {
                None
            } else {
                Some((self.slots[rec.parent].node, rec.parent_edge))
            };
            self.insert(dst, rec.node, rec.dist, parent);
            cur = if rec.first_child != NIL {
                rec.first_child
            } else {
                self.advance_skip_children(cur)
            };
        }
    }

    /// Validates the structural invariants of one tree (tests/debugging):
    /// link symmetry, directory exactness, distance monotonicity, and
    /// parent + edge weight reproducing each child distance.
    pub fn check_invariants(
        &self,
        tree: &ExpansionTree,
        net: &RoadNetwork,
        weights: &rnn_roadnet::EdgeWeights,
    ) {
        let mut visited = 0usize;
        let mut cur = tree.first_root;
        while cur != NIL {
            let rec = self.slots[cur];
            visited += 1;
            assert_eq!(
                tree.slot_of(rec.node),
                Some(cur),
                "directory out of sync for {:?}",
                rec.node
            );
            if rec.parent != NIL {
                let prec = self.slots[rec.parent];
                let e = rec.parent_edge;
                assert!(
                    net.edge(e).touches(rec.node) && net.edge(e).touches(prec.node),
                    "link edge mismatch"
                );
                let expect = prec.dist + weights.get(e);
                assert!(
                    (rec.dist - expect).abs() <= 1e-9 * expect.max(1.0),
                    "distance of {:?} inconsistent: {} vs parent+w {}",
                    rec.node,
                    rec.dist,
                    expect
                );
                assert!(rec.dist >= prec.dist - 1e-12, "distance not monotone");
            }
            // Sibling-chain symmetry around this node.
            if rec.next_sibling != NIL {
                assert_eq!(
                    self.slots[rec.next_sibling].prev_sibling, cur,
                    "sibling links out of sync"
                );
            }
            let mut c = rec.first_child;
            let mut prev = NIL;
            while c != NIL {
                let crec = self.slots[c];
                assert_eq!(crec.parent, cur, "child parent mismatch");
                assert_eq!(crec.prev_sibling, prev, "child chain out of sync");
                prev = c;
                c = crec.next_sibling;
            }
            cur = if rec.first_child != NIL {
                rec.first_child
            } else {
                self.advance_skip_children(cur)
            };
        }
        assert_eq!(visited, tree.len(), "tree length out of sync");
        assert_eq!(
            tree.dir_live as usize,
            tree.len(),
            "directory occupancy out of sync"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::{EdgeWeights, RoadNetworkBuilder};

    /// Path 0-1-2-3 with a side branch 1-4; unit weights.
    ///
    /// Builds the tree of an (implicit) root sitting on node 0.
    fn net_and_tree() -> (RoadNetwork, EdgeWeights, TreePool, ExpansionTree) {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        let n2 = b.add_node(2.0, 0.0);
        let n3 = b.add_node(3.0, 0.0);
        let n4 = b.add_node(1.0, 1.0);
        b.add_edge_euclidean(n0, n1); // e0
        b.add_edge_euclidean(n1, n2); // e1
        b.add_edge_euclidean(n2, n3); // e2
        b.add_edge_euclidean(n1, n4); // e3
        let net = b.build().unwrap();
        let w = EdgeWeights::from_base(&net);
        let mut pool = TreePool::new();
        let mut t = pool.new_tree();
        pool.insert(&mut t, NodeId(0), 0.0, None);
        pool.insert(&mut t, NodeId(1), 1.0, Some((NodeId(0), EdgeId(0))));
        pool.insert(&mut t, NodeId(2), 2.0, Some((NodeId(1), EdgeId(1))));
        pool.insert(&mut t, NodeId(3), 3.0, Some((NodeId(2), EdgeId(2))));
        pool.insert(&mut t, NodeId(4), 2.0, Some((NodeId(1), EdgeId(3))));
        pool.check_invariants(&t, &net, &w);
        (net, w, pool, t)
    }

    #[test]
    fn basic_structure() {
        let (_, _, pool, t) = net_and_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.dist(&pool, NodeId(3)), Some(3.0));
        assert!(t.contains(NodeId(4)));
        assert_eq!(t.children_of(&pool, NodeId(1)).len(), 2);
        assert_eq!(t.parent_of(&pool, NodeId(0)), Some(None));
        assert_eq!(
            t.parent_of(&pool, NodeId(2)),
            Some(Some((NodeId(1), EdgeId(1))))
        );
        assert_eq!(t.parent_of(&pool, NodeId(9)), None);
        assert_eq!(t.iter(&pool).count(), 5);
    }

    #[test]
    fn remove_subtree_detaches_and_counts() {
        let (net, w, mut pool, mut t) = net_and_tree();
        let removed = pool.remove_subtree(&mut t, NodeId(2));
        assert_eq!(removed, 2); // nodes 2 and 3
        assert!(!t.contains(NodeId(2)));
        assert!(!t.contains(NodeId(3)));
        assert!(t.contains(NodeId(4)));
        assert_eq!(t.children_of(&pool, NodeId(1)).len(), 1);
        pool.check_invariants(&t, &net, &w);
        assert_eq!(pool.remove_subtree(&mut t, NodeId(9)), 0);
        assert_eq!(pool.live_nodes(), 3);
    }

    #[test]
    fn retain_within_prunes_far_nodes() {
        let (net, w, mut pool, mut t) = net_and_tree();
        let pruned = pool.retain_within(&mut t, 2.0);
        assert_eq!(pruned, 1); // node 3 at dist 3
        assert!(t.contains(NodeId(2)));
        assert!(t.children_of(&pool, NodeId(2)).is_empty());
        pool.check_invariants(&t, &net, &w);
    }

    #[test]
    fn link_child_detection() {
        let (net, _, mut pool, t) = net_and_tree();
        assert_eq!(
            t.link_child_of_edge(&pool, &net, EdgeId(1)),
            Some(NodeId(2))
        );
        assert_eq!(
            t.link_child_of_edge(&pool, &net, EdgeId(3)),
            Some(NodeId(4))
        );
        // Remove the subtree in a structural copy; the link disappears.
        let mut t2 = pool.clone_tree(&t);
        pool.remove_subtree(&mut t2, NodeId(2));
        assert_eq!(t2.link_child_of_edge(&pool, &net, EdgeId(1)), None);
        assert_eq!(
            t.link_child_of_edge(&pool, &net, EdgeId(1)),
            Some(NodeId(2))
        );
        pool.release(t2);
        assert_eq!(pool.live_nodes(), t.len());
    }

    #[test]
    fn reroot_keeps_subtree_with_shifted_distances() {
        let (net, w, mut pool, mut t) = net_and_tree();
        // New root position at distance 1.0 (i.e. exactly node 1): keep the
        // subtree of node 1.
        let pruned = pool.reroot_at_subtree(&mut t, NodeId(1), 1.0);
        assert_eq!(pruned, 1); // node 0
        assert_eq!(t.dist(&pool, NodeId(1)), Some(0.0));
        assert_eq!(t.dist(&pool, NodeId(2)), Some(1.0));
        assert_eq!(t.dist(&pool, NodeId(3)), Some(2.0));
        assert_eq!(t.dist(&pool, NodeId(4)), Some(1.0));
        assert_eq!(t.parent_of(&pool, NodeId(1)), Some(None));
        pool.check_invariants(&t, &net, &w);
        assert_eq!(pool.live_nodes(), 4);
    }

    #[test]
    fn reroot_at_missing_node_clears() {
        let (_, _, mut pool, mut t) = net_and_tree();
        let pruned = pool.reroot_at_subtree(&mut t, NodeId(9), 0.0);
        assert_eq!(pruned, 5);
        assert!(t.is_empty());
        assert_eq!(pool.live_nodes(), 0);
    }

    #[test]
    fn clear_empties_and_recycles() {
        let (net, w, mut pool, mut t) = net_and_tree();
        assert_eq!(pool.clear(&mut t), 5);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(pool.live_nodes(), 0);
        pool.take_recycled();
        // Rebuilding pops the free list — no fresh slab growth.
        pool.take_alloc_events();
        pool.insert(&mut t, NodeId(0), 0.0, None);
        pool.insert(&mut t, NodeId(1), 1.0, Some((NodeId(0), EdgeId(0))));
        assert_eq!(pool.take_recycled(), 2);
        assert_eq!(pool.take_alloc_events(), 0);
        pool.check_invariants(&t, &net, &w);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let (_, _, mut pool, mut t) = net_and_tree();
        pool.insert(&mut t, NodeId(0), 0.0, None);
    }

    #[test]
    fn released_directories_are_recycled() {
        let (_, _, mut pool, t) = net_and_tree();
        pool.release(t);
        pool.take_alloc_events();
        let mut t2 = pool.new_tree();
        pool.insert(&mut t2, NodeId(3), 0.0, None);
        assert_eq!(
            pool.take_alloc_events(),
            0,
            "a recycled directory must serve the new tree without allocating"
        );
        // Stale entries from the previous tree's epoch must not leak.
        assert!(!t2.contains(NodeId(0)));
        assert!(t2.contains(NodeId(3)));
        pool.release(t2);
        assert_eq!(pool.live_nodes(), 0);
    }

    #[test]
    fn trees_share_one_pool_without_aliasing() {
        let (net, w, mut pool, t) = net_and_tree();
        // A second tree containing the same network nodes at different
        // distances: lookups must stay per-tree.
        let mut u = pool.new_tree();
        pool.insert(&mut u, NodeId(2), 0.0, None);
        pool.insert(&mut u, NodeId(1), 1.0, Some((NodeId(2), EdgeId(1))));
        assert_eq!(t.dist(&pool, NodeId(1)), Some(1.0));
        assert_eq!(u.dist(&pool, NodeId(1)), Some(1.0));
        assert_eq!(t.dist(&pool, NodeId(2)), Some(2.0));
        assert_eq!(u.dist(&pool, NodeId(2)), Some(0.0));
        assert!(!u.contains(NodeId(4)));
        assert_eq!(pool.live_nodes(), 7);
        pool.check_invariants(&t, &net, &w);
        pool.check_invariants(&u, &net, &w);
        pool.release(u);
        assert_eq!(pool.live_nodes(), 5);
    }

    #[test]
    fn memory_accounting_nonzero() {
        let (_, _, pool, t) = net_and_tree();
        assert!(t.memory_bytes() > 0);
        assert!(pool.memory_bytes() > 0);
    }
}
