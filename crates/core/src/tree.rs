//! Expansion trees (§3, §4).
//!
//! > "The expansion tree of q is a tree rooted at q that contains the
//! > shortest path between q and every node in the network with distance
//! > less than or equal to q.kNN_dist."
//!
//! The tree is the incremental-maintenance workhorse of IMA: update
//! handling prunes the invalidated part and re-expands from what remains.
//! Nodes store their network distance from the root, the tree link to their
//! parent (predecessor node *and* the edge used — required to disambiguate
//! parallel edges), and their children. The root itself (a query point or
//! an active node) is implicit; nodes whose `parent` is `None` hang
//! directly off the root.

use rnn_roadnet::{EdgeId, FxHashMap, NodeId, RoadNetwork};

/// One verified node of an expansion tree.
#[derive(Clone, Debug)]
pub struct TreeNode {
    /// Network distance from the root (the key under which the node was
    /// settled).
    pub dist: f64,
    /// Tree link to the predecessor: `(parent node, connecting edge)`.
    /// `None` when the node is attached directly to the root.
    pub parent: Option<(NodeId, EdgeId)>,
    /// Tree links to successors.
    pub children: Vec<(NodeId, EdgeId)>,
}

/// An expansion tree: the set of verified nodes with their shortest-path
/// links. Distances are monotonically non-decreasing from parent to child
/// (edge weights are positive), which several pruning operations rely on.
#[derive(Clone, Debug, Default)]
pub struct ExpansionTree {
    nodes: FxHashMap<NodeId, TreeNode>,
}

impl ExpansionTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of verified nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no verified nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `n` is verified.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.contains_key(&n)
    }

    /// The distance of `n` if verified.
    #[inline]
    pub fn dist(&self, n: NodeId) -> Option<f64> {
        self.nodes.get(&n).map(|t| t.dist)
    }

    /// The node record of `n`.
    #[inline]
    pub fn node(&self, n: NodeId) -> Option<&TreeNode> {
        self.nodes.get(&n)
    }

    /// Iterates over `(node, record)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &TreeNode)> {
        self.nodes.iter().map(|(&n, t)| (n, t))
    }

    /// Inserts a verified node. The parent (if any) must already be in the
    /// tree; its children list is updated.
    ///
    /// # Panics
    /// Panics if the node already exists or the parent is missing.
    pub fn insert(&mut self, n: NodeId, dist: f64, parent: Option<(NodeId, EdgeId)>) {
        let prev = self.nodes.insert(
            n,
            TreeNode {
                dist,
                parent,
                children: Vec::new(),
            },
        );
        assert!(prev.is_none(), "node {n:?} inserted twice");
        if let Some((p, e)) = parent {
            self.nodes
                .get_mut(&p)
                .expect("parent must be verified before its children")
                .children
                .push((n, e));
        }
    }

    /// Removes the subtree rooted at `n` (inclusive). Returns the number of
    /// nodes removed (0 if `n` is not in the tree).
    pub fn remove_subtree(&mut self, n: NodeId) -> usize {
        let Some(rec) = self.nodes.get(&n) else {
            return 0;
        };
        // Detach from parent first.
        if let Some((p, _)) = rec.parent {
            if let Some(prec) = self.nodes.get_mut(&p) {
                prec.children.retain(|&(c, _)| c != n);
            }
        }
        let mut stack = vec![n];
        let mut removed = 0;
        while let Some(cur) = stack.pop() {
            if let Some(rec) = self.nodes.remove(&cur) {
                removed += 1;
                stack.extend(rec.children.iter().map(|&(c, _)| c));
            }
        }
        removed
    }

    /// Keeps only nodes with `dist <= theta`. Because distances grow along
    /// tree paths, the kept set is automatically connected to the root;
    /// children lists of survivors are fixed up. Returns the number pruned.
    pub fn retain_within(&mut self, theta: f64) -> usize {
        let before = self.nodes.len();
        self.nodes.retain(|_, t| t.dist <= theta);
        if self.nodes.len() != before {
            // A surviving node's parent also survives (monotonicity); only
            // children may have been dropped.
            let alive: rnn_roadnet::FxHashSet<NodeId> = self.nodes.keys().copied().collect();
            for t in self.nodes.values_mut() {
                t.children.retain(|&(c, _)| alive.contains(&c));
            }
        }
        before - self.nodes.len()
    }

    /// If edge `e` is a tree link, returns the child-side node of that link.
    pub fn link_child_of_edge(&self, net: &RoadNetwork, e: EdgeId) -> Option<NodeId> {
        let rec = net.edge(e);
        for n in [rec.start, rec.end] {
            if let Some(t) = self.nodes.get(&n) {
                if let Some((_, pe)) = t.parent {
                    if pe == e {
                        return Some(n);
                    }
                }
            }
        }
        None
    }

    /// Re-roots the tree at the subtree of `new_sub_root`: every node
    /// outside that subtree is dropped, and the distances of the kept nodes
    /// are reduced by `shift` (`= old distance of the new root position`).
    /// The kept subtree root becomes attached directly to the (implicit)
    /// new root. Returns the number of nodes pruned.
    pub fn reroot_at_subtree(&mut self, new_sub_root: NodeId, shift: f64) -> usize {
        if !self.nodes.contains_key(&new_sub_root) {
            let n = self.nodes.len();
            self.nodes.clear();
            return n;
        }
        // Collect the subtree.
        let mut keep: FxHashMap<NodeId, TreeNode> = FxHashMap::default();
        let mut stack = vec![new_sub_root];
        while let Some(cur) = stack.pop() {
            let mut rec = self.nodes.remove(&cur).expect("subtree link invariant");
            stack.extend(rec.children.iter().map(|&(c, _)| c));
            rec.dist -= shift;
            if cur == new_sub_root {
                rec.parent = None;
            }
            keep.insert(cur, rec);
        }
        let pruned = self.nodes.len();
        self.nodes = keep;
        pruned
    }

    /// Drops all nodes. Returns how many were removed.
    pub fn clear(&mut self) -> usize {
        let n = self.nodes.len();
        self.nodes.clear();
        n
    }

    /// Validates structural invariants (tests/debugging): parent links
    /// exist, children lists are consistent, distances are monotone, and
    /// parent + edge weight reproduces the child distance.
    pub fn check_invariants(&self, net: &RoadNetwork, weights: &rnn_roadnet::EdgeWeights) {
        for (&n, t) in &self.nodes {
            if let Some((p, e)) = t.parent {
                let prec = self.nodes.get(&p).expect("dangling parent");
                assert!(
                    prec.children.iter().any(|&(c, ce)| c == n && ce == e),
                    "child link missing for {n:?}"
                );
                assert!(
                    net.edge(e).touches(n) && net.edge(e).touches(p),
                    "link edge mismatch"
                );
                let expect = prec.dist + weights.get(e);
                assert!(
                    (t.dist - expect).abs() <= 1e-9 * expect.max(1.0),
                    "distance of {n:?} inconsistent: {} vs parent+w {}",
                    t.dist,
                    expect
                );
            }
            for &(c, _) in &t.children {
                let crec = self.nodes.get(&c).expect("dangling child");
                assert!(crec.dist >= t.dist - 1e-12, "distance not monotone");
                assert_eq!(
                    crec.parent.map(|(p, _)| p),
                    Some(n),
                    "child parent mismatch"
                );
            }
        }
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<NodeId>() + std::mem::size_of::<TreeNode>();
        let children: usize = self
            .nodes
            .values()
            .map(|t| t.children.capacity() * std::mem::size_of::<(NodeId, EdgeId)>())
            .sum();
        self.nodes.capacity() * entry + children
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::{EdgeWeights, RoadNetworkBuilder};

    /// Path 0-1-2-3 with a side branch 1-4; unit weights.
    ///
    /// Builds the tree of an (implicit) root sitting on node 0.
    fn net_and_tree() -> (RoadNetwork, EdgeWeights, ExpansionTree) {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(0.0, 0.0);
        let n1 = b.add_node(1.0, 0.0);
        let n2 = b.add_node(2.0, 0.0);
        let n3 = b.add_node(3.0, 0.0);
        let n4 = b.add_node(1.0, 1.0);
        b.add_edge_euclidean(n0, n1); // e0
        b.add_edge_euclidean(n1, n2); // e1
        b.add_edge_euclidean(n2, n3); // e2
        b.add_edge_euclidean(n1, n4); // e3
        let net = b.build().unwrap();
        let w = EdgeWeights::from_base(&net);
        let mut t = ExpansionTree::new();
        t.insert(NodeId(0), 0.0, None);
        t.insert(NodeId(1), 1.0, Some((NodeId(0), EdgeId(0))));
        t.insert(NodeId(2), 2.0, Some((NodeId(1), EdgeId(1))));
        t.insert(NodeId(3), 3.0, Some((NodeId(2), EdgeId(2))));
        t.insert(NodeId(4), 2.0, Some((NodeId(1), EdgeId(3))));
        t.check_invariants(&net, &w);
        (net, w, t)
    }

    #[test]
    fn basic_structure() {
        let (_, _, t) = net_and_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.dist(NodeId(3)), Some(3.0));
        assert!(t.contains(NodeId(4)));
        assert_eq!(t.node(NodeId(1)).unwrap().children.len(), 2);
    }

    #[test]
    fn remove_subtree_detaches_and_counts() {
        let (net, w, mut t) = net_and_tree();
        let removed = t.remove_subtree(NodeId(2));
        assert_eq!(removed, 2); // nodes 2 and 3
        assert!(!t.contains(NodeId(2)));
        assert!(!t.contains(NodeId(3)));
        assert!(t.contains(NodeId(4)));
        assert_eq!(t.node(NodeId(1)).unwrap().children.len(), 1);
        t.check_invariants(&net, &w);
        assert_eq!(t.remove_subtree(NodeId(9)), 0);
    }

    #[test]
    fn retain_within_prunes_far_nodes() {
        let (net, w, mut t) = net_and_tree();
        let pruned = t.retain_within(2.0);
        assert_eq!(pruned, 1); // node 3 at dist 3
        assert!(t.contains(NodeId(2)));
        assert!(t.node(NodeId(2)).unwrap().children.is_empty());
        t.check_invariants(&net, &w);
    }

    #[test]
    fn link_child_detection() {
        let (net, _, t) = net_and_tree();
        assert_eq!(t.link_child_of_edge(&net, EdgeId(1)), Some(NodeId(2)));
        assert_eq!(t.link_child_of_edge(&net, EdgeId(3)), Some(NodeId(4)));
        // Remove the subtree; the link disappears.
        let mut t2 = t.clone();
        t2.remove_subtree(NodeId(2));
        assert_eq!(t2.link_child_of_edge(&net, EdgeId(1)), None);
    }

    #[test]
    fn reroot_keeps_subtree_with_shifted_distances() {
        let (net, w, mut t) = net_and_tree();
        // New root position at distance 1.0 (i.e. exactly node 1): keep the
        // subtree of node 1.
        let pruned = t.reroot_at_subtree(NodeId(1), 1.0);
        assert_eq!(pruned, 1); // node 0
        assert_eq!(t.dist(NodeId(1)), Some(0.0));
        assert_eq!(t.dist(NodeId(2)), Some(1.0));
        assert_eq!(t.dist(NodeId(3)), Some(2.0));
        assert_eq!(t.dist(NodeId(4)), Some(1.0));
        assert!(t.node(NodeId(1)).unwrap().parent.is_none());
        t.check_invariants(&net, &w);
    }

    #[test]
    fn reroot_at_missing_node_clears() {
        let (_, _, mut t) = net_and_tree();
        let pruned = t.reroot_at_subtree(NodeId(9), 0.0);
        assert_eq!(pruned, 5);
        assert!(t.is_empty());
    }

    #[test]
    fn clear_empties() {
        let (_, _, mut t) = net_and_tree();
        assert_eq!(t.clear(), 5);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let (_, _, mut t) = net_and_tree();
        t.insert(NodeId(0), 0.0, None);
    }

    #[test]
    fn memory_accounting_nonzero() {
        let (_, _, t) = net_and_tree();
        assert!(t.memory_bytes() > 0);
    }
}
