//! # rnn-core
//!
//! Continuous k-nearest-neighbor monitoring in road networks — a faithful
//! implementation of Mouratidis, Yiu, Papadias, Mamoulis, *"Continuous
//! Nearest Neighbor Monitoring in Road Networks"*, VLDB 2006.
//!
//! A central server tracks a set of moving data objects, a set of moving
//! continuous k-NN queries, and fluctuating edge weights, and must keep
//! every query's k-NN set (by network distance) up to date at every
//! timestamp. Three monitors implement the common [`ContinuousMonitor`]
//! trait:
//!
//! * [`Ovh`] — the *overhaul* baseline (§6): recompute every query from
//!   scratch each timestamp with the Figure-2 network expansion.
//! * [`Ima`] — the *incremental monitoring algorithm* (§4): per-query
//!   expansion trees plus per-edge influence lists; only updates that can
//!   invalidate a result are processed, and the valid part of each tree is
//!   reused when re-expanding.
//! * [`Gma`] — the *group monitoring algorithm* (§5): the network is
//!   decomposed into sequences (paths between intersections); the k-NN sets
//!   of *active* intersection nodes are monitored with the IMA machinery
//!   and shared by every query inside the adjacent sequences (Lemma 1).
//!
//! As an extension (§7, future work) the crate also provides [`crnn::Crnn`],
//! continuous *reverse* nearest-neighbor monitoring built on the same
//! primitives.
//!
//! ## Quick start
//!
//! ```
//! use rnn_core::{ContinuousMonitor, Ima, UpdateBatch, UpdateEvent};
//! use rnn_roadnet::{generators, EdgeId, NetPoint, ObjectId, QueryId};
//! use std::sync::Arc;
//!
//! let net = Arc::new(generators::grid_city(&generators::GridCityConfig {
//!     nx: 6, ny: 6, seed: 1, ..Default::default()
//! }));
//! let mut ima = Ima::new(net.clone());
//! // Populate: one object per fifth edge.
//! for (i, e) in net.edge_ids().enumerate().step_by(5) {
//!     ima.apply(UpdateEvent::insert_object(ObjectId(i as u32), NetPoint::new(e, 0.5)));
//! }
//! // Install a 3-NN query and read its result.
//! ima.apply(UpdateEvent::install_query(QueryId(0), 3, NetPoint::new(EdgeId(0), 0.25)));
//! let result = ima.result(QueryId(0)).unwrap();
//! assert_eq!(result.len(), 3);
//! // Advance one (empty) timestamp.
//! ima.tick(&UpdateBatch::default());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anchor;
pub mod codec;
pub mod counters;
pub mod crnn;
pub mod gma;
pub mod ima;
pub mod influence;
pub mod monitor;
pub mod ovh;
pub mod search;
pub mod snapshot;
pub mod state;
pub mod tree;
pub mod types;

pub use counters::{MemoryUsage, OpCounters, TickReport};
pub use gma::Gma;
pub use ima::Ima;
pub use monitor::{ContinuousMonitor, TransportStats};
pub use ovh::Ovh;
pub use snapshot::{MonitorState, RestoreError};
pub use types::{
    EdgeWeightUpdate, Neighbor, ObjectEvent, QueryEvent, RootPos, UpdateBatch, UpdateEvent,
};
