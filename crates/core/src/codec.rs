//! Wire codecs ([`rnn_roadnet::wire`]) for the core value types.
//!
//! These are the payloads the cluster RPC layer ships between the
//! coordinator and shard processes: the per-tick event types, the result
//! entries, and the deterministic counter/report structs. Encodings are
//! hand-rolled little-endian dumps (enum variants as one `u8` tag,
//! `f64` as raw bits) so round-trips are bit-identical and decoding never
//! allocates beyond the decoded values themselves.

use std::time::Duration;

use rnn_roadnet::wire::{put_f64, put_u32, put_u64, put_u8, WireCodec, WireError, WireReader};
use rnn_roadnet::{NetPoint, ObjectId, QueryId};

use crate::counters::{MemoryUsage, OpCounters, TickReport};
use crate::types::{EdgeWeightUpdate, Neighbor, ObjectEvent, QueryEvent};

impl WireCodec for Neighbor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.object.encode(out);
        put_f64(out, self.dist);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Neighbor {
            object: ObjectId::decode(r)?,
            dist: r.f64()?,
        })
    }
}

impl WireCodec for ObjectEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ObjectEvent::Move { id, to } => {
                put_u8(out, 0);
                id.encode(out);
                to.encode(out);
            }
            ObjectEvent::Insert { id, at } => {
                put_u8(out, 1);
                id.encode(out);
                at.encode(out);
            }
            ObjectEvent::Delete { id } => {
                put_u8(out, 2);
                id.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ObjectEvent::Move {
                id: ObjectId::decode(r)?,
                to: NetPoint::decode(r)?,
            }),
            1 => Ok(ObjectEvent::Insert {
                id: ObjectId::decode(r)?,
                at: NetPoint::decode(r)?,
            }),
            2 => Ok(ObjectEvent::Delete {
                id: ObjectId::decode(r)?,
            }),
            _ => Err(WireError::Invalid("ObjectEvent variant tag")),
        }
    }
}

impl WireCodec for QueryEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            QueryEvent::Move { id, to } => {
                put_u8(out, 0);
                id.encode(out);
                to.encode(out);
            }
            QueryEvent::Install { id, k, at } => {
                put_u8(out, 1);
                id.encode(out);
                put_u64(out, *k as u64);
                at.encode(out);
            }
            QueryEvent::Remove { id } => {
                put_u8(out, 2);
                id.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(QueryEvent::Move {
                id: QueryId::decode(r)?,
                to: NetPoint::decode(r)?,
            }),
            1 => Ok(QueryEvent::Install {
                id: QueryId::decode(r)?,
                k: r.u64()? as usize,
                at: NetPoint::decode(r)?,
            }),
            2 => Ok(QueryEvent::Remove {
                id: QueryId::decode(r)?,
            }),
            _ => Err(WireError::Invalid("QueryEvent variant tag")),
        }
    }
}

impl WireCodec for EdgeWeightUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.edge.encode(out);
        put_f64(out, self.new_weight);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(EdgeWeightUpdate {
            edge: rnn_roadnet::EdgeId::decode(r)?,
            new_weight: r.f64()?,
        })
    }
}

impl WireCodec for OpCounters {
    fn encode(&self, out: &mut Vec<u8>) {
        // Field order is the struct declaration order; adding a counter
        // extends the wire form at the end (the codec round-trip proptest
        // in tests/properties.rs pins the layout).
        for v in [
            self.nodes_settled,
            self.edges_scanned,
            self.objects_considered,
            self.relaxations,
            self.updates_ignored,
            self.reevaluations,
            self.tree_nodes_pruned,
            self.resync_touched,
            self.replica_evictions,
            self.alloc_events,
            self.install_alloc_events,
            self.expansion_steps,
            self.shared_expansions,
            self.tree_nodes_recycled,
            self.rebalance_events,
            self.cells_migrated,
            self.coalesced_superseded,
            self.shed_events,
            self.drain_alloc_events,
        ] {
            put_u64(out, v);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(OpCounters {
            nodes_settled: r.u64()?,
            edges_scanned: r.u64()?,
            objects_considered: r.u64()?,
            relaxations: r.u64()?,
            updates_ignored: r.u64()?,
            reevaluations: r.u64()?,
            tree_nodes_pruned: r.u64()?,
            resync_touched: r.u64()?,
            replica_evictions: r.u64()?,
            alloc_events: r.u64()?,
            install_alloc_events: r.u64()?,
            expansion_steps: r.u64()?,
            shared_expansions: r.u64()?,
            tree_nodes_recycled: r.u64()?,
            rebalance_events: r.u64()?,
            cells_migrated: r.u64()?,
            coalesced_superseded: r.u64()?,
            shed_events: r.u64()?,
            drain_alloc_events: r.u64()?,
        })
    }
}

impl WireCodec for TickReport {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.elapsed.as_secs());
        put_u32(out, self.elapsed.subsec_nanos());
        put_u64(out, self.results_changed as u64);
        self.counters.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let secs = r.u64()?;
        let nanos = r.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Invalid("TickReport subsecond nanos"));
        }
        Ok(TickReport {
            elapsed: Duration::new(secs, nanos),
            results_changed: r.u64()? as usize,
            counters: OpCounters::decode(r)?,
        })
    }
}

impl WireCodec for MemoryUsage {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.edge_table,
            self.query_table,
            self.expansion_trees,
            self.influence_lists,
            self.auxiliary,
        ] {
            put_u64(out, v as u64);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MemoryUsage {
            edge_table: r.u64()? as usize,
            query_table: r.u64()? as usize,
            expansion_trees: r.u64()? as usize,
            influence_lists: r.u64()? as usize,
            auxiliary: r.u64()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::wire::{decode_seq, encode_seq};
    use rnn_roadnet::EdgeId;

    fn round_trip<T: WireCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert_eq!(r.remaining(), 0, "decode must consume the full encoding");
    }

    #[test]
    fn events_round_trip() {
        round_trip(ObjectEvent::Move {
            id: ObjectId(7),
            to: NetPoint::new(EdgeId(3), 0.25),
        });
        round_trip(ObjectEvent::Insert {
            id: ObjectId(0),
            at: NetPoint::new(EdgeId(0), 0.0),
        });
        round_trip(ObjectEvent::Delete { id: ObjectId(42) });
        round_trip(QueryEvent::Install {
            id: QueryId(9),
            k: 16,
            at: NetPoint::new(EdgeId(1), 1.0),
        });
        round_trip(QueryEvent::Remove { id: QueryId(9) });
        round_trip(EdgeWeightUpdate {
            edge: EdgeId(11),
            new_weight: 3.5,
        });
    }

    #[test]
    fn infinite_knn_dist_survives_the_wire() {
        round_trip(Neighbor {
            object: ObjectId(1),
            dist: f64::INFINITY,
        });
    }

    #[test]
    fn counters_round_trip() {
        let c = OpCounters {
            nodes_settled: 1,
            cells_migrated: u64::MAX,
            install_alloc_events: 77,
            ..Default::default()
        };
        round_trip(c);
    }

    #[test]
    fn event_sequences_round_trip() {
        let evs = vec![
            ObjectEvent::Delete { id: ObjectId(1) },
            ObjectEvent::Move {
                id: ObjectId(2),
                to: NetPoint::new(EdgeId(5), 0.75),
            },
        ];
        let mut buf = Vec::new();
        encode_seq(&evs, &mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(decode_seq::<ObjectEvent>(&mut r).unwrap(), evs);
    }

    #[test]
    fn bad_variant_tag_is_rejected() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 9);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            ObjectEvent::decode(&mut r),
            Err(WireError::Invalid(_))
        ));
    }
}
