//! Influence lists and influencing intervals (§3).
//!
//! > "An edge e affects q, if it contains an interval where the network
//! > distance is less than q.kNN_dist. We call this interval the
//! > influencing interval of e. We store q in the influence list of each
//! > affecting edge e, together with the corresponding influencing
//! > interval. We use the influence list information to process only object
//! > and edge updates that affect the result of q and ignore the rest."
//!
//! An edge can carry up to **two** disjoint influencing intervals for one
//! query (Figure 3: one from each verified endpoint); overlapping intervals
//! merge into one. Intervals are stored as fraction ranges in the edge's
//! own coordinate system, so point-membership tests need no distance
//! computation.
//!
//! The table is generic over the influencee key: IMA stores [`QueryId`]s,
//! GMA's node-monitoring module stores active-node ids, and GMA's sequence
//! layer stores query ids again.

use rnn_roadnet::{EdgeId, SpanArena};

/// Up to two disjoint fraction intervals on one edge.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IntervalSet {
    n: u8,
    iv: [(f64, f64); 2],
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A set with a single interval (clamped to `[0, 1]`, ignored if empty
    /// after clamping with `lo > hi`).
    pub fn single(lo: f64, hi: f64) -> Self {
        let mut s = Self::empty();
        s.add(lo, hi);
        s
    }

    /// The full edge.
    pub fn full() -> Self {
        Self::single(0.0, 1.0)
    }

    /// Adds an interval, merging overlapping/touching ranges.
    ///
    /// # Panics
    /// Panics if a third disjoint interval would be required (cannot happen
    /// for influencing intervals, which are anchored at the edge ends or at
    /// the query position).
    pub fn add(&mut self, lo: f64, hi: f64) {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        if lo > hi {
            return;
        }
        let mut lo = lo;
        let mut hi = hi;
        // Merge with any existing overlapping interval.
        let mut i = 0;
        while i < self.n as usize {
            let (a, b) = self.iv[i];
            if lo <= b && a <= hi {
                lo = lo.min(a);
                hi = hi.max(b);
                // Remove interval i (swap with last).
                self.n -= 1;
                self.iv[i] = self.iv[self.n as usize];
            } else {
                i += 1;
            }
        }
        assert!(
            self.n < 2,
            "influencing intervals: more than two disjoint ranges"
        );
        self.iv[self.n as usize] = (lo, hi);
        self.n += 1;
        // Keep deterministic order (by lo).
        if self.n == 2 && self.iv[0].0 > self.iv[1].0 {
            self.iv.swap(0, 1);
        }
    }

    /// Whether the fraction `t` lies inside the set (boundary inclusive).
    #[inline]
    pub fn covers(&self, t: f64) -> bool {
        (0..self.n as usize).any(|i| {
            let (a, b) = self.iv[i];
            t >= a && t <= b
        })
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the set covers the entire edge.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.n == 1 && self.iv[0] == (0.0, 1.0)
    }

    /// The stored intervals.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.iv[..self.n as usize]
    }
}

/// Influence lists: for each edge, the set of influencees with their
/// influencing intervals.
///
/// Backed by a [`SpanArena`]: all per-edge lists share one flat buffer
/// with free-list span reuse, so the constant interval churn of the tick
/// path (every re-expansion rebuilds its anchor's intervals) does no
/// per-edge heap allocation in steady state.
#[derive(Clone, Debug)]
pub struct InfluenceTable<K: Copy + Eq> {
    per_edge: SpanArena<(K, IntervalSet)>,
}

impl<K: Copy + Eq> InfluenceTable<K> {
    /// A table covering `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        Self {
            per_edge: SpanArena::new(num_edges),
        }
    }

    /// Registers `who` on edge `e` with the given intervals (replaces any
    /// previous registration of `who` on `e`).
    pub fn insert(&mut self, e: EdgeId, who: K, ivs: IntervalSet) {
        if ivs.is_empty() {
            self.remove(e, who);
            return;
        }
        let list = self.per_edge.get_mut(e.index());
        match list.iter_mut().find(|(k, _)| *k == who) {
            Some(slot) => slot.1 = ivs,
            None => {
                self.per_edge.push(e.index(), (who, ivs));
            }
        }
    }

    /// Removes `who` from edge `e`'s list.
    pub fn remove(&mut self, e: EdgeId, who: K) {
        let list = self.per_edge.get(e.index());
        if let Some(idx) = list.iter().position(|(k, _)| *k == who) {
            self.per_edge.swap_remove(e.index(), idx);
        }
    }

    /// All influencees registered on edge `e`.
    #[inline]
    pub fn on_edge(&self, e: EdgeId) -> &[(K, IntervalSet)] {
        self.per_edge.get(e.index())
    }

    /// Influencees whose interval on `e` covers fraction `t`.
    pub fn covering(&self, e: EdgeId, t: f64) -> impl Iterator<Item = K> + '_ {
        self.per_edge
            .get(e.index())
            .iter()
            .filter(move |(_, ivs)| ivs.covers(t))
            .map(|&(k, _)| k)
    }

    /// Arena alloc events accumulated since the last take (see
    /// [`SpanArena::take_alloc_events`]).
    pub fn take_alloc_events(&mut self) -> u64 {
        self.per_edge.take_alloc_events()
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.per_edge.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::QueryId;

    #[test]
    fn single_interval_membership() {
        let s = IntervalSet::single(0.2, 0.6);
        assert!(s.covers(0.2) && s.covers(0.4) && s.covers(0.6));
        assert!(!s.covers(0.1) && !s.covers(0.7));
        assert!(!s.is_empty() && !s.is_full());
    }

    #[test]
    fn two_disjoint_intervals() {
        // Figure 3(a): influencing intervals from both endpoints.
        let mut s = IntervalSet::single(0.0, 0.3);
        s.add(0.8, 1.0);
        assert!(s.covers(0.1) && s.covers(0.9));
        assert!(!s.covers(0.5));
        assert_eq!(s.intervals(), &[(0.0, 0.3), (0.8, 1.0)]);
    }

    #[test]
    fn overlapping_intervals_merge_to_full() {
        // Figure 3(b): the two intervals overlap -> whole edge.
        let mut s = IntervalSet::single(0.0, 0.6);
        s.add(0.4, 1.0);
        assert!(s.is_full());
        assert_eq!(s.intervals(), &[(0.0, 1.0)]);
    }

    #[test]
    fn touching_intervals_merge() {
        let mut s = IntervalSet::single(0.0, 0.5);
        s.add(0.5, 0.8);
        assert_eq!(s.intervals(), &[(0.0, 0.8)]);
    }

    #[test]
    fn clamping_and_degenerate() {
        let s = IntervalSet::single(-0.5, 1.5);
        assert!(s.is_full());
        let s = IntervalSet::single(0.7, 0.2); // inverted -> ignored
        assert!(s.is_empty());
        // A zero-length interval is a valid point interval (a mark sitting
        // exactly at a node).
        let s = IntervalSet::single(0.5, 0.5);
        assert!(s.covers(0.5));
        assert!(!s.covers(0.500001));
    }

    #[test]
    fn table_insert_replace_remove() {
        let mut t: InfluenceTable<QueryId> = InfluenceTable::new(3);
        t.insert(EdgeId(1), QueryId(7), IntervalSet::single(0.0, 0.5));
        t.insert(EdgeId(1), QueryId(8), IntervalSet::full());
        assert_eq!(t.on_edge(EdgeId(1)).len(), 2);
        assert_eq!(t.covering(EdgeId(1), 0.25).count(), 2);
        assert_eq!(
            t.covering(EdgeId(1), 0.75).collect::<Vec<_>>(),
            vec![QueryId(8)]
        );

        // Replace q7's intervals.
        t.insert(EdgeId(1), QueryId(7), IntervalSet::single(0.9, 1.0));
        assert_eq!(t.on_edge(EdgeId(1)).len(), 2);
        assert_eq!(t.covering(EdgeId(1), 0.95).count(), 2);

        t.remove(EdgeId(1), QueryId(8));
        assert_eq!(t.on_edge(EdgeId(1)).len(), 1);
        // Removing a non-member is a no-op.
        t.remove(EdgeId(2), QueryId(8));
        assert!(t.on_edge(EdgeId(2)).is_empty());
    }

    #[test]
    fn inserting_empty_set_removes() {
        let mut t: InfluenceTable<QueryId> = InfluenceTable::new(1);
        t.insert(EdgeId(0), QueryId(1), IntervalSet::full());
        t.insert(EdgeId(0), QueryId(1), IntervalSet::empty());
        assert!(t.on_edge(EdgeId(0)).is_empty());
    }
}
