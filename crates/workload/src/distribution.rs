//! Initial placement distributions (§6).
//!
//! > "The initial positions of objects and queries follow either uniform or
//! > Gaussian distribution (with mean at the center of the workspace and
//! > standard deviation 10% of the maximum network distance from the
//! > center)."
//!
//! Uniform placement picks an edge with probability proportional to its
//! length and a uniform offset along it. Gaussian placement samples a
//! planar coordinate (Box–Muller; `rand_distr` is outside the approved
//! dependency set) and snaps it to the nearest edge with the PMR quadtree —
//! the same coordinate→edge resolution the paper's server performs.

use rand::rngs::StdRng;
use rand::Rng;
use rnn_roadnet::{NetPoint, PmrQuadtree, Point2, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Initial placement distribution of objects or queries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over the network (edge chosen ∝ length).
    Uniform,
    /// Gaussian around the workspace center; the standard deviation is
    /// expressed as a fraction of the workspace half-diagonal (the paper
    /// uses 10% for queries and 50% for "Gaussian objects" in Fig. 17a).
    Gaussian {
        /// Standard deviation as a fraction of the half-diagonal.
        stddev_frac: f64,
    },
}

impl Distribution {
    /// The paper's default query distribution (Gaussian, 10%).
    pub fn gaussian_queries() -> Self {
        Distribution::Gaussian { stddev_frac: 0.10 }
    }

    /// The paper's "Gaussian objects" (Fig. 17a: standard deviation 50%).
    pub fn gaussian_objects() -> Self {
        Distribution::Gaussian { stddev_frac: 0.50 }
    }
}

/// A placement sampler bound to one network.
pub struct Placer<'a> {
    net: &'a RoadNetwork,
    quadtree: &'a PmrQuadtree,
    /// Cumulative edge lengths for O(log E) uniform edge sampling.
    cumulative: Vec<f64>,
    total_len: f64,
}

impl<'a> Placer<'a> {
    /// Builds a sampler (the quadtree is shared; building it is O(E log E)).
    pub fn new(net: &'a RoadNetwork, quadtree: &'a PmrQuadtree) -> Self {
        let mut cumulative = Vec::with_capacity(net.num_edges());
        let mut acc = 0.0;
        for e in net.edge_ids() {
            acc += net.edge_euclidean_len(e);
            cumulative.push(acc);
        }
        Self {
            net,
            quadtree,
            cumulative,
            total_len: acc,
        }
    }

    /// Samples one position according to `dist`.
    pub fn sample(&self, dist: Distribution, rng: &mut StdRng) -> NetPoint {
        match dist {
            Distribution::Uniform => self.sample_uniform(rng),
            Distribution::Gaussian { stddev_frac } => self.sample_gaussian(stddev_frac, rng),
        }
    }

    fn sample_uniform(&self, rng: &mut StdRng) -> NetPoint {
        let t = rng.random::<f64>() * self.total_len;
        let idx = self.cumulative.partition_point(|&c| c < t);
        let idx = idx.min(self.cumulative.len() - 1);
        NetPoint::new(rnn_roadnet::EdgeId::from_index(idx), rng.random::<f64>())
    }

    fn sample_gaussian(&self, stddev_frac: f64, rng: &mut StdRng) -> NetPoint {
        let b = self.net.bounds();
        let c = b.center();
        let half_diag = 0.5 * (b.width().hypot(b.height()));
        let sd = stddev_frac * half_diag;
        // Box–Muller transform.
        let (g1, g2) = gaussian_pair(rng);
        let p = Point2::new(c.x + g1 * sd, c.y + g2 * sd);
        self.quadtree
            .locate(self.net, p)
            .expect("non-empty network")
    }
}

/// One pair of independent standard-normal samples (Box–Muller).
pub fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rnn_roadnet::generators::{grid_city, GridCityConfig};

    fn setup() -> (RoadNetwork, PmrQuadtree) {
        let net = grid_city(&GridCityConfig {
            nx: 10,
            ny: 10,
            seed: 2,
            ..Default::default()
        });
        let qt = PmrQuadtree::build(&net);
        (net, qt)
    }

    #[test]
    fn uniform_covers_many_edges() {
        let (net, qt) = setup();
        let placer = Placer::new(&net, &qt);
        let mut rng = StdRng::seed_from_u64(1);
        let mut edges = std::collections::HashSet::new();
        for _ in 0..2000 {
            let p = placer.sample(Distribution::Uniform, &mut rng);
            assert!(p.edge.index() < net.num_edges());
            assert!((0.0..=1.0).contains(&p.frac));
            edges.insert(p.edge);
        }
        // With 2000 samples over ~200-300 edges, the great majority of
        // edges must be hit.
        assert!(
            edges.len() > net.num_edges() / 2,
            "uniform sampling too concentrated"
        );
    }

    #[test]
    fn gaussian_concentrates_near_center() {
        let (net, qt) = setup();
        let placer = Placer::new(&net, &qt);
        let mut rng = StdRng::seed_from_u64(2);
        let c = net.bounds().center();
        let half_diag = 0.5 * net.bounds().width().hypot(net.bounds().height());
        let mut mean_dist = 0.0;
        let n = 500;
        for _ in 0..n {
            let p = placer.sample(Distribution::Gaussian { stddev_frac: 0.10 }, &mut rng);
            mean_dist += p.coordinates(&net).dist(c);
        }
        mean_dist /= n as f64;
        // Tightly clustered: mean offset well under a quarter of the
        // half-diagonal.
        assert!(
            mean_dist < 0.25 * half_diag,
            "gaussian not concentrated: mean {mean_dist}, half diag {half_diag}"
        );

        // Wider spread with a larger stddev.
        let mut wide = 0.0;
        for _ in 0..n {
            let p = placer.sample(Distribution::Gaussian { stddev_frac: 0.50 }, &mut rng);
            wide += p.coordinates(&net).dist(c);
        }
        wide /= n as f64;
        assert!(wide > mean_dist, "50% stddev must spread wider than 10%");
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, qt) = setup();
        let placer = Placer::new(&net, &qt);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(
                placer.sample(Distribution::Uniform, &mut a),
                placer.sample(Distribution::Uniform, &mut b)
            );
        }
    }

    #[test]
    fn gaussian_pair_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let n = 20_000;
        for _ in 0..n / 2 {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
