//! Route-coherent movement — a substitute for the Brinkhoff generator [2].
//!
//! The paper's Fig. 19 experiments use the network-based moving-object
//! generator of Brinkhoff (GeoInformatica 2002), whose defining property is
//! that entities do not jitter randomly but *drive routes*: each picks a
//! destination, follows a shortest path towards it at a speed drawn from a
//! speed class, and picks a new destination upon arrival. This module
//! reproduces exactly that behaviour (see DESIGN.md, substitution #2).

use rand::rngs::StdRng;
use rand::Rng;
use rnn_roadnet::{DijkstraEngine, EdgeWeights, NetPoint, NodeId, RoadNetwork};

/// Number of speed classes (Brinkhoff's default is 6).
pub const SPEED_CLASSES: usize = 6;

/// Per-class speed multipliers (slowest to fastest, ×base speed).
pub const CLASS_MULTIPLIERS: [f64; SPEED_CLASSES] = [0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

/// A route-following entity.
#[derive(Clone, Debug)]
pub struct RouteFollower {
    /// Current position.
    pub pos: NetPoint,
    /// Speed class (index into [`CLASS_MULTIPLIERS`]).
    pub class: usize,
    /// Remaining node path towards the destination, in travel order. The
    /// first entry is the node the entity is currently heading to.
    route: Vec<NodeId>,
}

impl RouteFollower {
    /// Creates a follower at `pos` with a random class and a fresh route.
    pub fn new(
        net: &RoadNetwork,
        weights: &EdgeWeights,
        engine: &mut DijkstraEngine,
        pos: NetPoint,
        rng: &mut StdRng,
    ) -> Self {
        let class = rng.random_range(0..SPEED_CLASSES);
        let mut f = Self {
            pos,
            class,
            route: Vec::new(),
        };
        f.reroute(net, weights, engine, rng);
        f
    }

    /// Picks a fresh random destination and computes the shortest path to
    /// it under the current weights (drivers re-plan with live traffic).
    fn reroute(
        &mut self,
        net: &RoadNetwork,
        weights: &EdgeWeights,
        engine: &mut DijkstraEngine,
        rng: &mut StdRng,
    ) {
        // Start from the nearer endpoint of the current edge.
        let edge = net.edge(self.pos.edge);
        let start = if self.pos.frac < 0.5 {
            edge.start
        } else {
            edge.end
        };
        for _ in 0..8 {
            let dest = NodeId::from_index(rng.random_range(0..net.num_nodes()));
            if dest == start {
                continue;
            }
            if let Some(mut path) = engine.path_between_nodes(net, weights, start, dest) {
                if path.len() >= 2 {
                    path.remove(0); // we are (about to be) at `start`
                    self.route = path;
                    // Snap onto the first leg if we are not already heading
                    // there: walk via `start`.
                    self.route.insert(0, start);
                    return;
                }
            }
        }
        // Hopeless (tiny/disconnected component): stand still.
        self.route.clear();
    }

    /// Drops the follower at `to`, discarding its current route (the next
    /// step re-plans from the new position). Used by the drifting-hotspot
    /// workload, which jumps entities instead of walking them.
    pub fn teleport(&mut self, to: NetPoint) {
        self.pos = to;
        self.route.clear();
    }

    /// Advances by `distance` (base-length units), re-routing on arrival.
    /// Returns the new position.
    pub fn step(
        &mut self,
        net: &RoadNetwork,
        weights: &EdgeWeights,
        engine: &mut DijkstraEngine,
        distance: f64,
        rng: &mut StdRng,
    ) -> NetPoint {
        let mut remaining = distance * CLASS_MULTIPLIERS[self.class];
        let mut hops = 0;
        while remaining > 0.0 && hops < 10_000 {
            hops += 1;
            let Some(&target) = self.route.first() else {
                self.reroute(net, weights, engine, rng);
                if self.route.is_empty() {
                    break;
                }
                continue;
            };
            // Heading along the current edge towards `target`; if the
            // current edge does not touch the target (fresh route), hop to
            // an incident edge that does.
            let edge = net.edge(self.pos.edge);
            if !edge.touches(target) {
                // Snap to the route: find the connecting edge from the
                // nearest endpoint.
                let from = if self.pos.frac < 0.5 {
                    edge.start
                } else {
                    edge.end
                };
                // Consume the distance to that endpoint first.
                let len = net.edge_euclidean_len(self.pos.edge);
                let to_boundary = if from == edge.end {
                    (1.0 - self.pos.frac) * len
                } else {
                    self.pos.frac * len
                };
                if remaining < to_boundary {
                    let df = remaining / len;
                    let frac = if from == edge.end {
                        self.pos.frac + df
                    } else {
                        self.pos.frac - df
                    };
                    self.pos = NetPoint::new(self.pos.edge, frac);
                    return self.pos;
                }
                remaining -= to_boundary;
                match net
                    .adjacent(from)
                    .iter()
                    .find(|&&(_, other)| other == target)
                {
                    Some(&(e, _)) => {
                        let rec = net.edge(e);
                        self.pos = NetPoint::new(e, if rec.start == from { 0.0 } else { 1.0 });
                    }
                    None => {
                        // The route is unreachable from here (stale after a
                        // U-turn); re-plan.
                        self.reroute(net, weights, engine, rng);
                    }
                }
                continue;
            }
            let len = net.edge_euclidean_len(self.pos.edge);
            let toward_end = target == edge.end;
            let to_boundary = if toward_end {
                (1.0 - self.pos.frac) * len
            } else {
                self.pos.frac * len
            };
            if remaining < to_boundary {
                let df = remaining / len;
                let frac = if toward_end {
                    self.pos.frac + df
                } else {
                    self.pos.frac - df
                };
                self.pos = NetPoint::new(self.pos.edge, frac);
                return self.pos;
            }
            remaining -= to_boundary;
            // Reached `target`: advance the route.
            self.route.remove(0);
            if let Some(&next) = self.route.first() {
                match net
                    .adjacent(target)
                    .iter()
                    .find(|&&(_, other)| other == next)
                {
                    Some(&(e, _)) => {
                        let rec = net.edge(e);
                        self.pos = NetPoint::new(e, if rec.start == target { 0.0 } else { 1.0 });
                    }
                    None => self.reroute(net, weights, engine, rng),
                }
            } else {
                // Destination reached: park exactly at the node and plan a
                // new trip next iteration.
                let e = net.adjacent(target).first().copied();
                if let Some((e, _)) = e {
                    let rec = net.edge(e);
                    self.pos = NetPoint::new(e, if rec.start == target { 0.0 } else { 1.0 });
                }
            }
        }
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rnn_roadnet::generators::{grid_city, GridCityConfig};
    use rnn_roadnet::EdgeId;

    fn setup() -> (RoadNetwork, EdgeWeights, DijkstraEngine) {
        let net = grid_city(&GridCityConfig {
            nx: 6,
            ny: 6,
            seed: 8,
            ..Default::default()
        });
        let w = EdgeWeights::from_base(&net);
        let e = DijkstraEngine::new(net.num_nodes());
        (net, w, e)
    }

    #[test]
    fn follower_moves_and_stays_valid() {
        let (net, w, mut eng) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut f = RouteFollower::new(&net, &w, &mut eng, NetPoint::new(EdgeId(0), 0.5), &mut rng);
        let mut moved = false;
        let start = f.pos;
        for _ in 0..50 {
            let p = f.step(&net, &w, &mut eng, 30.0, &mut rng);
            assert!(p.edge.index() < net.num_edges());
            assert!((0.0..=1.0).contains(&p.frac));
            if p != start {
                moved = true;
            }
        }
        assert!(moved, "route follower never moved");
    }

    #[test]
    fn speed_classes_scale_distance() {
        let (net, w, mut eng) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let mut slow =
            RouteFollower::new(&net, &w, &mut eng, NetPoint::new(EdgeId(0), 0.0), &mut rng);
        slow.class = 0;
        let mut fast = slow.clone();
        fast.class = SPEED_CLASSES - 1;
        // Same seed stream per step keeps routes comparable enough; we only
        // check displacement ordering over one step on the same route.
        let p_slow = slow.step(&net, &w, &mut eng, 10.0, &mut rng);
        let p_fast = fast.step(&net, &w, &mut eng, 10.0, &mut rng);
        let o = NetPoint::new(EdgeId(0), 0.0).coordinates(&net);
        let d_slow = p_slow.coordinates(&net).dist(o);
        let d_fast = p_fast.coordinates(&net).dist(o);
        // Not strictly guaranteed on curvy routes, but on the first short
        // hop of an identical route the faster class travels farther.
        assert!(d_fast >= d_slow * 0.99, "fast {d_fast} vs slow {d_slow}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, w, mut eng) = setup();
        let mut run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut f =
                RouteFollower::new(&net, &w, &mut eng, NetPoint::new(EdgeId(3), 0.25), &mut rng);
            let mut out = Vec::new();
            for _ in 0..20 {
                out.push(f.step(&net, &w, &mut eng, 25.0, &mut rng));
            }
            out
        };
        assert_eq!(run(42), run(42));
    }
}
