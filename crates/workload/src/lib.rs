//! # rnn-workload
//!
//! Workload generation for the continuous-monitoring experiments (§6 of the
//! paper): initial placement distributions, per-timestamp movement of
//! objects and queries, and edge-weight fluctuation — all bundled behind
//! [`scenario::Scenario`], which produces one
//! [`rnn_core::UpdateBatch`] per timestamp.
//!
//! Two movement models are provided:
//!
//! * [`movement::RandomWalker`] — the paper's default generator ("a moving
//!   object performs a random walk in the network and covers a fixed
//!   distance v_obj"),
//! * [`brinkhoff::RouteFollower`] — a route-coherent substitute for the
//!   Brinkhoff generator [2] used in Fig. 19 (movers pick destinations and
//!   follow shortest paths at per-mover speed classes; see DESIGN.md,
//!   substitution #2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod brinkhoff;
pub mod distribution;
pub mod firehose;
pub mod movement;
pub mod scenario;

pub use distribution::Distribution;
pub use firehose::{Firehose, FirehoseConfig, FirehosePattern, FirehoseTick};
pub use scenario::{DriveReport, HotspotConfig, MovementModel, Scenario, ScenarioConfig};
