//! Oversampled "firehose" workloads for the ingest front-end.
//!
//! The base [`Scenario`](crate::Scenario) emits exactly one event per
//! moving entity per timestamp — the paper's synchronous contract. Real
//! feeds oversample: a phone reports its position every few seconds
//! while the server ticks once a minute, congestion sensors re-report an
//! incident edge until it clears, and a flash crowd floods the feed with
//! redundant position fixes. A [`Firehose`] layers that redundancy on
//! top of a base scenario, producing **two views of the same tick**:
//!
//! * the **raw stream** — every report, in submission order, with each
//!   entity's intermediate fixes preceding its final one. This is what
//!   gets pushed through `rnn_engine::ingest`.
//! * the **effective batch** — the base scenario's one-event-per-entity
//!   batch, i.e. what the tick *means* after §4.5 coalescing. This
//!   drives the oracle monitor in differential tests.
//!
//! A monitor fed the raw stream through a coalescing ingest stage must
//! answer identically to one ticked with the effective batch; the raw
//! stream merely costs `coalesced_superseded` counted work at the drain.
//! Intermediate fixes are fabricated *between* an entity's reports (a
//! jittered fraction on the final edge), so even a monitor that naively
//! processed every raw event in order would land on the same final
//! position — the redundancy is semantic noise, exactly like the real
//! feeds it models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnn_core::{ObjectEvent, QueryEvent, UpdateBatch, UpdateEvent};
use rnn_roadnet::NetPoint;
use std::sync::Arc;

use rnn_core::ContinuousMonitor;
use rnn_roadnet::RoadNetwork;

use crate::scenario::{Scenario, ScenarioConfig};

/// Which feed shape the firehose models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirehosePattern {
    /// A fraction of the moving objects (the "crowd") report in bursts —
    /// each crowd member emits several redundant fixes per tick — while
    /// the rest report once. Models an event venue or pile-up where a
    /// dense subpopulation floods the feed.
    FlashCrowd,
    /// Every moving entity oversamples uniformly: the steady rush-hour
    /// feed where each commuter's device reports faster than the server
    /// ticks.
    CommuteWave,
    /// Congestion sensors re-report every changed edge several times
    /// (oscillating readings settling on the final weight) and movers
    /// report twice. Models an incident: the traffic plane is the noisy
    /// one, not the objects.
    IncidentResponse,
}

impl FirehosePattern {
    /// Display name, matching the experiment CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            FirehosePattern::FlashCrowd => "flash-crowd",
            FirehosePattern::CommuteWave => "commute-wave",
            FirehosePattern::IncidentResponse => "incident-response",
        }
    }
}

/// Firehose tuning: the base workload plus the oversampling shape.
#[derive(Clone, Debug)]
pub struct FirehoseConfig {
    /// The feed shape.
    pub pattern: FirehosePattern,
    /// Extra (superseded) reports per oversampling entity per tick.
    pub oversample: usize,
    /// Fraction of moving objects in the flash crowd (only
    /// [`FirehosePattern::FlashCrowd`] reads this).
    pub crowd_frac: f64,
    /// The base workload the redundancy is layered onto.
    pub scenario: ScenarioConfig,
}

impl FirehoseConfig {
    /// The named pattern over a base scenario, with the defaults the
    /// `experiments ingest` figure uses (oversample 3, crowd 20%).
    pub fn new(pattern: FirehosePattern, scenario: ScenarioConfig) -> Self {
        Self {
            pattern,
            oversample: 3,
            crowd_frac: 0.2,
            scenario,
        }
    }
}

/// One tick's two views; see the module docs.
pub struct FirehoseTick<'a> {
    /// Every report in submission order (intermediates before finals,
    /// interleaved across entities).
    pub raw: &'a [UpdateEvent],
    /// The base scenario's one-event-per-entity batch.
    pub effective: &'a UpdateBatch,
}

/// An oversampling event-stream generator over a base [`Scenario`].
pub struct Firehose {
    scenario: Scenario,
    cfg: FirehoseConfig,
    rng: StdRng,
    raw: Vec<UpdateEvent>,
    effective: UpdateBatch,
}

impl Firehose {
    /// Builds the base scenario from `cfg.scenario` and the oversampler
    /// around it. The redundancy RNG is derived from the scenario seed,
    /// so equal configs produce byte-identical raw streams.
    pub fn new(net: Arc<RoadNetwork>, cfg: FirehoseConfig) -> Self {
        let scenario = Scenario::new(net, cfg.scenario.clone());
        let rng = StdRng::seed_from_u64(cfg.scenario.seed ^ 0xF1FE_05E5);
        Self {
            scenario,
            cfg,
            rng,
            raw: Vec::new(),
            effective: UpdateBatch::default(),
        }
    }

    /// The base scenario (network, config, initial placements).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Installs the initial population into `monitor` (delegates to
    /// [`Scenario::install_into`]).
    pub fn install_into(&self, monitor: &mut dyn ContinuousMonitor) {
        self.scenario.install_into(monitor);
    }

    /// Advances the simulation one timestamp and returns both views of
    /// the tick. The borrows end when the caller is done submitting.
    pub fn tick(&mut self) -> FirehoseTick<'_> {
        self.effective = self.scenario.tick();
        self.build_raw();
        FirehoseTick {
            raw: &self.raw,
            effective: &self.effective,
        }
    }

    /// Fabricates the raw stream for the current effective batch:
    /// per-entity intermediate fixes first (round-robin across entities,
    /// so lanes and the ticket merge are genuinely exercised), then
    /// every entity's final report in batch order.
    fn build_raw(&mut self) {
        self.raw.clear();
        let over = self.cfg.oversample;
        // Per-plane oversampling rounds for this pattern.
        let (obj_rounds, qry_rounds, edge_rounds) = match self.cfg.pattern {
            FirehosePattern::FlashCrowd => (over.max(1) * 2, 0, 0),
            FirehosePattern::CommuteWave => (over, over, 0),
            FirehosePattern::IncidentResponse => (1, 1, over.max(1)),
        };
        let crowd = matches!(self.cfg.pattern, FirehosePattern::FlashCrowd);
        for round in 0..obj_rounds.max(qry_rounds).max(edge_rounds) {
            if round < obj_rounds {
                for ev in &self.effective.objects {
                    let &ObjectEvent::Move { id, to } = ev else {
                        continue;
                    };
                    // Crowd membership is a deterministic function of the
                    // entity id, so a crowd member bursts every tick.
                    if crowd && !in_crowd(id.0, self.cfg.crowd_frac) {
                        continue;
                    }
                    let fix = jitter(&mut self.rng, to);
                    self.raw.push(UpdateEvent::move_object(id, fix));
                }
            }
            if round < qry_rounds {
                for ev in &self.effective.queries {
                    let &QueryEvent::Move { id, to } = ev else {
                        continue;
                    };
                    let fix = jitter(&mut self.rng, to);
                    self.raw.push(UpdateEvent::move_query(id, fix));
                }
            }
            if round < edge_rounds {
                for ev in &self.effective.edges {
                    // Oscillating sensor readings around the final weight.
                    let noisy = ev.new_weight * self.rng.random_range(0.9..1.1);
                    self.raw.push(UpdateEvent::edge(ev.edge, noisy));
                }
            }
        }
        // Final (authoritative) reports, in effective-batch order.
        for ev in &self.effective.edges {
            self.raw.push(UpdateEvent::Edge(*ev));
        }
        for ev in &self.effective.objects {
            self.raw.push(UpdateEvent::Object(*ev));
        }
        for ev in &self.effective.queries {
            self.raw.push(UpdateEvent::Query(*ev));
        }
    }
}

/// Deterministic crowd membership: a cheap id hash against the fraction.
fn in_crowd(id: u32, frac: f64) -> bool {
    let h = (id as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
    (h as f64) < frac * (1u64 << 24) as f64
}

/// An intermediate fix *near* the final position: same edge, jittered
/// fraction. Harmless even if processed un-coalesced.
fn jitter(rng: &mut StdRng, to: NetPoint) -> NetPoint {
    NetPoint::new(
        to.edge,
        (to.frac + rng.random_range(-0.1..0.1)).clamp(0.0, 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use crate::scenario::MovementModel;
    use rnn_roadnet::generators::{grid_city, GridCityConfig};

    fn cfg(pattern: FirehosePattern) -> FirehoseConfig {
        FirehoseConfig::new(
            pattern,
            ScenarioConfig {
                num_objects: 60,
                num_queries: 8,
                k: 3,
                object_distribution: Distribution::Uniform,
                query_distribution: Distribution::Uniform,
                edge_agility: 0.05,
                object_agility: 0.5,
                query_agility: 0.5,
                object_speed: 1.0,
                query_speed: 1.0,
                movement: MovementModel::RandomWalk,
                hotspot: None,
                seed: 9,
            },
        )
    }

    fn net() -> Arc<RoadNetwork> {
        Arc::new(grid_city(&GridCityConfig {
            nx: 6,
            ny: 6,
            seed: 2,
            ..Default::default()
        }))
    }

    #[test]
    fn raw_stream_ends_with_every_effective_event() {
        let mut fh = Firehose::new(net(), cfg(FirehosePattern::CommuteWave));
        let t = fh.tick();
        let total = t.effective.edges.len() + t.effective.objects.len() + t.effective.queries.len();
        assert!(t.raw.len() > total, "commute wave must oversample");
        // The tail of the raw stream is exactly the effective batch.
        let tail = &t.raw[t.raw.len() - total..];
        let mut rebuilt = UpdateBatch::default();
        for &e in tail {
            rebuilt.push(e);
        }
        assert_eq!(&rebuilt, t.effective);
    }

    #[test]
    fn flash_crowd_bursts_only_the_crowd() {
        let mut fh = Firehose::new(net(), cfg(FirehosePattern::FlashCrowd));
        let t = fh.tick();
        let finals = t.effective.objects.len();
        let raw_objects = t
            .raw
            .iter()
            .filter(|e| matches!(e, UpdateEvent::Object(_)))
            .count();
        assert!(raw_objects > finals, "crowd members must burst");
        assert!(
            raw_objects < finals * 7,
            "non-crowd objects must not burst (got {raw_objects} raw for {finals} finals)"
        );
    }

    #[test]
    fn incident_response_oversamples_the_edge_plane() {
        let mut fh = Firehose::new(net(), cfg(FirehosePattern::IncidentResponse));
        let t = fh.tick();
        let edge_finals = t.effective.edges.len();
        let raw_edges = t
            .raw
            .iter()
            .filter(|e| matches!(e, UpdateEvent::Edge(_)))
            .count();
        assert!(edge_finals > 0, "seed must produce edge updates");
        assert_eq!(raw_edges, edge_finals * (1 + 3), "3 noisy + 1 final each");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Firehose::new(net(), cfg(FirehosePattern::CommuteWave));
        let mut b = Firehose::new(net(), cfg(FirehosePattern::CommuteWave));
        for _ in 0..3 {
            let ta_raw: Vec<UpdateEvent> = a.tick().raw.to_vec();
            let tb_raw: Vec<UpdateEvent> = b.tick().raw.to_vec();
            assert_eq!(ta_raw, tb_raw);
        }
    }
}
