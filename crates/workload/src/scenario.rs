//! End-to-end simulation scenarios (§6, Table 2).
//!
//! A [`Scenario`] owns the authoritative simulation state — entity
//! positions and current edge weights — and emits one
//! [`UpdateBatch`] per timestamp:
//!
//! * a fraction `f_edg` of the edges receive a ±10% weight update
//!   ("edge agility"),
//! * a fraction `f_obj` of the objects move a distance of
//!   `v_obj × average edge length` ("object agility" / "object speed"),
//! * a fraction `f_qry` of the queries move likewise.
//!
//! Driving several monitors from the same scenario (same seed) feeds them
//! byte-identical update streams, which is what both the differential
//! correctness tests and the benchmark harness rely on.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rnn_core::{
    ContinuousMonitor, EdgeWeightUpdate, ObjectEvent, QueryEvent, UpdateBatch, UpdateEvent,
};
use rnn_roadnet::{
    DijkstraEngine, EdgeId, EdgeWeights, NetPoint, ObjectId, PmrQuadtree, QueryId, RoadNetwork,
};
use serde::{Deserialize, Serialize};

use crate::brinkhoff::RouteFollower;
use crate::distribution::{gaussian_pair, Distribution, Placer};
use crate::movement::RandomWalker;

/// Which movement model entities follow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MovementModel {
    /// The paper's default random walk.
    RandomWalk,
    /// The Brinkhoff-substitute route follower (Fig. 19).
    Brinkhoff,
}

/// A drifting load hotspot layered on top of the base workload: entities
/// selected by their agility fraction jump to Gaussian samples around a
/// center that orbits the workspace, instead of random-walking. The
/// resulting object/query density is heavily skewed and *moves across the
/// network* over time — the workload that exercises the sharded engine's
/// dynamic re-partitioning (a static partition pins the hotspot to one
/// worker; a load-aware one follows it).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HotspotConfig {
    /// Spread of the hotspot: standard deviation of the jump targets as a
    /// fraction of the workspace half-diagonal (cf. [`Distribution`]).
    pub stddev_frac: f64,
    /// Timestamps for one full orbit of the workspace.
    pub period: f64,
    /// Whether moving objects jump to the hotspot.
    pub objects: bool,
    /// Whether moving queries jump to the hotspot.
    pub queries: bool,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        Self {
            stddev_frac: 0.08,
            period: 40.0,
            objects: true,
            queries: true,
        }
    }
}

/// All Table 2 parameters (paper defaults via [`Default`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of data objects `N` (paper default 100K).
    pub num_objects: usize,
    /// Number of queries `Q` (paper default 5K).
    pub num_queries: usize,
    /// Number of NNs per query `k` (paper default 50).
    pub k: usize,
    /// Initial object distribution (paper default uniform).
    pub object_distribution: Distribution,
    /// Initial query distribution (paper default Gaussian 10%).
    pub query_distribution: Distribution,
    /// Edge agility `f_edg`: fraction of edges updated per timestamp
    /// (paper default 4%).
    pub edge_agility: f64,
    /// Object agility `f_obj` (paper default 10%).
    pub object_agility: f64,
    /// Query agility `f_qry` (paper default 10%).
    pub query_agility: f64,
    /// Object speed `v_obj` in multiples of the average edge length
    /// (paper default 1).
    pub object_speed: f64,
    /// Query speed `v_qry` (paper default 1).
    pub query_speed: f64,
    /// Movement model (the paper's simple generator by default).
    pub movement: MovementModel,
    /// Optional drifting load hotspot (not in the paper; drives the
    /// engine's rebalance experiments). `None` keeps the update stream
    /// byte-identical to earlier releases.
    pub hotspot: Option<HotspotConfig>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            num_objects: 100_000,
            num_queries: 5_000,
            k: 50,
            object_distribution: Distribution::Uniform,
            query_distribution: Distribution::gaussian_queries(),
            edge_agility: 0.04,
            object_agility: 0.10,
            query_agility: 0.10,
            object_speed: 1.0,
            query_speed: 1.0,
            movement: MovementModel::RandomWalk,
            hotspot: None,
            seed: 0,
        }
    }
}

enum Mover {
    Walk(RandomWalker),
    Route(RouteFollower),
}

impl Mover {
    fn pos(&self) -> NetPoint {
        match self {
            Mover::Walk(w) => w.pos,
            Mover::Route(r) => r.pos,
        }
    }
}

/// Totals accumulated by [`Scenario::drive`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DriveReport {
    /// Number of timestamps driven.
    pub timestamps: usize,
    /// Summed monitor processing time across ticks.
    pub elapsed: std::time::Duration,
    /// Total queries whose reported result changed.
    pub results_changed: usize,
    /// Summed deterministic work counters.
    pub counters: rnn_core::OpCounters,
}

impl DriveReport {
    /// Mean monitor wall-clock seconds per timestamp.
    pub fn secs_per_tick(&self) -> f64 {
        if self.timestamps == 0 {
            return 0.0;
        }
        self.elapsed.as_secs_f64() / self.timestamps as f64
    }
}

/// A running simulation emitting per-timestamp update batches.
pub struct Scenario {
    net: Arc<RoadNetwork>,
    cfg: ScenarioConfig,
    rng: StdRng,
    weights: EdgeWeights,
    objects: Vec<Mover>,
    queries: Vec<Mover>,
    engine: DijkstraEngine,
    avg_len: f64,
    /// Coordinate→edge resolution, kept for hotspot jump targets.
    quadtree: PmrQuadtree,
    /// Timestamps emitted so far (drives the hotspot orbit).
    t: u64,
}

impl Scenario {
    /// Builds the initial state (placements, base weights).
    pub fn new(net: Arc<RoadNetwork>, cfg: ScenarioConfig) -> Self {
        assert!(cfg.num_objects > 0, "scenario needs objects");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let quadtree = PmrQuadtree::build(&net);
        let placer = Placer::new(&net, &quadtree);
        let weights = EdgeWeights::from_base(&net);
        let mut engine = DijkstraEngine::new(net.num_nodes());
        let avg_len = net
            .edge_ids()
            .map(|e| net.edge_euclidean_len(e))
            .sum::<f64>()
            / net.num_edges() as f64;

        let make = |dist: Distribution, rng: &mut StdRng, engine: &mut DijkstraEngine| {
            let pos = placer.sample(dist, rng);
            match cfg.movement {
                MovementModel::RandomWalk => Mover::Walk(RandomWalker::new(&net, pos, rng)),
                MovementModel::Brinkhoff => {
                    Mover::Route(RouteFollower::new(&net, &weights, engine, pos, rng))
                }
            }
        };
        let objects = (0..cfg.num_objects)
            .map(|_| make(cfg.object_distribution, &mut rng, &mut engine))
            .collect();
        let queries = (0..cfg.num_queries)
            .map(|_| make(cfg.query_distribution, &mut rng, &mut engine))
            .collect();
        Self {
            net,
            cfg,
            rng,
            weights,
            objects,
            queries,
            engine,
            avg_len,
            quadtree,
            t: 0,
        }
    }

    /// The hotspot center for the current timestamp: a point orbiting the
    /// workspace center, completing one lap every `period` timestamps, so
    /// the skewed density drifts across every part of the network.
    fn hotspot_center(&self, h: &HotspotConfig) -> (f64, f64) {
        let b = self.net.bounds();
        let c = b.center();
        let ang = std::f64::consts::TAU * (self.t as f64) / h.period.max(1.0);
        (
            c.x + 0.35 * b.width() * ang.cos(),
            c.y + 0.35 * b.height() * ang.sin(),
        )
    }

    /// One Gaussian jump target around the current hotspot center, snapped
    /// to the network.
    fn hotspot_sample(&mut self, h: &HotspotConfig, center: (f64, f64)) -> NetPoint {
        let b = self.net.bounds();
        let sd = h.stddev_frac * 0.5 * b.width().hypot(b.height());
        let (g1, g2) = gaussian_pair(&mut self.rng);
        let p = rnn_roadnet::Point2::new(center.0 + g1 * sd, center.1 + g2 * sd);
        self.quadtree
            .locate(&self.net, p)
            .expect("non-empty network")
    }

    /// The network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// The configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Current simulation weights (authoritative).
    pub fn weights(&self) -> &EdgeWeights {
        &self.weights
    }

    /// Initial object placements.
    pub fn initial_objects(&self) -> impl Iterator<Item = (ObjectId, NetPoint)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, m)| (ObjectId::from_index(i), m.pos()))
    }

    /// Initial query placements (`(id, k, position)`).
    pub fn initial_queries(&self) -> impl Iterator<Item = (QueryId, usize, NetPoint)> + '_ {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, m)| (QueryId::from_index(i), self.cfg.k, m.pos()))
    }

    /// Installs all objects and queries into a monitor.
    pub fn install_into(&self, monitor: &mut dyn ContinuousMonitor) {
        for (id, pos) in self.initial_objects() {
            monitor.apply(UpdateEvent::insert_object(id, pos));
        }
        for (id, k, pos) in self.initial_queries() {
            monitor.apply(UpdateEvent::install_query(id, k, pos));
        }
    }

    /// Installs the initial population into `monitor` and then drives it
    /// for `timestamps` ticks, accumulating the per-tick reports. This is
    /// the one-call driver used by examples and the engine-scaling bench;
    /// it works identically for a single monitor and for the sharded
    /// engine (anything implementing [`ContinuousMonitor`]).
    pub fn drive(&mut self, monitor: &mut dyn ContinuousMonitor, timestamps: usize) -> DriveReport {
        self.install_into(monitor);
        let mut report = DriveReport {
            timestamps,
            ..DriveReport::default()
        };
        for _ in 0..timestamps {
            let batch = self.tick();
            let rep = monitor.tick(&batch);
            report.elapsed += rep.elapsed;
            report.results_changed += rep.results_changed;
            report.counters.merge(&rep.counters);
        }
        report
    }

    /// Advances the simulation one timestamp and returns the update batch
    /// ("updates of all three types occur at each timestamp", §6).
    pub fn tick(&mut self) -> UpdateBatch {
        let mut batch = UpdateBatch::default();

        // --- Edge updates: f_edg of the edges change weight by ±10%.
        let n_edges = ((self.net.num_edges() as f64) * self.cfg.edge_agility).round() as usize;
        let picked = sample_indices(&mut self.rng, self.net.num_edges(), n_edges);
        for i in picked {
            let e = EdgeId::from_index(i);
            let old = self.weights.get(e);
            let factor = if self.rng.random::<bool>() { 1.1 } else { 0.9 };
            // Keep weights within sane bounds of the base value so long
            // simulations cannot drift to zero (documented in DESIGN.md).
            let base = self.net.edge(e).base_weight;
            let new = (old * factor).clamp(0.2 * base, 5.0 * base);
            if new != old {
                self.weights.set(e, new);
                batch.edges.push(EdgeWeightUpdate {
                    edge: e,
                    new_weight: new,
                });
            }
        }

        // --- Drifting hotspot (if configured): the center for this tick.
        let hotspot = self.cfg.hotspot;
        let center = hotspot.map(|h| self.hotspot_center(&h));

        // --- Object movements: f_obj of the objects walk v_obj × avg edge
        // (or jump to the hotspot when one is configured for objects).
        let n_obj = ((self.objects.len() as f64) * self.cfg.object_agility).round() as usize;
        let dist = self.cfg.object_speed * self.avg_len;
        for i in sample_indices(&mut self.rng, self.objects.len(), n_obj) {
            let new_pos = match hotspot.filter(|h| h.objects) {
                Some(h) => {
                    let to = self.hotspot_sample(&h, center.expect("hotspot set"));
                    self.teleport(true, i, to);
                    to
                }
                None => match &mut self.objects[i] {
                    Mover::Walk(w) => w.step(&self.net, dist, &mut self.rng),
                    Mover::Route(r) => r.step(
                        &self.net,
                        &self.weights,
                        &mut self.engine,
                        dist,
                        &mut self.rng,
                    ),
                },
            };
            batch.objects.push(ObjectEvent::Move {
                id: ObjectId::from_index(i),
                to: new_pos,
            });
        }

        // --- Query movements.
        let n_qry = ((self.queries.len() as f64) * self.cfg.query_agility).round() as usize;
        let dist = self.cfg.query_speed * self.avg_len;
        for i in sample_indices(&mut self.rng, self.queries.len(), n_qry) {
            let new_pos = match hotspot.filter(|h| h.queries) {
                Some(h) => {
                    let to = self.hotspot_sample(&h, center.expect("hotspot set"));
                    self.teleport(false, i, to);
                    to
                }
                None => match &mut self.queries[i] {
                    Mover::Walk(w) => w.step(&self.net, dist, &mut self.rng),
                    Mover::Route(r) => r.step(
                        &self.net,
                        &self.weights,
                        &mut self.engine,
                        dist,
                        &mut self.rng,
                    ),
                },
            };
            batch.queries.push(QueryEvent::Move {
                id: QueryId::from_index(i),
                to: new_pos,
            });
        }

        self.t += 1;
        batch
    }

    /// Drops mover `i` (object when `is_object`, query otherwise) at `to`,
    /// resetting its movement state so later walking steps stay valid.
    fn teleport(&mut self, is_object: bool, i: usize, to: NetPoint) {
        let mover = if is_object {
            &mut self.objects[i]
        } else {
            &mut self.queries[i]
        };
        match mover {
            Mover::Walk(w) => *w = RandomWalker::new(&self.net, to, &mut self.rng),
            Mover::Route(r) => r.teleport(to),
        }
    }
}

/// `count` distinct indices from `0..n`, deterministically from `rng`.
fn sample_indices(rng: &mut StdRng, n: usize, count: usize) -> Vec<usize> {
    let count = count.min(n);
    if count == 0 {
        return Vec::new();
    }
    // For small fractions, rejection sampling beats shuffling the universe.
    if count * 4 <= n {
        let mut seen = std::collections::HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let i = rng.random_range(0..n);
            if seen.insert(i) {
                out.push(i);
            }
        }
        out
    } else {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        all.truncate(count);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::generators::{grid_city, GridCityConfig};

    fn small_cfg() -> ScenarioConfig {
        ScenarioConfig {
            num_objects: 50,
            num_queries: 10,
            k: 3,
            seed: 7,
            ..Default::default()
        }
    }

    fn small_net() -> Arc<RoadNetwork> {
        Arc::new(grid_city(&GridCityConfig {
            nx: 8,
            ny: 8,
            seed: 3,
            ..Default::default()
        }))
    }

    #[test]
    fn initial_placement_counts() {
        let sc = Scenario::new(small_net(), small_cfg());
        assert_eq!(sc.initial_objects().count(), 50);
        assert_eq!(sc.initial_queries().count(), 10);
        for (_, k, p) in sc.initial_queries() {
            assert_eq!(k, 3);
            assert!(p.edge.index() < sc.network().num_edges());
        }
    }

    #[test]
    fn tick_respects_agilities() {
        let net = small_net();
        let e = net.num_edges();
        let mut sc = Scenario::new(
            net,
            ScenarioConfig {
                edge_agility: 0.04,
                object_agility: 0.10,
                query_agility: 0.10,
                ..small_cfg()
            },
        );
        let batch = sc.tick();
        // ±1 tolerance on rounding; weight updates may be suppressed when
        // the clamp kicks in (it cannot on the first tick).
        assert_eq!(batch.edges.len(), ((e as f64) * 0.04).round() as usize);
        assert_eq!(batch.objects.len(), 5);
        assert_eq!(batch.queries.len(), 1);
    }

    #[test]
    fn weight_updates_are_plus_minus_ten_percent() {
        let mut sc = Scenario::new(small_net(), small_cfg());
        let before = sc.weights().clone();
        let batch = sc.tick();
        for u in &batch.edges {
            let old = before.get(u.edge);
            let ratio = u.new_weight / old;
            assert!(
                (ratio - 1.1).abs() < 1e-9 || (ratio - 0.9).abs() < 1e-9,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn zero_agility_produces_empty_parts() {
        let mut sc = Scenario::new(
            small_net(),
            ScenarioConfig {
                edge_agility: 0.0,
                object_agility: 0.0,
                query_agility: 0.0,
                ..small_cfg()
            },
        );
        let batch = sc.tick();
        assert!(batch.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let net = small_net();
        let mut a = Scenario::new(net.clone(), small_cfg());
        let mut b = Scenario::new(net, small_cfg());
        for _ in 0..5 {
            assert_eq!(a.tick(), b.tick());
        }
    }

    #[test]
    fn brinkhoff_model_runs() {
        let mut sc = Scenario::new(
            small_net(),
            ScenarioConfig {
                movement: MovementModel::Brinkhoff,
                ..small_cfg()
            },
        );
        for _ in 0..3 {
            let batch = sc.tick();
            assert!(!batch.objects.is_empty());
        }
    }

    #[test]
    fn hotspot_skews_density_and_drifts() {
        let net = small_net();
        let mut sc = Scenario::new(
            net.clone(),
            ScenarioConfig {
                num_objects: 200,
                num_queries: 20,
                object_agility: 1.0,
                query_agility: 1.0,
                hotspot: Some(HotspotConfig {
                    stddev_frac: 0.05,
                    period: 8.0,
                    objects: true,
                    queries: true,
                }),
                ..small_cfg()
            },
        );
        let spread_around = |batch: &UpdateBatch, cx: f64, cy: f64| -> f64 {
            let mut sum = 0.0;
            let mut n = 0usize;
            for ev in &batch.objects {
                if let ObjectEvent::Move { to, .. } = ev {
                    let p = to.coordinates(&net);
                    sum += ((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt();
                    n += 1;
                }
            }
            sum / n as f64
        };
        let c0 = sc.hotspot_center(&sc.cfg.hotspot.unwrap());
        let b0 = sc.tick();
        assert_eq!(b0.objects.len(), 200, "full agility moves everything");
        let half_diag = 0.5 * net.bounds().width().hypot(net.bounds().height());
        assert!(
            spread_around(&b0, c0.0, c0.1) < 0.5 * half_diag,
            "jump targets must cluster near the hotspot center"
        );
        // The center drifts: after a quarter period it has moved a
        // macroscopic distance.
        let mut c_later = c0;
        for _ in 0..2 {
            sc.tick();
            c_later = sc.hotspot_center(&sc.cfg.hotspot.unwrap());
        }
        let moved = ((c_later.0 - c0.0).powi(2) + (c_later.1 - c0.1).powi(2)).sqrt();
        assert!(moved > 0.1 * half_diag, "hotspot center must drift");
    }

    #[test]
    fn hotspot_stream_is_deterministic() {
        let net = small_net();
        let cfg = ScenarioConfig {
            hotspot: Some(HotspotConfig::default()),
            ..small_cfg()
        };
        let mut a = Scenario::new(net.clone(), cfg.clone());
        let mut b = Scenario::new(net, cfg);
        for _ in 0..5 {
            assert_eq!(a.tick(), b.tick());
        }
    }

    #[test]
    fn sample_indices_distinct_and_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, c) in [(100, 5), (100, 90), (10, 10), (10, 0), (5, 20)] {
            let v = sample_indices(&mut rng, n, c);
            assert_eq!(v.len(), c.min(n));
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), v.len(), "duplicates for n={n} c={c}");
            assert!(v.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn drive_installs_and_accumulates() {
        let net = small_net();
        let mut sc = Scenario::new(net.clone(), small_cfg());
        let mut ima = rnn_core::Ima::new(net);
        let rep = sc.drive(&mut ima, 4);
        assert_eq!(rep.timestamps, 4);
        assert_eq!(ima.query_ids().len(), 10);
        assert!(rep.counters.work() > 0, "driving must do monitor work");
        assert!(rep.secs_per_tick() >= 0.0);
    }

    #[test]
    fn install_into_monitor_roundtrip() {
        let net = small_net();
        let sc = Scenario::new(net.clone(), small_cfg());
        let mut ovh = rnn_core::Ovh::new(net);
        sc.install_into(&mut ovh);
        assert_eq!(ovh.query_ids().len(), 10);
        for id in ovh.query_ids() {
            assert_eq!(ovh.result(id).unwrap().len(), 3);
        }
    }
}
