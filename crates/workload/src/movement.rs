//! Random-walk movement (§6).
//!
//! > "A moving object (query) performs a random walk in the network and
//! > covers a fixed distance v_obj (v_qry)."
//!
//! A [`RandomWalker`] keeps a heading (the node it is walking towards) and
//! consumes its per-tick distance budget edge by edge, turning onto a
//! uniformly random incident edge at every node (avoiding an immediate
//! U-turn except at dead ends). Distances are measured in *base* edge
//! lengths — movement is spatial, while the fluctuating weights model
//! travel time.

use rand::rngs::StdRng;
use rand::Rng;
use rnn_roadnet::{NetPoint, NodeId, RoadNetwork};

/// A random-walking entity on the network.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalker {
    /// Current position.
    pub pos: NetPoint,
    /// The endpoint of the current edge the walker is heading towards.
    pub heading: NodeId,
}

impl RandomWalker {
    /// Creates a walker at `pos` with a random initial heading.
    pub fn new(net: &RoadNetwork, pos: NetPoint, rng: &mut StdRng) -> Self {
        let edge = net.edge(pos.edge);
        let heading = if rng.random::<bool>() {
            edge.end
        } else {
            edge.start
        };
        Self { pos, heading }
    }

    /// Advances the walker by `distance` (base-length units) and returns
    /// the new position.
    pub fn step(&mut self, net: &RoadNetwork, distance: f64, rng: &mut StdRng) -> NetPoint {
        let mut remaining = distance;
        // Guard against zero-length-ish loops on degenerate graphs.
        let mut hops = 0;
        while remaining > 0.0 && hops < 10_000 {
            hops += 1;
            let len = net.edge_euclidean_len(self.pos.edge);
            let edge = net.edge(self.pos.edge);
            let toward_end = self.heading == edge.end;
            let to_boundary = if toward_end {
                (1.0 - self.pos.frac) * len
            } else {
                self.pos.frac * len
            };
            if remaining < to_boundary {
                let df = remaining / len;
                let frac = if toward_end {
                    self.pos.frac + df
                } else {
                    self.pos.frac - df
                };
                self.pos = NetPoint::new(self.pos.edge, frac);
                break;
            }
            remaining -= to_boundary;
            // Arrived at `heading`: pick the next edge.
            let node = self.heading;
            let incident = net.adjacent(node);
            let (next_edge, next_other) = if incident.len() == 1 {
                incident[0] // dead end: U-turn
            } else {
                // Uniform among incident edges other than the one just used.
                let cur = self.pos.edge;
                let choices = incident.len() - 1;
                let mut pick = rng.random_range(0..choices);
                let mut chosen = incident[0];
                for &cand in incident {
                    if cand.0 == cur {
                        continue;
                    }
                    if pick == 0 {
                        chosen = cand;
                        break;
                    }
                    pick -= 1;
                }
                chosen
            };
            let next_rec = net.edge(next_edge);
            let frac = if next_rec.start == node { 0.0 } else { 1.0 };
            self.pos = NetPoint::new(next_edge, frac);
            self.heading = next_other;
        }
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rnn_roadnet::generators::{grid_city, line_network, GridCityConfig};
    use rnn_roadnet::EdgeId;

    #[test]
    fn partial_step_stays_on_edge() {
        let net = line_network(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = RandomWalker {
            pos: NetPoint::new(EdgeId(0), 0.5),
            heading: NodeId(1),
        };
        let p = w.step(&net, 0.5, &mut rng);
        assert_eq!(p.edge, EdgeId(0));
        assert!((p.frac - 0.75).abs() < 1e-12);
    }

    #[test]
    fn crossing_a_node_continues() {
        let net = line_network(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = RandomWalker {
            pos: NetPoint::new(EdgeId(0), 0.5),
            heading: NodeId(1),
        };
        // 1.0 to reach node 1, then 1.0 into edge 1 (the only non-backtrack
        // choice).
        let p = w.step(&net, 2.0, &mut rng);
        assert_eq!(p.edge, EdgeId(1));
        assert!((p.frac - 0.5).abs() < 1e-12);
        assert_eq!(w.heading, NodeId(2));
    }

    #[test]
    fn dead_end_u_turns() {
        let net = line_network(2, 1.0); // single edge
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = RandomWalker {
            pos: NetPoint::new(EdgeId(0), 0.5),
            heading: NodeId(1),
        };
        let p = w.step(&net, 1.0, &mut rng);
        // 0.5 to node 1, U-turn, 0.5 back: frac 0.5 heading node 0.
        assert_eq!(p.edge, EdgeId(0));
        assert!((p.frac - 0.5).abs() < 1e-12);
        assert_eq!(w.heading, NodeId(0));
    }

    #[test]
    fn walk_covers_requested_distance_on_average() {
        let net = grid_city(&GridCityConfig {
            nx: 8,
            ny: 8,
            seed: 4,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(9);
        let mut w = RandomWalker::new(&net, NetPoint::new(EdgeId(0), 0.5), &mut rng);
        // Many steps; each must leave the walker at a valid position.
        for _ in 0..200 {
            let p = w.step(&net, 40.0, &mut rng);
            assert!(p.edge.index() < net.num_edges());
            assert!((0.0..=1.0).contains(&p.frac));
        }
    }

    #[test]
    fn zero_distance_is_identity() {
        let net = line_network(3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = RandomWalker {
            pos: NetPoint::new(EdgeId(1), 0.25),
            heading: NodeId(2),
        };
        let p = w.step(&net, 0.0, &mut rng);
        assert_eq!(p, NetPoint::new(EdgeId(1), 0.25));
    }
}
