//! CLI: `cargo run -p rnn-analysis -- check [--root <dir>]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 the pass itself failed to run
//! (missing/malformed manifest, unreadable scoped file).
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use rnn_analysis::{check_workspace, MANIFEST_NAME};

fn usage() -> ExitCode {
    eprintln!("usage: rnn-analysis check [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if cmd != Some("check") {
        return usage();
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "rnn-analysis: no {MANIFEST_NAME} found here or in any parent directory \
                 (pass --root <dir>)"
            );
            return ExitCode::from(2);
        }
    };

    match check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("rnn-analysis: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("rnn-analysis: {} finding(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("rnn-analysis: error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Upward search from the current directory for the manifest, so the
/// pass works from any workspace subdirectory.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join(MANIFEST_NAME).is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
