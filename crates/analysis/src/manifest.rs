//! The `lint.toml` scope manifest: which files each rule covers, the
//! counter→JSON-column mapping, and the justified allow-lists.
//!
//! Parsed with a purpose-built reader for the small TOML subset the
//! manifest actually uses — `[section]` / `[section.sub]` headers, `key =
//! "string"`, `key = ["array", "of", "strings"]` (multi-line allowed), and
//! `#` comments — keeping the crate dependency-free like the rest of the
//! vendor-stub discipline. Anything outside that subset is a hard error:
//! a manifest that cannot be read precisely must not silently narrow a
//! rule's scope.

use std::collections::BTreeMap;

/// One parsed value: a string or a list of strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `key = "text"`.
    Str(String),
    /// `key = ["a", "b"]`.
    List(Vec<String>),
}

/// `section name → key → value`; subsections keep their dotted name
/// (`counter-schema-sync.columns`).
pub type Manifest = BTreeMap<String, BTreeMap<String, Value>>;

/// Parses manifest text. Errors carry the 1-based line number.
pub fn parse(src: &str) -> Result<Manifest, String> {
    let mut out = Manifest::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(format!("line {lineno}: unterminated section header"));
            };
            section = name.trim().to_string();
            if section.is_empty() {
                return Err(format!("line {lineno}: empty section name"));
            }
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let key = line[..eq].trim().to_string();
        if key.is_empty() || section.is_empty() {
            return Err(format!("line {lineno}: key outside a section"));
        }
        let mut value_text = line[eq + 1..].trim().to_string();
        // A multi-line array: keep consuming lines until the bracket
        // closes (strings in the manifest never contain brackets).
        if value_text.starts_with('[') {
            while !balanced(&value_text) {
                let Some((_, more)) = lines.next() else {
                    return Err(format!("line {lineno}: unterminated array for `{key}`"));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(more).trim());
            }
        }
        let value = parse_value(&value_text)
            .map_err(|e| format!("line {lineno}: value for `{key}`: {e}"))?;
        out.entry(section.clone()).or_default().insert(key, value);
    }
    Ok(out)
}

/// Cuts a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Whether every `[` in an array literal has closed (strings excluded).
fn balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth <= 0
}

fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_string(part)?);
        }
        return Ok(Value::List(items));
    }
    Ok(Value::Str(parse_string(text)?))
}

/// Splits on commas outside quotes.
fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        escaped = false;
    }
    parts.push(cur);
    parts
}

fn parse_string(text: &str) -> Result<String, String> {
    let t = text.trim();
    let inner = t
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{t}`"))?;
    // The manifest's strings are paths, column names, and prose; the only
    // escapes worth honouring are \" and \\.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Convenience accessors over a parsed manifest.
pub trait ManifestExt {
    /// The string list at `section.key`, if the section and key exist.
    fn list(&self, section: &str, key: &str) -> Option<Vec<String>>;
    /// The string at `section.key`.
    fn str(&self, section: &str, key: &str) -> Option<String>;
    /// All `key → string value` pairs of a section.
    fn table(&self, section: &str) -> Option<&BTreeMap<String, Value>>;
}

impl ManifestExt for Manifest {
    fn list(&self, section: &str, key: &str) -> Option<Vec<String>> {
        match self.get(section)?.get(key)? {
            Value::List(v) => Some(v.clone()),
            Value::Str(s) => Some(vec![s.clone()]),
        }
    }
    fn str(&self, section: &str, key: &str) -> Option<String> {
        match self.get(section)?.get(key)? {
            Value::Str(s) => Some(s.clone()),
            Value::List(_) => None,
        }
    }
    fn table(&self, section: &str) -> Option<&BTreeMap<String, Value>> {
        self.get(section)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_arrays_and_comments_parse() {
        let m = parse(
            "# top comment\n\
             [hot-path-alloc]\n\
             files = [\n\
               \"a.rs\", # trailing\n\
               \"b.rs\",\n\
             ]\n\
             [counter-schema-sync.columns]\n\
             alloc_events = \"alloc_per_ts\"\n",
        )
        .unwrap();
        assert_eq!(
            m.list("hot-path-alloc", "files").unwrap(),
            vec!["a.rs".to_string(), "b.rs".to_string()]
        );
        assert_eq!(
            m.str("counter-schema-sync.columns", "alloc_events")
                .unwrap(),
            "alloc_per_ts"
        );
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let m = parse("[s]\nkey = \"has # inside\"\n").unwrap();
        assert_eq!(m.str("s", "key").unwrap(), "has # inside");
    }

    #[test]
    fn malformed_manifests_are_hard_errors() {
        for bad in [
            "[unclosed\nkey = \"v\"\n",
            "key = \"outside any section\"\n",
            "[s]\nkey = unquoted\n",
            "[s]\nkey = [\"never closed\"\n",
            "[s]\njust a line\n",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn empty_sections_exist() {
        let m = parse("[forbid-unsafe]\n").unwrap();
        assert!(m.table("forbid-unsafe").is_some());
    }
}
