//! A small hand-rolled Rust lexer: enough token structure for the lint
//! rules, and nothing more.
//!
//! The lexer understands exactly the parts of Rust surface syntax a
//! text-level scan gets wrong: string literals (plain, raw, byte, and
//! C-string forms), char literals vs. lifetimes, nested block comments,
//! and line comments — so a rule matching `unwrap` never fires on the word
//! inside a doc comment or a format string. It does **not** build a syntax
//! tree; rules pattern-match over the flat token stream.
//!
//! Two hard guarantees, pinned by the proptest in `tests/properties.rs`:
//! the lexer never panics and always terminates, on arbitrary input. Every
//! loop below advances the cursor by at least one byte per iteration, and
//! every unterminated construct (string, comment, char) lexes to the end
//! of input instead of erroring.
//!
//! Line comments are additionally scanned for the inline escape syntax
//!
//! ```text
//! // lint: allow(<rule>): <justification>
//! ```
//!
//! which is collected as an [`AllowDirective`]. A directive with an empty
//! justification is recorded as malformed — the rule engine turns that
//! into a diagnostic of its own, so an escape can never be silent.

/// What a token is. Identifiers keep their text (rules match on names);
/// string literals keep their *raw* content (the counter-schema rule
/// searches JSON keys inside format strings); punctuation keeps the
/// character. Numeric, char, and lifetime tokens carry no payload — rules
/// only need to know they are not identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`Vec`, `fn`, `unwrap`, ...).
    Ident(String),
    /// One punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct(char),
    /// A string literal's content, escapes left as written.
    Str(String),
    /// A char or byte literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: u32,
}

/// One parsed `// lint: allow(<rule>): <justification>` escape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The free-text justification after the closing `):`. Guaranteed
    /// non-empty — an empty one is reported in
    /// [`LexOutput::malformed_allows`] instead.
    pub justification: String,
}

/// Everything the lexer extracts from one source file.
#[derive(Clone, Debug, Default)]
pub struct LexOutput {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Tok>,
    /// Well-formed inline allow escapes.
    pub allows: Vec<AllowDirective>,
    /// Lines holding a `lint:` comment that failed to parse as
    /// `allow(<rule>): <non-empty justification>`.
    pub malformed_allows: Vec<u32>,
}

/// Lexes `src` into tokens plus inline lint directives.
pub fn lex(src: &str) -> LexOutput {
    let b = src.as_bytes();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let end = line_end(b, start);
                scan_lint_comment(&src[start..end], line, &mut out);
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; unterminated runs to EOF.
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                let (content, next) = scan_string(b, i + 1, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Str(String::from_utf8_lossy(content).into_owned()),
                    line: tok_line,
                });
                i = next;
            }
            b'\'' => {
                let tok_line = line;
                i = scan_quote(b, i, &mut line, tok_line, &mut out.tokens);
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                i = scan_number(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    line: tok_line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let tok_line = line;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // String-literal prefixes: r"", r#""#, b"", br"", c"",
                // and the raw-identifier form r#ident.
                if matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr") {
                    let mut j = i;
                    let mut hashes = 0usize;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'"' {
                        let (content, next) = if word.contains('r') || hashes > 0 {
                            scan_raw_string(b, j + 1, hashes, &mut line)
                        } else {
                            scan_string(b, j + 1, &mut line)
                        };
                        out.tokens.push(Tok {
                            kind: TokKind::Str(String::from_utf8_lossy(content).into_owned()),
                            line: tok_line,
                        });
                        i = next;
                        continue;
                    }
                    if word == "r" && hashes == 1 && j < b.len() {
                        // Raw identifier r#foo: lex as the identifier.
                        let start2 = j;
                        let mut k = j;
                        while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                            k += 1;
                        }
                        if k > start2 {
                            out.tokens.push(Tok {
                                kind: TokKind::Ident(src[start2..k].to_string()),
                                line: tok_line,
                            });
                            i = k;
                            continue;
                        }
                    }
                    if word == "b" && j < b.len() && b[j] == b'\'' {
                        // Byte char literal b'x'.
                        i = scan_quote(b, j, &mut line, tok_line, &mut out.tokens);
                        continue;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident(word.to_string()),
                    line: tok_line,
                });
            }
            _ => {
                // Multi-byte UTF-8 and all remaining ASCII lex as single
                // punctuation tokens; advance by the full code point so we
                // never split one.
                let ch = src[i..].chars().next().unwrap_or('\u{fffd}');
                out.tokens.push(Tok {
                    kind: TokKind::Punct(if ch.is_ascii() { ch } else { '\u{fffd}' }),
                    line,
                });
                i += ch.len_utf8().max(1);
            }
        }
    }
    out
}

/// Index of the next newline at or after `from` (or EOF).
fn line_end(b: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < b.len() && b[i] != b'\n' {
        i += 1;
    }
    i
}

/// Scans a plain (escaped) string body starting *after* the opening quote;
/// returns the content slice and the index after the closing quote.
fn scan_string<'a>(b: &'a [u8], start: usize, line: &mut u32) -> (&'a [u8], usize) {
    let mut i = start;
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return (&b[start..i], i + 1),
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (&b[start..], i)
}

/// Scans a raw string body (after the opening quote) terminated by `"`
/// followed by `hashes` `#` characters.
fn scan_raw_string<'a>(
    b: &'a [u8],
    start: usize,
    hashes: usize,
    line: &mut u32,
) -> (&'a [u8], usize) {
    let mut i = start;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"'
            && b.len() - i > hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return (&b[start..i], i + 1 + hashes);
        }
        i += 1;
    }
    (&b[start..], i)
}

/// Scans from a `'`: either a char/byte literal or a lifetime.
fn scan_quote(b: &[u8], at: usize, line: &mut u32, tok_line: u32, toks: &mut Vec<Tok>) -> usize {
    let mut i = at + 1; // past the opening '
    if i >= b.len() {
        toks.push(Tok {
            kind: TokKind::Char,
            line: tok_line,
        });
        return i;
    }
    let is_ident_start = b[i].is_ascii_alphabetic() || b[i] == b'_';
    if is_ident_start && b.get(i + 1) != Some(&b'\'') {
        // Lifetime: consume the identifier, no closing quote.
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        toks.push(Tok {
            kind: TokKind::Lifetime,
            line: tok_line,
        });
        return i;
    }
    // Char literal: one (possibly escaped) char, then the closing quote.
    if b[i] == b'\\' {
        i = (i + 2).min(b.len());
        // Escapes like \u{1F600} or \x7f: consume to the closing quote.
        while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
            i += 1;
        }
    } else if b[i] == b'\n' {
        *line += 1;
        i += 1;
    } else {
        i += src_char_len(b, i);
    }
    if i < b.len() && b[i] == b'\'' {
        i += 1;
    }
    toks.push(Tok {
        kind: TokKind::Char,
        line: tok_line,
    });
    i
}

/// Length in bytes of the UTF-8 code point starting at `i` (1 for
/// continuation garbage, so progress is always made).
fn src_char_len(b: &[u8], i: usize) -> usize {
    match b[i] {
        x if x < 0x80 => 1,
        x if x >= 0xF0 => 4,
        x if x >= 0xE0 => 3,
        x if x >= 0xC0 => 2,
        _ => 1,
    }
}

/// Scans a numeric literal (integer, float, hex, suffixed). Consumes a
/// decimal point only when a digit follows, so ranges (`0..n`) survive.
fn scan_number(b: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    i
}

/// Parses one line comment's text for the lint escape syntax.
fn scan_lint_comment(text: &str, line: u32, out: &mut LexOutput) {
    // Doc comments (/// or //!) never carry directives; the extra slash
    // or bang is simply part of `text` and fails the prefix match below.
    let t = text.trim_start();
    let Some(rest) = t.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim_start();
    let parsed = (|| {
        let rest = rest.strip_prefix("allow(")?;
        let close = rest.find(')')?;
        let rule = rest[..close].trim();
        let tail = rest[close + 1..].trim_start();
        let just = tail.strip_prefix(':')?.trim();
        if rule.is_empty() || just.is_empty() {
            return None;
        }
        Some(AllowDirective {
            line,
            rule: rule.to_string(),
            justification: just.to_string(),
        })
    })();
    match parsed {
        Some(d) => out.allows.push(d),
        None => out.malformed_allows.push(line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents_from_ident_matching() {
        let src = r##"
            // unwrap in a comment
            /* unwrap in /* a nested */ block */
            let s = "unwrap inside a string";
            let r = r#"raw unwrap"#;
            let ok = value.checked();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(ids.contains(&"checked".to_string()));
        // The string contents are still available to rules that want them.
        let strs: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| matches!(t.kind, TokKind::Str(_)))
            .collect();
        assert_eq!(strs.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_chars_and_strings_lex() {
        let toks = lex(r#"let a = '\''; let b = '\u{1F600}'; let c = "q\"w";"#).tokens;
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Str(s) if s == "q\\\"w")));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\nb";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // b after the 2-line string
    }

    #[test]
    fn allow_directives_parse_and_empty_justifications_are_malformed() {
        let src = "\
            x(); // lint: allow(hot-path-alloc): amortized by the pool\n\
            y(); // lint: allow(panic-free-wire):\n\
            z(); // lint: deny(whatever): not the allow form\n";
        let out = lex(src);
        assert_eq!(out.allows.len(), 1);
        assert_eq!(out.allows[0].rule, "hot-path-alloc");
        assert_eq!(out.allows[0].line, 1);
        assert_eq!(out.allows[0].justification, "amortized by the pool");
        assert_eq!(out.malformed_allows, vec![2, 3]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..10 { a[i] }").tokens;
        let dots = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panicking() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "'a", "r#"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn byte_and_raw_strings_lex_as_strings() {
        let toks = lex(r##"let a = b"bytes"; let b = br#"raw bytes"#; let c = r"raw";"##).tokens;
        let strs = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Str(_)))
            .count();
        assert_eq!(strs, 3);
    }
}
