//! Diagnostics and the inline-allow suppression pass.

use crate::lexer::AllowDirective;

/// One finding, printed as `file:line: [rule] message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the checked root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`hot-path-alloc`, ...).
    pub rule: &'static str,
    /// Human message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule name for the meta-diagnostics about the escape syntax itself.
pub const LINT_ALLOW_RULE: &str = "lint-allow";

/// Applies the inline escapes of one file to its diagnostics:
///
/// * a diagnostic is suppressed when a directive for its rule sits on the
///   same line (trailing comment) or on the line directly above;
/// * a directive that suppressed nothing becomes an `unused lint allow`
///   diagnostic — stale escapes must not linger as false documentation;
/// * malformed directives (empty justification) become diagnostics too.
///
/// Directives naming unknown rules are reported by the caller, which
/// knows the rule set.
pub fn apply_allows(
    file: &str,
    allows: &[AllowDirective],
    malformed: &[u32],
    diags: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut used = vec![false; allows.len()];
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in diags {
        let hit = allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line));
        match hit {
            Some((i, _)) => used[i] = true,
            None => out.push(d),
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if !used[i] {
            out.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                rule: LINT_ALLOW_RULE,
                message: format!(
                    "unused `lint: allow({})` — nothing on this or the next line trips the rule; \
                     remove the stale escape",
                    a.rule
                ),
            });
        }
    }
    for &line in malformed {
        out.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: LINT_ALLOW_RULE,
            message: "malformed lint escape — the required form is \
                      `// lint: allow(<rule>): <non-empty justification>`"
                .to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(line: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: "f.rs".into(),
            line,
            rule,
            message: "m".into(),
        }
    }

    fn allow(line: u32, rule: &str) -> AllowDirective {
        AllowDirective {
            line,
            rule: rule.into(),
            justification: "because".into(),
        }
    }

    #[test]
    fn same_line_and_line_above_suppress() {
        let allows = vec![allow(5, "r"), allow(9, "r")];
        let out = apply_allows("f.rs", &allows, &[], vec![diag(5, "r"), diag(10, "r")]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wrong_rule_or_far_line_does_not_suppress_and_unused_is_reported() {
        let allows = vec![allow(5, "other")];
        let out = apply_allows("f.rs", &allows, &[], vec![diag(5, "r")]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|d| d.rule == "r"));
        assert!(out.iter().any(|d| d.rule == LINT_ALLOW_RULE));
    }

    #[test]
    fn malformed_directives_surface() {
        let out = apply_allows("f.rs", &[], &[3], vec![]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert_eq!(out[0].rule, LINT_ALLOW_RULE);
    }
}
