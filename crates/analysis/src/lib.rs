//! `rnn-analysis` — a project-native static lint pass for the rnn-monitor
//! workspace.
//!
//! Generic linters cannot see this project's invariants: that the
//! steady-state tick path must not allocate (the runtime `alloc_events`
//! gate only catches what a benchmark happens to execute), that the wire
//! decode paths must never panic on hostile bytes, that every work
//! counter must flow into the bench JSON schema and the CI gate, and
//! that the API surface's doc comments stay mechanically well-formed.
//! This crate encodes those invariants as five rules over a hand-rolled
//! Rust lexer and runs them at review time:
//!
//! ```text
//! cargo run -p rnn-analysis -- check
//! ```
//!
//! Scope lives in `lint.toml` at the workspace root; per-site escapes are
//! `// lint: allow(<rule>): <justification>` comments with a mandatory
//! non-empty justification. Unused escapes are themselves diagnostics, so
//! the allow-list cannot rot.
#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;

use std::path::{Path, PathBuf};

use diag::{apply_allows, Diagnostic, LINT_ALLOW_RULE};
use lexer::{lex, AllowDirective};
use manifest::{Manifest, ManifestExt, Value};
use rules::{
    counter_schema_sync, doc_comment_shape, has_forbid_unsafe, hot_path_alloc, panic_free_wire,
    strip_test_code, CounterSyncInput, RULE_COUNTER, RULE_DOC, RULE_HOT_PATH, RULE_UNSAFE,
    RULE_WIRE,
};

/// The manifest file the pass is configured by.
pub const MANIFEST_NAME: &str = "lint.toml";

/// Runs every configured rule over the tree rooted at `root` (which must
/// contain a [`MANIFEST_NAME`]). `Ok` carries the findings — empty means
/// the tree is clean; `Err` means the pass itself could not run (missing
/// manifest, unreadable scoped file, malformed manifest), which is always
/// a hard failure: a lint pass that silently skips scope enforces nothing.
pub fn check_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let manifest_path = root.join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let m = manifest::parse(&text).map_err(|e| format!("{MANIFEST_NAME}: {e}"))?;

    let mut out = Vec::new();
    check_token_rules(root, &m, &mut out)?;
    check_forbid_unsafe(root, &m, &mut out)?;
    check_counter_sync(root, &m, &mut out)?;
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

/// Reads a manifest-scoped file; missing scope is a hard error, not a
/// silently narrowed rule.
fn read_scoped(root: &Path, rel: &str) -> Result<String, String> {
    std::fs::read_to_string(root.join(rel))
        .map_err(|e| format!("{MANIFEST_NAME} scopes `{rel}` but it cannot be read: {e}"))
}

/// Runs the per-file rules (`hot-path-alloc`, `panic-free-wire`,
/// `doc-comment-shape`) over their manifest scopes. A file scoped by
/// several rules is lexed once and its escapes are resolved across all
/// of them, so an allow for one rule is never misreported as unused just
/// because another rule also covers the file.
fn check_token_rules(root: &Path, m: &Manifest, out: &mut Vec<Diagnostic>) -> Result<(), String> {
    let hot = m.list(RULE_HOT_PATH, "files").unwrap_or_default();
    let wire = m.list(RULE_WIRE, "files").unwrap_or_default();
    let docs = m.list(RULE_DOC, "files").unwrap_or_default();
    let mut files: Vec<&String> = hot.iter().chain(wire.iter()).chain(docs.iter()).collect();
    files.sort();
    files.dedup();

    for rel in files {
        let src = read_scoped(root, rel)?;
        let lexed = lex(&src);
        let toks = strip_test_code(&lexed.tokens);
        let mut diags = Vec::new();
        if hot.contains(rel) {
            diags.extend(hot_path_alloc(rel, &toks));
        }
        if wire.contains(rel) {
            diags.extend(panic_free_wire(rel, &toks));
        }
        if docs.contains(rel) {
            // The lexer strips comments, so the doc rule reads the raw
            // source instead of the token stream.
            diags.extend(doc_comment_shape(rel, &src));
        }
        let (known, unknown): (Vec<AllowDirective>, Vec<AllowDirective>) =
            lexed.allows.into_iter().partition(|a| {
                [
                    RULE_HOT_PATH,
                    RULE_WIRE,
                    RULE_UNSAFE,
                    RULE_COUNTER,
                    RULE_DOC,
                ]
                .contains(&a.rule.as_str())
            });
        for a in unknown {
            out.push(Diagnostic {
                file: rel.clone(),
                line: a.line,
                rule: LINT_ALLOW_RULE,
                message: format!("`lint: allow({})` names an unknown rule", a.rule),
            });
        }
        out.extend(apply_allows(rel, &known, &lexed.malformed_allows, diags));
    }
    Ok(())
}

/// Walks the tree for crate roots (any `Cargo.toml` with sibling sources)
/// and demands `#![forbid(unsafe_code)]` in each root file. Directories
/// whose name appears in the manifest's `skip` list are pruned, as are
/// dot-directories and build output.
fn check_forbid_unsafe(root: &Path, m: &Manifest, out: &mut Vec<Diagnostic>) -> Result<(), String> {
    if m.table(RULE_UNSAFE).is_none() {
        return Ok(());
    }
    let skip = m.list(RULE_UNSAFE, "skip").unwrap_or_default();
    let mut manifests = Vec::new();
    walk_for_manifests(root, &skip, &mut manifests);
    manifests.sort();
    for dir in manifests {
        let mut roots: Vec<PathBuf> = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|r| dir.join(r))
            .filter(|p| p.is_file())
            .collect();
        if let Ok(entries) = std::fs::read_dir(dir.join("src/bin")) {
            let mut bins: Vec<PathBuf> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect();
            bins.sort();
            roots.extend(bins);
        }
        for path in roots {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            if !has_forbid_unsafe(&lex(&src).tokens) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .into_owned();
                out.push(Diagnostic {
                    file: rel,
                    line: 1,
                    rule: RULE_UNSAFE,
                    message: "crate root lacks `#![forbid(unsafe_code)]` — every crate in \
                              this workspace statically rejects unsafe blocks"
                        .to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Depth-first search for directories containing a `Cargo.toml`.
fn walk_for_manifests(dir: &Path, skip: &[String], out: &mut Vec<PathBuf>) {
    if dir.join("Cargo.toml").is_file() {
        out.push(dir.to_path_buf());
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" || skip.iter().any(|s| s == &*name) {
            continue;
        }
        walk_for_manifests(&path, skip, out);
    }
}

/// Resolves the `[counter-schema-sync]` section into a
/// [`CounterSyncInput`] and runs the rule.
fn check_counter_sync(root: &Path, m: &Manifest, out: &mut Vec<Diagnostic>) -> Result<(), String> {
    if m.table(RULE_COUNTER).is_none() {
        return Ok(());
    }
    let need = |key: &str| -> Result<String, String> {
        m.str(RULE_COUNTER, key)
            .ok_or_else(|| format!("{MANIFEST_NAME}: [{RULE_COUNTER}] needs `{key} = \"...\"`"))
    };
    let counters_file = need("counters")?;
    let struct_name = need("struct")?;
    let runner_file = need("runner")?;
    let gate_file = need("gate")?;
    let gated_const = need("gated_const")?;

    let str_pairs = |section: &str| -> Result<Vec<(String, String)>, String> {
        let Some(table) = m.table(section) else {
            return Ok(Vec::new());
        };
        table
            .iter()
            .map(|(k, v)| match v {
                Value::Str(s) => Ok((k.clone(), s.clone())),
                Value::List(_) => Err(format!(
                    "{MANIFEST_NAME}: [{section}] `{k}` must be a string"
                )),
            })
            .collect()
    };
    let columns = str_pairs(&format!("{RULE_COUNTER}.columns"))?;
    let unserialized = str_pairs(&format!("{RULE_COUNTER}.unserialized"))?;
    let ungated = str_pairs(&format!("{RULE_COUNTER}.ungated"))?;

    let counters_toks = lex(&read_scoped(root, &counters_file)?).tokens;
    let runner_toks = lex(&read_scoped(root, &runner_file)?).tokens;
    let gate_toks = lex(&read_scoped(root, &gate_file)?).tokens;
    out.extend(counter_schema_sync(&CounterSyncInput {
        counters_toks: &counters_toks,
        struct_name: &struct_name,
        counters_file: &counters_file,
        runner_toks: &runner_toks,
        runner_file: &runner_file,
        gate_toks: &gate_toks,
        gate_file: &gate_file,
        gated_const: &gated_const,
        columns: &columns,
        unserialized: &unserialized,
        ungated: &ungated,
    }));
    Ok(())
}
