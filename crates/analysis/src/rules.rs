//! The five project rules, each a pure function over lexed token streams
//! (or, for the doc rule, raw source lines).
//!
//! * [`hot_path_alloc`] — no heap-allocating constructs in the manifest's
//!   hot modules (static complement of the runtime `alloc_events` gate);
//! * [`panic_free_wire`] — no panicking constructs or bare indexing in the
//!   wire/codec decode paths (network input must never panic);
//! * [`has_forbid_unsafe`] — every crate root carries
//!   `#![forbid(unsafe_code)]`;
//! * [`counter_schema_sync`] — every `OpCounters` field reaches the bench
//!   JSON schema and the CI gate (or is explicitly allow-listed);
//! * [`doc_comment_shape`] — no mangled doc comments (`////`, or a plain
//!   `//` torn into a doc block) in the API surface files — the lexer
//!   strips comments, so this one scans raw lines.
//!
//! Token rules see streams with `#[cfg(test)]` / `#[test]` items already
//! stripped ([`strip_test_code`]): test code asserts and unwraps freely.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// Names of the four rules, as used in manifests and allow escapes.
pub const RULE_HOT_PATH: &str = "hot-path-alloc";
/// See [`RULE_HOT_PATH`].
pub const RULE_WIRE: &str = "panic-free-wire";
/// See [`RULE_HOT_PATH`].
pub const RULE_UNSAFE: &str = "forbid-unsafe-everywhere";
/// See [`RULE_HOT_PATH`].
pub const RULE_COUNTER: &str = "counter-schema-sync";
/// See [`RULE_HOT_PATH`].
pub const RULE_DOC: &str = "doc-comment-shape";

fn ident(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Removes items guarded by `#[cfg(test)]` (or any `cfg(...)` mentioning
/// `test`) and `#[test]` functions: the attribute, any stacked attributes
/// after it, and the item body up to its balanced closing brace (or
/// terminating semicolon).
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if is_punct(&toks[i], '#') && i + 1 < toks.len() && is_punct(&toks[i + 1], '[') {
            let close = match matching(toks, i + 1, '[', ']') {
                Some(c) => c,
                None => {
                    out.extend_from_slice(&toks[i..]);
                    break;
                }
            };
            if attr_is_test(&toks[i + 2..close]) {
                i = skip_attrs_and_item(toks, close + 1);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Whether attribute tokens (inside `#[...]`) gate on test builds.
fn attr_is_test(inner: &[Tok]) -> bool {
    match inner.first().and_then(ident) {
        Some("test") => true,
        Some("cfg") => inner.iter().skip(1).any(|t| ident(t) == Some("test")),
        _ => false,
    }
}

/// Index of the token closing the group opened at `open` (which holds
/// `open_c`), honouring nesting; `None` when unbalanced.
fn matching(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, open_c) {
            depth += 1;
        } else if is_punct(t, close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skips any further stacked attributes, then one item: everything up to
/// the first top-level `{` (consumed with its balanced body) or `;`.
fn skip_attrs_and_item(toks: &[Tok], mut i: usize) -> usize {
    while i + 1 < toks.len() && is_punct(&toks[i], '#') && is_punct(&toks[i + 1], '[') {
        match matching(toks, i + 1, '[', ']') {
            Some(c) => i = c + 1,
            None => return toks.len(),
        }
    }
    while i < toks.len() {
        if is_punct(&toks[i], ';') {
            return i + 1;
        }
        if is_punct(&toks[i], '{') {
            return match matching(toks, i, '{', '}') {
                Some(c) => c + 1,
                None => toks.len(),
            };
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------

const MAP_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "FxHashMap",
    "FxHashSet",
];

/// Flags heap-allocating constructs in a hot module's (non-test) code:
/// `Vec::new`, `vec![`, `Box::new`, `format!`, `.to_vec()`, `.collect()`,
/// `.to_string()`, `String::from`, and map/set `new`/`default`
/// constructors. Cold or amortized sites carry a justified
/// `// lint: allow(hot-path-alloc)` escape.
pub fn hot_path_alloc(file: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |line: u32, what: &str| {
        out.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: RULE_HOT_PATH,
            message: format!(
                "`{what}` allocates inside a hot module — steady-state ticks must run in \
                 reused capacity; move the allocation to install/startup or justify it with \
                 `// lint: allow(hot-path-alloc): <why this site is cold or amortized>`"
            ),
        });
    };
    for (i, t) in toks.iter().enumerate() {
        match ident(t) {
            Some("vec") if next_is(toks, i, '!') => push(t.line, "vec![..]"),
            Some("format") if next_is(toks, i, '!') => push(t.line, "format!"),
            Some(head @ ("Vec" | "Box" | "String")) if path_sep(toks, i) => {
                if let Some(m) = ident(&toks[i + 3]) {
                    let hit = matches!(
                        (head, m),
                        ("Vec", "new") | ("Box", "new") | ("String", "from")
                    );
                    if hit {
                        push(t.line, &format!("{head}::{m}"));
                    }
                }
            }
            Some(head) if MAP_TYPES.contains(&head) && path_sep(toks, i) => {
                if let Some(m @ ("new" | "default")) = ident(&toks[i + 3]) {
                    push(t.line, &format!("{head}::{m}"));
                }
            }
            Some(m @ ("to_vec" | "collect" | "to_string"))
                if i > 0 && is_punct(&toks[i - 1], '.') =>
            {
                push(t.line, &format!(".{m}()"));
            }
            _ => {}
        }
    }
    out
}

fn next_is(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i + 1).is_some_and(|t| is_punct(t, c))
}

/// Whether `toks[i]` is followed by `::` (a path segment separator).
fn path_sep(toks: &[Tok], i: usize) -> bool {
    i + 3 < toks.len() && next_is(toks, i, ':') && is_punct(&toks[i + 2], ':')
}

// ---------------------------------------------------------------------
// panic-free-wire
// ---------------------------------------------------------------------

/// Identifiers that may legitimately precede `[` without it being an
/// indexing expression (slice patterns, array types, generic bounds).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "while", "match", "return", "mut", "ref", "as", "move", "static",
    "const", "use", "pub", "fn", "where", "impl", "for", "loop", "break", "continue", "dyn",
    "enum", "struct", "trait", "type", "unsafe", "mod", "crate", "box", "yield", "await",
];

/// Flags panicking constructs and bare indexing in wire/codec decode
/// paths: `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`, `assert!`/`assert_eq!`/`assert_ne!`, and `expr[...]`
/// indexing (which panics on hostile offsets). Network input must surface
/// as typed `WireError` values, never as a panic.
pub fn panic_free_wire(file: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |line: u32, what: &str, hint: &str| {
        out.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: RULE_WIRE,
            message: format!(
                "`{what}` can panic on hostile or corrupt input — {hint}; if this site is \
                 provably unreachable from network input, justify it with \
                 `// lint: allow(panic-free-wire): <why>`"
            ),
        });
    };
    for (i, t) in toks.iter().enumerate() {
        match ident(t) {
            Some(m @ ("unwrap" | "expect" | "unwrap_err" | "expect_err"))
                if i > 0 && is_punct(&toks[i - 1], '.') && next_is(toks, i, '(') =>
            {
                push(
                    t.line,
                    &format!(".{m}()"),
                    "return a typed `WireError` instead",
                );
            }
            Some(
                m @ ("panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
                | "assert_ne"),
            ) if next_is(toks, i, '!') => {
                push(
                    t.line,
                    &format!("{m}!"),
                    "decode errors must be values, not aborts",
                );
            }
            _ => {}
        }
        if is_punct(t, '[') && i > 0 {
            let prev = &toks[i - 1];
            let indexing = match &prev.kind {
                TokKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if indexing {
                push(
                    t.line,
                    "expr[..]",
                    "bare indexing aborts on out-of-range offsets; use `get`/`try_into` and \
                     propagate `WireError::Truncated`",
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// forbid-unsafe-everywhere
// ---------------------------------------------------------------------

/// Whether a crate root's token stream carries the inner attribute
/// `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(7).any(|w| {
        is_punct(&w[0], '#')
            && is_punct(&w[1], '!')
            && is_punct(&w[2], '[')
            && ident(&w[3]) == Some("forbid")
            && is_punct(&w[4], '(')
            && ident(&w[5]) == Some("unsafe_code")
            && is_punct(&w[6], ')')
    })
}

// ---------------------------------------------------------------------
// doc-comment-shape
// ---------------------------------------------------------------------

/// Catches mechanically mangled doc comments in the manifest's API
/// surface files. The lexer strips comments before the token rules run,
/// so this rule scans **raw source lines** instead:
///
/// * a line opening with four or more slashes (`////`) — rustdoc treats
///   it as a plain comment, so the line silently drops out of the
///   rendered docs while still *looking* like documentation in review;
/// * a plain `//` line sandwiched between doc-comment lines of a block —
///   the classic symptom of a search-and-replace or merge eating one
///   slash, which splits the block and drops the line from the docs.
///
/// Deliberate plain comments between doc lines can be excused with
/// `// lint: allow(doc-comment-shape): <why>`; escape directives
/// themselves are never flagged.
pub fn doc_comment_shape(file: &str, src: &str) -> Vec<Diagnostic> {
    /// Classification of one trimmed line for the sandwich check.
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Doc,
        Plain,
        /// A `// lint:` escape directive — never flagged itself, and
        /// invisible to the neighbour scan (so an allow placed above a
        /// deliberate plain note does not break the block it excuses).
        Allow,
        Other,
    }
    fn kind(trimmed: &str) -> Kind {
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            // `////` is handled (and flagged) separately; for the
            // sandwich check it still marks a doc block.
            Kind::Doc
        } else if trimmed.starts_with("// lint:") {
            Kind::Allow
        } else if trimmed.starts_with("//") {
            Kind::Plain
        } else {
            Kind::Other
        }
    }

    let mut out = Vec::new();
    let kinds: Vec<Kind> = src.lines().map(|l| kind(l.trim_start())).collect();
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        let lineno = (idx + 1) as u32;
        if trimmed.starts_with("////") || trimmed.starts_with("//!!") {
            out.push(Diagnostic {
                file: file.to_string(),
                line: lineno,
                rule: RULE_DOC,
                message: format!(
                    "doc comment opens with `{}` — rustdoc treats it as a plain \
                     comment and silently drops the line from the rendered docs; \
                     use `///` (or `//!`)",
                    &trimmed[..4]
                ),
            });
            continue;
        }
        if kinds[idx] != Kind::Plain {
            continue;
        }
        // Sandwiched between doc lines of the same block? Blank lines end
        // a doc block, so only look at the nearest non-escape neighbours.
        let prev_doc = kinds[..idx]
            .iter()
            .rev()
            .find(|&&k| k != Kind::Allow)
            .is_some_and(|&k| k == Kind::Doc);
        let next_doc = kinds[idx + 1..]
            .iter()
            .find(|&&k| k != Kind::Allow)
            .is_some_and(|&k| k == Kind::Doc);
        if prev_doc && next_doc {
            out.push(Diagnostic {
                file: file.to_string(),
                line: lineno,
                rule: RULE_DOC,
                message: "plain `//` line interrupts a doc-comment block — a lost slash \
                          splits the block and drops this line from the rendered docs; \
                          restore `///` or move the comment out of the block"
                    .to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// counter-schema-sync
// ---------------------------------------------------------------------

/// Inputs to [`counter_schema_sync`], resolved by the engine from the
/// manifest's `[counter-schema-sync]` section.
pub struct CounterSyncInput<'a> {
    /// Lexed tokens of the file defining the counters struct.
    pub counters_toks: &'a [Tok],
    /// Name of the counters struct (`OpCounters`).
    pub struct_name: &'a str,
    /// Relative path of the counters file (for diagnostics).
    pub counters_file: &'a str,
    /// Lexed tokens of the bench runner (JSON serializer).
    pub runner_toks: &'a [Tok],
    /// Relative path of the runner file.
    pub runner_file: &'a str,
    /// Lexed tokens of the CI gate.
    pub gate_toks: &'a [Tok],
    /// Relative path of the gate file.
    pub gate_file: &'a str,
    /// Name of the gated-metrics const in the gate file.
    pub gated_const: &'a str,
    /// `counter field → JSON column` mapping from the manifest.
    pub columns: &'a [(String, String)],
    /// `counter field → justification` for fields intentionally absent
    /// from the JSON schema.
    pub unserialized: &'a [(String, String)],
    /// `JSON column → justification` for columns intentionally not gated.
    pub ungated: &'a [(String, String)],
}

/// Collects `pub <name>:` field names of `struct <name> { ... }`, with the
/// line each is declared on.
pub fn struct_fields(toks: &[Tok], struct_name: &str) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let Some(pos) = toks
        .windows(2)
        .position(|w| ident(&w[0]) == Some("struct") && ident(&w[1]) == Some(struct_name))
    else {
        return fields;
    };
    let Some(open) = toks.iter().skip(pos).position(|t| is_punct(t, '{')) else {
        return fields;
    };
    let open = pos + open;
    let Some(close) = matching(toks, open, '{', '}') else {
        return fields;
    };
    let body = &toks[open + 1..close];
    for w in body.windows(3) {
        if ident(&w[0]) == Some("pub") && is_punct(&w[2], ':') {
            if let Some(name) = ident(&w[1]) {
                fields.push((name.to_string(), w[1].line));
            }
        }
    }
    fields
}

/// The string-literal entries of `const <name> ... = &[ "a", "b" ];`.
pub fn const_str_list(toks: &[Tok], name: &str) -> Vec<String> {
    let Some(pos) = toks.iter().position(|t| ident(t) == Some(name)) else {
        return Vec::new();
    };
    // Skip the type annotation (`: &[&str]`) — the list lives after `=`.
    let Some(eq_rel) = toks.iter().skip(pos).position(|t| is_punct(t, '=')) else {
        return Vec::new();
    };
    let eq = pos + eq_rel;
    let Some(open_rel) = toks.iter().skip(eq).position(|t| is_punct(t, '[')) else {
        return Vec::new();
    };
    let open = eq + open_rel;
    let Some(close) = matching(toks, open, '[', ']') else {
        return Vec::new();
    };
    toks[open + 1..close]
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Str(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Whether any string literal in `toks` quotes `key` as a JSON column
/// (`\"key\":` inside the serializer's format string).
fn serializes_column(toks: &[Tok], key: &str) -> bool {
    let pat = format!("\\\"{key}\\\":");
    toks.iter().any(|t| match &t.kind {
        TokKind::Str(s) => s.contains(&pat),
        _ => false,
    })
}

/// Checks that every counter field flows into the bench JSON schema and
/// the CI gate, or is explicitly allow-listed with a justification. Also
/// flags stale manifest entries (mappings for fields that no longer
/// exist, allow-list rows for unknown columns) so the manifest cannot rot.
pub fn counter_schema_sync(input: &CounterSyncInput<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let fields = struct_fields(input.counters_toks, input.struct_name);
    if fields.is_empty() {
        out.push(Diagnostic {
            file: input.counters_file.to_string(),
            line: 1,
            rule: RULE_COUNTER,
            message: format!(
                "struct `{}` not found — fix the [counter-schema-sync] manifest section",
                input.struct_name
            ),
        });
        return out;
    }
    let gated = const_str_list(input.gate_toks, input.gated_const);
    if gated.is_empty() {
        out.push(Diagnostic {
            file: input.gate_file.to_string(),
            line: 1,
            rule: RULE_COUNTER,
            message: format!(
                "gated-metrics const `{}` not found or empty in the gate file",
                input.gated_const
            ),
        });
    }
    let lookup = |table: &[(String, String)], key: &str| -> Option<String> {
        table.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };

    // 1. Every struct field is mapped to a column or justified as
    //    unserialized.
    for (field, line) in &fields {
        let mapped = lookup(input.columns, field);
        let excused = lookup(input.unserialized, field);
        match (&mapped, &excused) {
            (None, None) => out.push(Diagnostic {
                file: input.counters_file.to_string(),
                line: *line,
                rule: RULE_COUNTER,
                message: format!(
                    "counter `{field}` reaches neither the bench JSON schema nor the \
                     unserialized allow-list — map it to a column in \
                     [counter-schema-sync.columns] and serialize it in the runner, or \
                     justify its absence in [counter-schema-sync.unserialized]"
                ),
            }),
            (Some(_), Some(_)) => out.push(Diagnostic {
                file: input.counters_file.to_string(),
                line: *line,
                rule: RULE_COUNTER,
                message: format!(
                    "counter `{field}` is both mapped to a column and allow-listed as \
                     unserialized — pick one"
                ),
            }),
            _ => {}
        }
    }

    // 2. Every mapped column is actually rendered by the runner's JSON
    //    serializer, and is either gated or justified as ungated.
    let mut seen_cols: Vec<&str> = Vec::new();
    for (field, col) in input.columns {
        if !fields.iter().any(|(f, _)| f == field) {
            out.push(Diagnostic {
                file: input.counters_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!(
                    "[counter-schema-sync.columns] maps unknown counter `{field}` — stale \
                     manifest entry"
                ),
            });
        }
        if seen_cols.contains(&col.as_str()) {
            continue;
        }
        seen_cols.push(col);
        if !serializes_column(input.runner_toks, col) {
            out.push(Diagnostic {
                file: input.runner_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!(
                    "JSON column `{col}` (mapped from `{field}`) is not rendered by the \
                     runner's serializer — the counter silently dropped out of BENCH_*.json"
                ),
            });
        }
        let is_gated = gated.iter().any(|g| g == col);
        let excused = lookup(input.ungated, col);
        if !is_gated && excused.is_none() {
            out.push(Diagnostic {
                file: input.gate_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!(
                    "JSON column `{col}` (mapped from `{field}`) is not in `{}` and not \
                     allow-listed in [counter-schema-sync.ungated] — gate it or justify it",
                    input.gated_const
                ),
            });
        }
        if is_gated && excused.is_some() {
            out.push(Diagnostic {
                file: input.gate_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!(
                    "JSON column `{col}` is gated *and* allow-listed as ungated — remove the \
                     stale [counter-schema-sync.ungated] row"
                ),
            });
        }
    }

    // 3. Allow-list hygiene: unserialized rows must name real fields,
    //    ungated rows must name mapped columns, and justifications must be
    //    non-empty prose.
    for (field, just) in input.unserialized {
        if !fields.iter().any(|(f, _)| f == field) {
            out.push(Diagnostic {
                file: input.counters_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!(
                    "[counter-schema-sync.unserialized] excuses unknown counter `{field}` — \
                     stale manifest entry"
                ),
            });
        }
        if just.trim().is_empty() {
            out.push(Diagnostic {
                file: input.counters_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!("empty justification for unserialized counter `{field}`"),
            });
        }
    }
    for (col, just) in input.ungated {
        if !input.columns.iter().any(|(_, c)| c == col) {
            out.push(Diagnostic {
                file: input.gate_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!(
                    "[counter-schema-sync.ungated] excuses unknown column `{col}` — stale \
                     manifest entry"
                ),
            });
        }
        if just.trim().is_empty() {
            out.push(Diagnostic {
                file: input.gate_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!("empty justification for ungated column `{col}`"),
            });
        }
    }

    // 4. Every gated metric must be a real serialized column (catches
    //    typos in the gate's own list).
    for g in &gated {
        if !serializes_column(input.runner_toks, g) {
            out.push(Diagnostic {
                file: input.gate_file.to_string(),
                line: 1,
                rule: RULE_COUNTER,
                message: format!(
                    "gated metric `{g}` is not rendered by the runner's serializer — the \
                     gate would silently skip it on every artifact"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_items_are_stripped() {
        let src = "
            fn hot() { work(); }
            #[cfg(test)]
            mod tests {
                fn helper() { data.unwrap(); }
            }
            #[test]
            fn one() { x.unwrap(); }
            #[cfg(all(test, feature = \"x\"))]
            fn gated() { y.unwrap(); }
            fn also_hot() {}
        ";
        let toks = strip_test_code(&lex(src).tokens);
        let ids: Vec<_> = toks.iter().filter_map(ident).collect();
        assert!(ids.contains(&"hot"));
        assert!(ids.contains(&"also_hot"));
        assert!(!ids.contains(&"unwrap"), "{ids:?}");
        assert!(!ids.contains(&"helper"));
    }

    #[test]
    fn non_test_attrs_survive_stripping() {
        let src = "#[derive(Debug)] struct S { a: u32 } #[inline] fn f() {}";
        let toks = strip_test_code(&lex(src).tokens);
        let ids: Vec<_> = toks.iter().filter_map(ident).collect();
        assert!(ids.contains(&"derive"));
        assert!(ids.contains(&"inline"));
        assert!(ids.contains(&"f"));
    }

    #[test]
    fn hot_path_alloc_catches_each_family() {
        let src = r#"
            fn f() {
                let a = Vec::new();
                let b = vec![1, 2];
                let c = Box::new(7);
                let d = format!("x{}", 1);
                let e = s.to_vec();
                let g: Vec<u32> = it.collect();
                let h = String::from("y");
                let i = FxHashMap::default();
                let j = BTreeMap::new();
                let k = s.to_string();
            }
        "#;
        let diags = hot_path_alloc("f.rs", &lex(src).tokens);
        assert_eq!(diags.len(), 10, "{diags:#?}");
    }

    #[test]
    fn hot_path_alloc_ignores_lookalikes() {
        let src = "
            fn f() {
                let a = Vec::with_capacity(4); // growth is explicit, not denied
                let b = pool.new_node();
                let c = collect_stats();
                let d = self.format_mode;
            }
        ";
        assert!(hot_path_alloc("f.rs", &lex(src).tokens).is_empty());
    }

    #[test]
    fn wire_rule_catches_panics_and_indexing() {
        let src = r#"
            fn decode(b: &[u8]) -> u8 {
                let x = r.u32().unwrap();
                let y = r.u16().expect("hdr");
                if bad { panic!("no") }
                assert!(b.len() > 4);
                b[0]
            }
        "#;
        let diags = panic_free_wire("w.rs", &lex(src).tokens);
        assert_eq!(diags.len(), 5, "{diags:#?}");
    }

    #[test]
    fn wire_rule_ignores_types_patterns_and_attrs() {
        let src = "
            #[derive(Debug)]
            struct S { buf: [u8; 4] }
            fn f(chunk: [u8; 16]) -> Option<u8> {
                let [a, b] = pair;
                let ok = buf.get(0)?;
                let arr = [1, 2, 3];
                Some(*ok)
            }
        ";
        let diags = panic_free_wire("w.rs", &lex(src).tokens);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn wire_rule_flags_chained_and_nested_indexing() {
        let src = "fn f() { m[0]; g()[1]; rows[i][j]; }";
        let diags = panic_free_wire("w.rs", &lex(src).tokens);
        assert_eq!(diags.len(), 4, "{diags:#?}");
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(has_forbid_unsafe(
            &lex("//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}").tokens
        ));
        assert!(!has_forbid_unsafe(
            &lex("#![deny(unsafe_code)]\npub fn f() {}").tokens
        ));
        assert!(!has_forbid_unsafe(&lex("pub fn f() {}").tokens));
    }

    const COUNTERS: &str = "
        pub struct OpCounters {
            pub steps: u64,
            pub allocs: u64,
            pub silent: u64,
        }
    ";
    const RUNNER: &str = r#"
        fn json() -> String {
            format!("{{\"steps_per_ts\": {:.1}, \"alloc_per_ts\": {:.3}}}", a, b)
        }
    "#;
    const GATE: &str = r#"
        const GATED_METRICS: &[&str] = &["steps_per_ts"];
    "#;

    fn run_sync(
        columns: &[(String, String)],
        unserialized: &[(String, String)],
        ungated: &[(String, String)],
    ) -> Vec<Diagnostic> {
        let c = lex(COUNTERS);
        let r = lex(RUNNER);
        let g = lex(GATE);
        counter_schema_sync(&CounterSyncInput {
            counters_toks: &c.tokens,
            struct_name: "OpCounters",
            counters_file: "counters.rs",
            runner_toks: &r.tokens,
            runner_file: "runner.rs",
            gate_toks: &g.tokens,
            gate_file: "gate.rs",
            gated_const: "GATED_METRICS",
            columns,
            unserialized,
            ungated,
        })
    }

    fn pairs(v: &[(&str, &str)]) -> Vec<(String, String)> {
        v.iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn counter_sync_passes_a_complete_mapping() {
        let diags = run_sync(
            &pairs(&[("steps", "steps_per_ts"), ("allocs", "alloc_per_ts")]),
            &pairs(&[("silent", "debug-only counter, never reported")]),
            &pairs(&[("alloc_per_ts", "gated transitively via the tickpath assert")]),
        );
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn counter_sync_catches_unmapped_field_missing_column_and_ungated() {
        // `silent` unmapped; `allocs` maps to a column the runner does not
        // render; `steps_per_ts` is gated but `ghost_per_ts` is not.
        let diags = run_sync(
            &pairs(&[("steps", "steps_per_ts"), ("allocs", "ghost_per_ts")]),
            &[],
            &[],
        );
        let msgs: Vec<_> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`silent`")), "{msgs:#?}");
        assert!(
            msgs.iter()
                .any(|m| m.contains("`ghost_per_ts`") && m.contains("not rendered")),
            "{msgs:#?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("`ghost_per_ts`") && m.contains("not in `GATED_METRICS`")),
            "{msgs:#?}"
        );
    }

    #[test]
    fn doc_shape_passes_well_formed_docs() {
        let src = "\
//! Module docs.
//!
//! More module docs.

/// Item docs with a code fence:
///
/// ```text
/// //// inside a fence still LOOKS bad but we only check line starts
/// ```
pub fn f() {}

// A plain comment between items is fine.
/// Next item.
pub fn g() {}

// ----------------------------------------------------------------
// Section divider, also fine.
";
        let diags = doc_comment_shape("x.rs", src);
        // The fenced `//// inside...` line starts with `/// ` after
        // trimming, so it is a doc line, not a four-slash opener.
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn doc_shape_flags_four_slashes_and_torn_blocks() {
        let src = "\
//// Lost its doc status entirely.
pub fn a() {}

/// First doc line.
// second line lost a slash
/// third doc line.
pub fn b() {}

/// Deliberate tears still get flagged here; the escape directive is
// lint: allow(doc-comment-shape): deliberate plain note inside the block
// invisible to the neighbour scan, and apply_allows suppresses later.
/// ...continues.
pub fn c() {}
";
        let diags = doc_comment_shape("x.rs", src);
        assert_eq!(diags.len(), 3, "{diags:#?}");
        assert!(diags.iter().all(|d| d.rule == RULE_DOC));
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("////"));
        assert_eq!(diags[1].line, 5);
        assert!(diags[1].message.contains("interrupts a doc-comment block"));
        // The rule itself still reports the excused line (the directive on
        // the line above is skipped by the neighbour scan, not honoured
        // here); `apply_allows` consumes the directive downstream, which
        // the bad_doc_comment fixture exercises end to end.
        assert_eq!(diags[2].line, 11);
    }

    #[test]
    fn counter_sync_catches_stale_manifest_rows_and_empty_justifications() {
        let diags = run_sync(
            &pairs(&[
                ("steps", "steps_per_ts"),
                ("allocs", "alloc_per_ts"),
                ("gone", "gone_per_ts"),
            ]),
            &pairs(&[("silent", "   "), ("ghost", "never existed")]),
            &pairs(&[
                ("alloc_per_ts", "ok"),
                ("gone_per_ts", "ok"),
                ("mystery", "x"),
            ]),
        );
        let msgs: Vec<_> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("unknown counter `gone`")));
        assert!(msgs.iter().any(|m| m.contains("unknown counter `ghost`")));
        assert!(msgs.iter().any(|m| m.contains("unknown column `mystery`")));
        assert!(msgs.iter().any(|m| m.contains("empty justification")));
    }
}
