//! The committed fixture corpus: one known-good tree and one
//! known-bad tree per rule (plus one for the escape syntax itself).
//! Each bad fixture must produce findings — these are the trees the CLI
//! is required to exit non-zero on — and the good tree must be clean.

use std::path::PathBuf;

use rnn_analysis::check_workspace;
use rnn_analysis::diag::Diagnostic;

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    check_workspace(&root).unwrap_or_else(|e| panic!("fixture {name}: pass failed to run: {e}"))
}

#[test]
fn good_fixture_is_clean() {
    let diags = check_fixture("good");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn bad_hot_path_finds_every_alloc_family() {
    let diags = check_fixture("bad_hot_path");
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "hot-path-alloc"));
    for needle in ["Vec::new", "format!", ".to_vec()", "Box::new", ".collect()"] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no finding for {needle}: {diags:#?}"
        );
    }
}

#[test]
fn bad_wire_finds_panics_and_indexing() {
    let diags = check_fixture("bad_wire");
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "panic-free-wire"));
    for needle in ["assert!", ".unwrap()", "panic!", "expr[..]"] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no finding for {needle}: {diags:#?}"
        );
    }
}

#[test]
fn bad_replog_finds_the_panicking_fencing_path() {
    let diags = check_fixture("bad_replog");
    assert_eq!(diags.len(), 4, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "panic-free-wire"));
    for needle in [".unwrap()", "panic!", "expr[..]"] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no finding for {needle}: {diags:#?}"
        );
    }
}

#[test]
fn bad_unsafe_demands_forbid_not_deny() {
    let diags = check_fixture("bad_unsafe");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "forbid-unsafe-everywhere");
    assert!(diags[0].file.ends_with("crate/src/lib.rs"));
}

#[test]
fn bad_counter_sync_finds_each_kind_of_drift() {
    let diags = check_fixture("bad_counter_sync");
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    // Unmapped counter, mapped-but-unrendered column (which is also
    // ungated without a justification), and a gated metric that the
    // runner never renders.
    assert!(msgs.iter().any(|m| m.contains("`orphan`")), "{msgs:#?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("`dropped_per_ts`") && m.contains("not rendered")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`ghost_per_ts`") && m.contains("gate would silently skip")),
        "{msgs:#?}"
    );
}

#[test]
fn bad_doc_comment_finds_four_slash_openers_and_torn_blocks() {
    let diags = check_fixture("bad_doc_comment");
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "doc-comment-shape"));
    assert_eq!(diags[0].line, 1);
    assert!(diags[0].message.contains("////"));
    assert_eq!(diags[1].line, 5);
    assert!(diags[1].message.contains("interrupts a doc-comment block"));
    // The fixture's third tear carries a justified escape, which both
    // suppresses the finding and counts as used (no lint-allow diag).
}

#[test]
fn bad_allow_reports_malformed_unused_and_unknown_escapes() {
    let diags = check_fixture("bad_allow");
    assert_eq!(diags.len(), 4, "{diags:#?}");
    // The escape with the empty justification does NOT suppress the
    // allocation below it.
    assert!(diags.iter().any(|d| d.rule == "hot-path-alloc"));
    let meta: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "lint-allow").collect();
    assert_eq!(meta.len(), 3, "{diags:#?}");
    assert!(meta.iter().any(|d| d.message.contains("malformed")));
    assert!(meta.iter().any(|d| d.message.contains("unused")));
    assert!(meta.iter().any(|d| d.message.contains("unknown rule")));
}

#[test]
fn missing_manifest_is_a_hard_error_not_a_clean_pass() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let err = check_workspace(&root).unwrap_err();
    assert!(err.contains("lint.toml"), "{err}");
}
