//! Hot module with no un-justified allocation.

pub fn tick(buf: &mut Vec<u32>, n: usize) {
    buf.clear();
    for i in 0..n {
        buf.push(i as u32);
    }
}

pub fn install(n: usize) -> Vec<u32> {
    // lint: allow(hot-path-alloc): install-time seeding, runs once before any tick
    let seeded = vec![0; n];
    seeded
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate_freely() {
        let v = vec![1, 2, 3];
        assert_eq!(v.iter().map(|x| x * 2).collect::<Vec<_>>().len(), 3);
    }
}
