pub struct OpCounters {
    pub steps: u64,
    pub allocs: u64,
    pub hidden: u64,
}
