pub const GATED_METRICS: &[&str] = &["steps_per_ts"];
