pub fn to_json(steps: f64, allocs: f64) -> String {
    format!("{{\"steps_per_ts\": {steps:.1}, \"alloc_per_ts\": {allocs:.3}}}")
}
