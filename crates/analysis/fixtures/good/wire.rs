//! Decode path with typed errors only.

pub enum WireError {
    Truncated,
}

pub fn decode_u16(b: &[u8]) -> Result<u16, WireError> {
    let pair: [u8; 2] = b.get(..2).ok_or(WireError::Truncated)?.try_into().map_err(|_| WireError::Truncated)?;
    Ok(u16::from_le_bytes(pair))
}
