//! Crate root carrying the required attribute.
#![forbid(unsafe_code)]

pub fn ok() {}
