//! Hot module that allocates per tick — every construct the rule names.

pub fn tick(ids: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    out.extend(ids.iter().map(|x| x + 1));
    let label = format!("tick:{}", out.len());
    let copy = ids.to_vec();
    let boxed = Box::new(label);
    drop((copy, boxed));
    out.iter().copied().collect()
}
