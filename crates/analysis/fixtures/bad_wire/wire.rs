//! Decode path that panics on hostile input.

pub fn decode_u16(b: &[u8]) -> u16 {
    assert!(b.len() >= 2);
    u16::from_le_bytes(b[..2].try_into().unwrap())
}

pub fn first_byte(b: &[u8]) -> u8 {
    if b.is_empty() {
        panic!("empty frame");
    }
    b[0]
}
