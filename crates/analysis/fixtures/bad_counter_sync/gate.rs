pub const GATED_METRICS: &[&str] = &["steps_per_ts", "ghost_per_ts"];
