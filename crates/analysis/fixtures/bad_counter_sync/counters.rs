pub struct OpCounters {
    pub steps: u64,
    pub dropped: u64,
    pub orphan: u64,
}
