pub fn to_json(steps: f64) -> String {
    format!("{{\"steps_per_ts\": {steps:.1}}}")
}
