//// Module docs that lost their doc status: rustdoc renders nothing.
pub struct Config;

/// Builds the thing.
// this middle line lost a slash and silently fell out of the docs
/// Returns a configured instance.
pub fn build() -> Config {
    Config
}

/// A deliberate plain note inside a block is excusable:
// lint: allow(doc-comment-shape): prose note intentionally hidden from rustdoc
// maintainers-only detail that should stay out of the rendered docs
/// ...but this fixture also keeps the unexcused tear above.
pub fn other() {}
