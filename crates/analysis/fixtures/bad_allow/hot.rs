//! Every way an escape itself can be wrong.

pub fn tick() -> Vec<u32> {
    // lint: allow(hot-path-alloc):
    let malformed_justification = vec![1, 2, 3];

    // lint: allow(hot-path-alloc): nothing below trips the rule, so this is stale
    let unused = malformed_justification.len();

    // lint: allow(no-such-rule): the rule name does not exist
    let unknown = unused + 1;

    let _ = unknown;
    malformed_justification
}
