//! Replication plane that panics on follower input: the ack status is
//! read by bare indexing and a fenced epoch kills the leader outright
//! instead of surfacing a typed error.

pub fn ack_status(frame: &[u8]) -> u8 {
    frame[0]
}

pub fn check_epoch(ours: u32, theirs: &[u8]) {
    let t = u32::from_le_bytes(theirs[..4].try_into().unwrap());
    if t > ours {
        panic!("fenced: follower is at epoch {t}");
    }
}
