//! Crate root missing the attribute (deny is not forbid: a submodule
//! could override it with `#[allow]`).
#![deny(unsafe_code)]

pub fn nope() {}
